#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! # nodeshare
//!
//! Node-sharing scheduling strategies for HPC batch systems — a
//! from-scratch Rust reproduction of *"Effects and Benefits of Node
//! Sharing Strategies in HPC Batch Systems"* (IPDPS 2019): co-allocation
//! of jobs onto the free hyper-thread lanes of busy nodes, driven by
//! co-allocation-aware extensions of first-fit and EASY backfill.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`cluster`] | `nodeshare-cluster` | SMT machine model, lane-granular allocation |
//! | [`perf`] | `nodeshare-perf` | mini-app profiles, SMT contention model, predictors |
//! | [`workload`] | `nodeshare-workload` | job model, synthetic campaigns, SWF traces |
//! | [`engine`] | `nodeshare-engine` | discrete-event simulation, `Scheduler` trait |
//! | [`sched`] | `nodeshare-core` | FCFS / first-fit / EASY / conservative + **CoFirstFit** / **CoBackfill** / **Adaptive** |
//! | [`slurm`] | `nodeshare-slurm` | sbatch scripts, slurm.conf, partitions, squeue/sinfo/sacct |
//! | [`metrics`] | `nodeshare-metrics` | computational & scheduling efficiency, summaries |
//! | [`report`] | `nodeshare-report` | trace analytics: lifecycle spans, Perfetto export, markdown reports |
//!
//! ## Quickstart
//!
//! ```
//! use nodeshare::prelude::*;
//!
//! let catalog = AppCatalog::trinity();
//! let model = ContentionModel::calibrated();
//! let matrix = CoRunTruth::build(&catalog, &model);
//! let workload = WorkloadSpec { n_jobs: 50, ..WorkloadSpec::evaluation(&catalog, 42) }
//!     .generate(&catalog);
//! let config = SimConfig::new(ClusterSpec::evaluation()); // 128 nodes
//!
//! // The paper's contribution vs. its baseline:
//! let pairing = Pairing::new(PairingPolicy::default_threshold(),
//!                            Predictor::class_based(&catalog, &model));
//! let co = nodeshare::engine::run(&workload, &matrix, &mut Backfill::co(pairing), &config);
//! let easy = nodeshare::engine::run(&workload, &matrix, &mut Backfill::easy(), &config);
//! assert!(co.complete() && easy.complete());
//! ```

pub use nodeshare_cluster as cluster;
pub use nodeshare_core as sched;
pub use nodeshare_engine as engine;
pub use nodeshare_metrics as metrics;
pub use nodeshare_perf as perf;
pub use nodeshare_report as report;
pub use nodeshare_slurm as slurm;
pub use nodeshare_workload as workload;

/// The most commonly used items in one import.
pub mod prelude {
    pub use nodeshare_cluster::{Cluster, ClusterSpec, JobId, Lane, NodeId, NodeSpec, ShareMode};
    pub use nodeshare_core::{
        Adaptive, Backfill, Conservative, Fcfs, FirstFit, Pairing, PairingPolicy, PredictorKind,
        StrategyConfig, StrategyKind,
    };
    pub use nodeshare_engine::{
        run, run_traced, AuditSummary, Auditor, Decision, DecisionTrace, SchedContext, Scheduler,
        SimConfig, SimOutcome, StartReason, TraceEvent, Violation,
    };
    pub use nodeshare_metrics::{CampaignMetrics, JobRecord, Summary, Table};
    pub use nodeshare_perf::{
        AppCatalog, AppClass, AppId, CoRunTruth, ContentionModel, PairMatrix, PairRates, Predictor,
    };
    pub use nodeshare_slurm::{BatchSystem, JobScript, SlurmConf};
    pub use nodeshare_workload::{
        ArrivalProcess, EstimateModel, JobSpec, Malleability, Seconds, Workload, WorkloadSpec,
    };
}
