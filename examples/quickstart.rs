//! Quickstart: simulate one campaign under the paper's strategy
//! (co-allocation-aware backfill) and its baseline (EASY backfill), and
//! compare the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nodeshare::metrics::{pct, relative_gain};
use nodeshare::prelude::*;

fn main() {
    // The world: 128 SMT-2 nodes, the Trinity mini-app catalog, and the
    // calibrated contention model as ground truth.
    let catalog = AppCatalog::trinity();
    let model = ContentionModel::calibrated();
    let matrix = CoRunTruth::build(&catalog, &model);
    let cluster = ClusterSpec::evaluation();
    let config = SimConfig::new(cluster);

    // A 500-job campaign at ~90% offered load; every job opts into
    // sharing (the partition allows it).
    let workload = WorkloadSpec {
        n_jobs: 500,
        ..WorkloadSpec::evaluation(&catalog, 2024)
    }
    .generate(&catalog);
    println!(
        "workload: {} jobs, {:.1} h of submissions, {:.0} node-hours of work\n",
        workload.len(),
        workload.submit_span() / 3600.0,
        workload.total_work_node_seconds() / 3600.0
    );

    // Baseline: EASY backfill with exclusive ("standard") allocation.
    let easy = nodeshare::engine::run(&workload, &matrix, &mut Backfill::easy(), &config);

    // The paper's strategy: co-allocation-aware backfill. The scheduler
    // plans with class-level predictions (what a site can measure) while
    // the engine simulates the full pair matrix.
    let pairing = Pairing::new(
        PairingPolicy::default_threshold(),
        Predictor::class_based(&catalog, &model),
    );
    let co = nodeshare::engine::run(&workload, &matrix, &mut Backfill::co(pairing), &config);

    assert!(easy.complete() && co.complete());
    let me = easy.metrics(&cluster);
    let mc = co.metrics(&cluster);

    let mut table = Table::new(vec!["metric", "easy-backfill", "co-backfill", "gain"]);
    table.row(vec![
        "makespan (h)".to_string(),
        format!("{:.2}", me.makespan / 3600.0),
        format!("{:.2}", mc.makespan / 3600.0),
        pct(relative_gain(me.makespan, mc.makespan)), // smaller is better
    ]);
    table.row(vec![
        "mean wait (min)".to_string(),
        format!("{:.1}", me.wait.mean / 60.0),
        format!("{:.1}", mc.wait.mean / 60.0),
        String::new(),
    ]);
    table.row(vec![
        "computational efficiency".to_string(),
        format!("{:.3}", me.computational_efficiency),
        format!("{:.3}", mc.computational_efficiency),
        pct(relative_gain(
            mc.computational_efficiency,
            me.computational_efficiency,
        )),
    ]);
    table.row(vec![
        "scheduling efficiency".to_string(),
        format!("{:.3}", me.scheduling_efficiency),
        format!("{:.3}", mc.scheduling_efficiency),
        pct(relative_gain(
            mc.scheduling_efficiency,
            me.scheduling_efficiency,
        )),
    ]);
    table.row(vec![
        "median dilation".to_string(),
        format!("{:.3}", me.dilation.median),
        format!("{:.3}", mc.dilation.median),
        String::new(),
    ]);
    table.row(vec![
        "shared node-time".to_string(),
        pct(me.shared_fraction),
        pct(mc.shared_fraction),
        String::new(),
    ]);
    table.row(vec![
        "walltime kills".to_string(),
        me.killed.to_string(),
        mc.killed.to_string(),
        String::new(),
    ]);
    println!("{}", table.render());
    println!(
        "paper's claims: +19% computational efficiency, +25.2% scheduling efficiency, \
         no co-allocation overhead"
    );
}
