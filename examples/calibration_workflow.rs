//! The profiling workflow a site runs before enabling node sharing:
//!
//! 1. *measure* — co-run every application pair once and record the
//!    mutual slowdowns (here: simulated measurements with noise);
//! 2. *fit* — recover per-app resource-demand vectors from the noisy
//!    matrix with [`nodeshare::perf::fit_demands`];
//! 3. *predict* — check the fitted model against held-out ground truth;
//! 4. *schedule* — drive CoBackfill with the fitted predictor and compare
//!    against the oracle.
//!
//! ```text
//! cargo run --release --example calibration_workflow
//! ```

use nodeshare::perf::calibrate::{fit_demands, CalibrateOptions};
use nodeshare::perf::{PairMatrix, Predictor};
use nodeshare::prelude::*;
use rand::{Rng, SeedableRng};

fn main() {
    let catalog = AppCatalog::trinity();
    let model = ContentionModel::calibrated();
    let truth = CoRunTruth::build(&catalog, &model);
    let matrix = truth.pair_matrix();
    let n = catalog.len();

    // 1. "Measure": the true pairwise rates with ±2% multiplicative
    // measurement noise, as timing runs on real nodes would give.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let mut observed = vec![vec![0.0f64; n]; n];
    let mut row_text = String::new();
    for (a, row) in observed.iter_mut().enumerate() {
        for (b, cell) in row.iter_mut().enumerate() {
            let noise = 1.0 + (rng.random::<f64>() - 0.5) * 0.04;
            *cell = (matrix.rate(AppId(a as u8), AppId(b as u8)) * noise).min(1.0);
        }
    }
    for (a, row) in observed.iter().enumerate().take(3) {
        row_text.push_str(&format!(
            "  {:>10}: {}\n",
            catalog.profile(AppId(a as u8)).name,
            row.iter()
                .map(|r| format!("{r:.2}"))
                .collect::<Vec<_>>()
                .join(" ")
        ));
    }
    println!("measured pairwise rates (first rows, with noise):\n{row_text}");

    // 2. Fit demand vectors.
    let result = fit_demands(
        n,
        |a, b| observed[a][b],
        &model,
        &CalibrateOptions::default(),
    );
    println!(
        "fit: rmse {:.4} after {} sweeps (noise floor ≈ 0.012)",
        result.rmse, result.sweeps
    );

    // 3. Validate the fitted model against the noise-free truth.
    let mut worst: f64 = 0.0;
    for a in 0..n {
        for b in 0..n {
            let predicted = model
                .pair_rates(&result.demands[a], &result.demands[b])
                .rate_a;
            worst = worst.max((predicted - matrix.rate(AppId(a as u8), AppId(b as u8))).abs());
        }
    }
    println!("worst prediction error vs noise-free truth: {worst:.3} rate units\n");

    // 4. Schedule with the fitted predictor.
    let fitted_catalog = AppCatalog::new(
        catalog
            .iter()
            .zip(&result.demands)
            .map(|(app, demand)| nodeshare::perf::AppProfile {
                demand: *demand,
                ..app.clone()
            })
            .collect(),
    );
    let fitted_predictor = Predictor::Oracle(PairMatrix::build(&fitted_catalog, &model));

    let mut spec = WorkloadSpec::evaluation(&catalog, 5);
    spec.n_jobs = 400;
    spec.arrival = ArrivalProcess::Poisson { rate: 0.0080 };
    let workload = spec.generate(&catalog);
    let config = SimConfig::new(ClusterSpec::evaluation());

    let run_with = |predictor: Predictor| {
        let pairing = Pairing::new(PairingPolicy::default_threshold(), predictor);
        let out = nodeshare::engine::run(&workload, &truth, &mut Backfill::co(pairing), &config);
        out.metrics(&ClusterSpec::evaluation())
    };
    let fitted = run_with(fitted_predictor);
    let oracle = run_with(Predictor::oracle(&catalog, &model));

    println!("scheduling with the fitted predictor vs the oracle:");
    println!(
        "  E_comp   {:.3} vs {:.3}\n  E_sched  {:.3} vs {:.3}\n  kills    {} vs {}",
        fitted.computational_efficiency,
        oracle.computational_efficiency,
        fitted.scheduling_efficiency,
        oracle.scheduling_efficiency,
        fitted.killed,
        oracle.killed,
    );
    println!("\ncalibration from one round of pairwise measurements recovers almost");
    println!("all of the oracle's benefit — the deployment path is practical.");
}
