//! An operator's-eye view: configure a machine with a `slurm.conf`,
//! submit `#SBATCH` scripts, schedule with co-allocation-aware backfill,
//! and inspect the run through `squeue` / `sinfo` / `sacct`.
//!
//! ```text
//! cargo run --release --example sbatch_campaign
//! ```

use nodeshare::prelude::*;
use nodeshare::slurm::{sacct, sinfo_at, squeue_at};

const SLURM_CONF: &str = "\
# A small oversubscribable machine.
NodeName=n[0-15] Sockets=2 CoresPerSocket=16 ThreadsPerCore=2 RealMemory=131072
PartitionName=batch Nodes=ALL Default=YES MaxTime=08:00:00 OverSubscribe=YES
PartitionName=serial Nodes=ALL MaxTime=01:00:00 OverSubscribe=NO
";

fn script(app: &str, nodes: u32, time: &str, share: bool, partition: &str) -> String {
    format!(
        "#!/bin/bash\n\
         #SBATCH --job-name={app}-{nodes}n\n\
         #SBATCH --nodes={nodes}\n\
         #SBATCH --time={time}\n\
         #SBATCH --partition={partition}\n\
         {}\
         srun ./{app}\n",
        if share {
            "#SBATCH --oversubscribe\n"
        } else {
            ""
        }
    )
}

fn main() {
    let conf = SlurmConf::parse(SLURM_CONF).expect("valid slurm.conf");
    let catalog = AppCatalog::trinity();
    let mut bs = BatchSystem::new(conf, catalog);

    // A morning's worth of submissions: memory- and compute-bound jobs
    // interleaved, a couple of non-sharing holdouts, one walltime liar.
    let submissions: Vec<(String, f64, u32, f64)> = vec![
        // (script, submit time, user, true runtime)
        (script("AMG", 8, "02:00:00", true, "batch"), 0.0, 1, 5_400.0),
        (
            script("miniDFT", 8, "02:00:00", true, "batch"),
            60.0,
            2,
            5_000.0,
        ),
        (
            script("miniFE", 4, "01:30:00", true, "batch"),
            120.0,
            3,
            4_200.0,
        ),
        (
            script("SNAP", 4, "01:30:00", true, "batch"),
            180.0,
            4,
            4_000.0,
        ),
        (
            script("MILC", 16, "03:00:00", true, "batch"),
            240.0,
            5,
            9_000.0,
        ),
        (
            script("GTC", 2, "00:40:00", false, "serial"),
            300.0,
            6,
            2_000.0,
        ),
        (
            script("UMT", 8, "02:00:00", true, "batch"),
            360.0,
            7,
            6_000.0,
        ),
        // Underestimates its runtime; will hit the walltime limit.
        (
            script("miniGhost", 2, "00:30:00", true, "batch"),
            420.0,
            8,
            3_000.0,
        ),
    ];
    for (text, t, user, runtime) in &submissions {
        match bs.submit_script(text, *t, *user, *runtime) {
            Ok(id) => println!("sbatch: Submitted batch {id}"),
            Err(e) => println!("sbatch: error: {e}"),
        }
    }

    // A submission the system must reject (walltime over the limit).
    let err = bs
        .submit_script(&script("AMG", 2, "10:00:00", true, "batch"), 500.0, 9, 60.0)
        .unwrap_err();
    println!("sbatch: error: {err}\n");

    // Schedule the campaign with the paper's strategy.
    let model = ContentionModel::calibrated();
    let pairing = Pairing::new(
        PairingPolicy::default_threshold(),
        Predictor::class_based(bs.catalog(), &model),
    );
    let out = bs.run(&mut Backfill::co(pairing), &model);
    let spec = bs.conf().cluster;

    for &t in &[600.0, 3_600.0, 7_200.0] {
        println!("--- t = {:>5.0}s ---", t);
        println!("{}", sinfo_at(&out, &spec, t));
        println!("{}", squeue_at(&out, bs.catalog(), t));
    }

    println!("--- accounting ---");
    println!("{}", sacct(&out, bs.catalog()));

    let m = out.metrics(&spec);
    println!(
        "campaign: {} jobs, makespan {:.1} h, computational efficiency {:.3}, \
         shared node-time {:.0}%",
        m.jobs,
        m.makespan / 3_600.0,
        m.computational_efficiency,
        m.shared_fraction * 100.0
    );
}
