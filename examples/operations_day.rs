//! A day in the machine room: the evaluation cluster runs a saturated
//! campaign under co-allocation-aware backfill while the real world
//! interferes — random node failures (jobs requeue), a planned
//! maintenance window on a rack, and a multifactor priority queue.
//!
//! ```text
//! cargo run --release --example operations_day
//! ```

use nodeshare::engine::{FailureModel, MaintenanceWindow};
use nodeshare::metrics::{by_user, user_slowdown_fairness};
use nodeshare::prelude::*;
use nodeshare::slurm::{MultifactorPriority, PriorityWeights};

fn main() {
    let catalog = AppCatalog::trinity();
    let model = ContentionModel::calibrated();
    let matrix = CoRunTruth::build(&catalog, &model);
    let cluster = ClusterSpec::evaluation();

    // One day of saturated submissions.
    let mut spec = WorkloadSpec::evaluation(&catalog, 99);
    spec.n_jobs = 350;
    spec.arrival = ArrivalProcess::DailyCycle {
        base_rate: 0.0080,
        amplitude: 0.6,
        period: 86_400.0,
    };
    let workload = spec.generate(&catalog);

    // The operational environment: flaky nodes + a rack maintenance.
    let mut config = SimConfig::new(cluster);
    config.failures = Some(FailureModel {
        mtbf_per_node: 400.0 * 3_600.0, // 400 h per node
        repair_time: 2.0 * 3_600.0,
        seed: 1_234,
    });
    config.failure_horizon = 14.0 * 86_400.0;
    // Capture machine maps before, during, and after the rack drain.
    config.snapshot_times = vec![5.0 * 3_600.0, 8.0 * 3_600.0, 12.0 * 3_600.0];
    config.maintenance = vec![MaintenanceWindow {
        // Rack 3: nodes 96..112, down for firmware from hour 6 to hour 10.
        nodes: (96..112).map(NodeId).collect(),
        start: 6.0 * 3_600.0,
        end: 10.0 * 3_600.0,
    }];

    // Policy: CoBackfill behind a multifactor priority queue.
    let pairing = Pairing::new(
        PairingPolicy::default_threshold(),
        Predictor::class_based(&catalog, &model),
    );
    let mut sched = MultifactorPriority::new(
        Backfill::co(pairing),
        PriorityWeights::default(),
        cluster.node_count,
    );
    let out = nodeshare::engine::run(&workload, &matrix, &mut sched, &config);
    assert!(out.complete(), "campaign must finish");

    let m = out.metrics(&cluster);
    println!("operations day on {} nodes:", cluster.node_count);
    println!("  jobs completed        {}", m.jobs);
    println!("  walltime kills        {}", m.killed);
    println!("  failure requeues      {}", m.total_restarts);
    println!("  makespan              {:.1} h", m.makespan / 3_600.0);
    println!("  mean wait             {:.0} min", m.wait.mean / 60.0);
    println!("  computational eff.    {:.3}", m.computational_efficiency);
    println!("  scheduling eff.       {:.3}", m.scheduling_efficiency);
    println!("  shared node-time      {:.0}%", m.shared_fraction * 100.0);
    println!(
        "  user fairness (Jain)  {:.3}",
        user_slowdown_fairness(&out.records)
    );

    // The maintenance window is visible in the occupancy series.
    let busy_at = |h: f64| out.busy_cores.value_at(h * 3_600.0);
    println!(
        "\nbusy cores at hour 5 / 8 / 12: {:.0} / {:.0} / {:.0} \
         (rack drain bites in the middle)",
        busy_at(5.0),
        busy_at(8.0),
        busy_at(12.0)
    );

    for (t, map) in &out.snapshots {
        println!("\nmachine map at hour {:.0}:\n{map}", t / 3_600.0);
    }

    // Users most affected by requeues.
    let mut hit: Vec<(u32, u32)> = Vec::new();
    for r in &out.records {
        if r.restarts > 0 {
            hit.push((r.user, r.restarts));
        }
    }
    hit.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("\njobs hit by node failures: {}", hit.len());
    for (user, restarts) in hit.iter().take(5) {
        println!("  u{user}: {restarts} restart(s)");
    }

    let groups = by_user(&out.records);
    let worst = groups
        .iter()
        .max_by(|a, b| a.1.wait.mean.total_cmp(&b.1.wait.mean))
        .expect("non-empty");
    println!(
        "\nslowest user: u{} (mean wait {:.0} min over {} jobs)",
        worst.0,
        worst.1.wait.mean / 60.0,
        worst.1.jobs
    );
}
