//! Explore the co-run structure of the mini-app catalog: which pairs
//! share a node well, what each predictor believes, and what a pairing
//! policy would accept.
//!
//! ```text
//! cargo run --release --example pairing_explorer
//! ```

use nodeshare::prelude::*;

fn main() {
    let catalog = AppCatalog::trinity();
    let model = ContentionModel::calibrated();
    let truth = CoRunTruth::build(&catalog, &model);
    let matrix = truth.pair_matrix();
    let pairing = Pairing::new(
        PairingPolicy::default_threshold(),
        Predictor::oracle(&catalog, &model),
    );

    // Acceptance map: which pairings the default threshold accepts.
    println!("pairing acceptance under the default threshold (oracle predictor):");
    print!("{:>10}", "");
    for b in catalog.iter() {
        print!("{:>10}", b.name);
    }
    println!();
    for a in catalog.iter() {
        print!("{:>10}", a.name);
        for b in catalog.iter() {
            let mark = if pairing.allows(a.id, b.id) {
                format!("{:.2}", matrix.combined_throughput(a.id, b.id))
            } else {
                "-".to_string()
            };
            print!("{mark:>10}");
        }
        println!();
    }

    // Ranked pairings.
    let mut pairs: Vec<(String, String, f64)> = Vec::new();
    for a in catalog.iter() {
        for b in catalog.iter() {
            if a.id.0 <= b.id.0 {
                pairs.push((
                    a.name.clone(),
                    b.name.clone(),
                    matrix.combined_throughput(a.id, b.id),
                ));
            }
        }
    }
    pairs.sort_by(|x, y| y.2.total_cmp(&x.2));
    println!("\nbest pairs:");
    for (a, b, t) in pairs.iter().take(5) {
        println!("  {a:>10} + {b:<10} combined throughput {t:.2}x");
    }
    println!("worst pairs:");
    for (a, b, t) in pairs.iter().rev().take(5) {
        println!("  {a:>10} + {b:<10} combined throughput {t:.2}x");
    }

    // How much does the class-based predictor distort the picture?
    let class = Predictor::class_based(&catalog, &model);
    let mut worst_err: f64 = 0.0;
    let mut mean_err = 0.0;
    let mut n = 0;
    for a in catalog.ids() {
        for b in catalog.ids() {
            let truth = matrix.rate(a, b);
            let pred = class.rates(a, b).rate_a;
            let err = (truth - pred).abs();
            worst_err = worst_err.max(err);
            mean_err += err;
            n += 1;
        }
    }
    println!(
        "\nclass-based predictor error vs oracle: mean {:.3}, worst {:.3} (rate units)",
        mean_err / n as f64,
        worst_err
    );
}
