//! Replay a Standard Workload Format trace under the baseline and the
//! node-sharing strategy.
//!
//! With no argument, a synthetic campaign is generated, exported to SWF
//! under `results/`, and replayed — demonstrating the full round trip a
//! site would use with its own archive traces:
//!
//! ```text
//! cargo run --release --example swf_replay [trace.swf]
//! ```

use nodeshare::metrics::{pct, relative_gain};
use nodeshare::prelude::*;
use nodeshare::workload::swf;

fn main() {
    let catalog = AppCatalog::trinity();
    let model = ContentionModel::calibrated();
    let matrix = CoRunTruth::build(&catalog, &model);
    let cluster = ClusterSpec::evaluation();
    let cores_per_node = cluster.node.cores();

    // Obtain SWF text: from argv, or export a generated campaign.
    let arg = std::env::args().nth(1);
    let text = match &arg {
        Some(path) => {
            println!("replaying {path}");
            std::fs::read_to_string(path).expect("readable SWF file")
        }
        None => {
            let mut spec = WorkloadSpec::evaluation(&catalog, 7);
            spec.n_jobs = 400;
            spec.arrival = ArrivalProcess::Poisson { rate: 0.0080 };
            let generated = spec.generate(&catalog);
            let text = swf::write(&generated, cores_per_node);
            let _ = std::fs::create_dir_all("results");
            let path = "results/synthetic_campaign.swf";
            std::fs::write(path, &text).expect("writable results dir");
            println!("no trace given; exported synthetic campaign to {path}");
            text
        }
    };

    let records = swf::parse(&text).expect("valid SWF");
    let opts = swf::SwfImportOptions {
        cores_per_node,
        ..Default::default()
    };
    let (workload, skipped) = swf::to_workload(&records, &catalog, &opts);
    println!(
        "parsed {} records -> {} jobs ({} skipped), {:.0} node-hours of work\n",
        records.len(),
        workload.len(),
        skipped,
        workload.total_work_node_seconds() / 3600.0
    );

    let config = SimConfig::new(cluster);
    let easy = nodeshare::engine::run(&workload, &matrix, &mut Backfill::easy(), &config);
    let pairing = Pairing::new(
        PairingPolicy::default_threshold(),
        Predictor::class_based(&catalog, &model),
    );
    let co = nodeshare::engine::run(&workload, &matrix, &mut Backfill::co(pairing), &config);

    let me = easy.metrics(&cluster);
    let mc = co.metrics(&cluster);
    let mut t = Table::new(vec!["metric", "easy", "co-backfill"]);
    t.row(vec![
        "makespan (h)".into(),
        format!("{:.1}", me.makespan / 3600.0),
        format!("{:.1}", mc.makespan / 3600.0),
    ]);
    t.row(vec![
        "mean wait (min)".into(),
        format!("{:.0}", me.wait.mean / 60.0),
        format!("{:.0}", mc.wait.mean / 60.0),
    ]);
    t.row(vec![
        "E_comp".into(),
        format!("{:.3}", me.computational_efficiency),
        format!("{:.3}", mc.computational_efficiency),
    ]);
    t.row(vec![
        "E_sched".into(),
        format!("{:.3}", me.scheduling_efficiency),
        format!("{:.3}", mc.scheduling_efficiency),
    ]);
    println!("{}", t.render());
    println!(
        "sharing gains on this trace: E_comp {}, E_sched {}\n",
        pct(relative_gain(
            mc.computational_efficiency,
            me.computational_efficiency
        )),
        pct(relative_gain(
            mc.scheduling_efficiency,
            me.scheduling_efficiency
        )),
    );

    // The standard trace-study move: sweep the same trace across load
    // levels by compressing/stretching inter-arrival times.
    println!("load sweep on the same trace (arrivals rescaled):");
    for factor in [0.5, 1.0, 1.5, 2.0] {
        let scaled = workload.scale_load(factor);
        let pairing = Pairing::new(
            PairingPolicy::default_threshold(),
            Predictor::class_based(&catalog, &model),
        );
        let e = nodeshare::engine::run(&scaled, &matrix, &mut Backfill::easy(), &config);
        let c = nodeshare::engine::run(&scaled, &matrix, &mut Backfill::co(pairing), &config);
        let (me, mc) = (e.metrics(&cluster), c.metrics(&cluster));
        println!(
            "  {factor:>3.1}x load: wait {:>4.0} -> {:>4.0} min, E_comp gain {}",
            me.wait.mean / 60.0,
            mc.wait.mean / 60.0,
            pct(relative_gain(
                mc.computational_efficiency,
                me.computational_efficiency
            )),
        );
    }
}
