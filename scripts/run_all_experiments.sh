#!/usr/bin/env bash
# Regenerates every table and figure of EXPERIMENTS.md into results/.
set -euo pipefail
cd "$(dirname "$0")/.."

BINS=(
  exp_t1_miniapps
  exp_f2_pair_matrix
  exp_t2_strategies
  exp_f3_load_sweep
  exp_f4_share_fraction
  exp_f5_overhead
  exp_t3_headline
  exp_f7_pairing_ablation
  exp_f8_estimate_error
  exp_f9_failures
  exp_f10_fairness
  exp_f11_smt4
  exp_f12_duration_match
  exp_f13_site_profiles
  exp_f14_gang_vs_smt
  exp_f15_estimate_learning
)

cargo build --release -p nodeshare-bench
for bin in "${BINS[@]}"; do
  echo "=== $bin ==="
  cargo run --release --quiet -p nodeshare-bench --bin "$bin"
done
echo "All experiment outputs are in results/."
