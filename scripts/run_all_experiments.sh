#!/usr/bin/env bash
# Regenerates every table and figure of EXPERIMENTS.md into results/.
#
# Each experiment also dumps per-campaign telemetry (JSONL samples +
# Prometheus exposition) into results/telemetry/ unless the caller
# already pointed NODESHARE_TELEMETRY elsewhere (or disabled it with
# NODESHARE_TELEMETRY=0).
set -uo pipefail
cd "$(dirname "$0")/.."

export NODESHARE_TELEMETRY="${NODESHARE_TELEMETRY:-results/telemetry}"
if [[ "$NODESHARE_TELEMETRY" != 0 && -n "$NODESHARE_TELEMETRY" ]]; then
  mkdir -p "$NODESHARE_TELEMETRY"
fi

BINS=(
  exp_t1_miniapps
  exp_f2_pair_matrix
  exp_t2_strategies
  exp_f3_load_sweep
  exp_f4_share_fraction
  exp_f5_overhead
  exp_t3_headline
  exp_f7_pairing_ablation
  exp_f8_estimate_error
  exp_f9_failures
  exp_f10_fairness
  exp_f11_smt4
  exp_f12_duration_match
  exp_f13_site_profiles
  exp_f14_gang_vs_smt
  exp_f15_estimate_learning
)

cargo build --release -p nodeshare-bench || exit 1

# Run every experiment even when one fails, report per-binary status,
# and propagate failure through the script's own exit code (a plain
# `for` loop under `set -e` would stop at the first failure and, in some
# shells, mask the code of the last command).
failed=()
for bin in "${BINS[@]}"; do
  echo "=== $bin ==="
  if ! cargo run --release --quiet -p nodeshare-bench --bin "$bin"; then
    echo "!!! $bin FAILED (exit $?)" >&2
    failed+=("$bin")
  fi
done

if ((${#failed[@]})); then
  echo "FAILED experiments: ${failed[*]}" >&2
  exit 1
fi
echo "All experiment outputs are in results/."
if [[ "$NODESHARE_TELEMETRY" != 0 && -n "$NODESHARE_TELEMETRY" ]]; then
  echo "Per-campaign telemetry (JSONL + .prom) is in $NODESHARE_TELEMETRY/."
fi
