#!/usr/bin/env bash
# Regenerates every table and figure of EXPERIMENTS.md into results/.
#
# Usage: run_all_experiments.sh [--jobs N | --serial]
#
# The campaign-orchestrated experiments (see CAMPAIGN_BINS below) shard
# their (strategy x seed x preset x cluster) cell grid over N workers;
# `--jobs`/`--serial` (or NODESHARE_JOBS=N|serial) is passed through to
# them. The merge is deterministic, so results/ is bit-identical
# whatever worker count is chosen. The remaining binaries are serial (or
# use their own internal replication parallelism) and ignore the flag.
#
# Each experiment also dumps per-campaign telemetry (JSONL samples +
# Prometheus exposition) into results/telemetry/ unless the caller
# already pointed NODESHARE_TELEMETRY elsewhere (or disabled it with
# NODESHARE_TELEMETRY=0). Campaign binaries write one subdirectory per
# cell (results/telemetry/<campaign>/<cell-slug>/), so parallel cells
# never interleave JSONL writes into a shared file.
set -uo pipefail
cd "$(dirname "$0")/.."

JOBS_ARGS=()
while (($#)); do
  case "$1" in
    --jobs)
      shift
      [[ $# -ge 1 ]] || { echo "--jobs needs a worker count" >&2; exit 2; }
      JOBS_ARGS=(--jobs "$1")
      ;;
    --serial)
      JOBS_ARGS=(--serial)
      ;;
    *)
      echo "unknown option $1 (see --jobs N / --serial)" >&2
      exit 2
      ;;
  esac
  shift
done

# Stamp the run with the lint level it executed under, so archived
# results/ are traceable to a determinism-contract version.
echo "lint: $(cargo run -q -p detlint -- --version)"

export NODESHARE_TELEMETRY="${NODESHARE_TELEMETRY:-results/telemetry}"
if [[ "$NODESHARE_TELEMETRY" != 0 && -n "$NODESHARE_TELEMETRY" ]]; then
  mkdir -p "$NODESHARE_TELEMETRY"
fi

# Experiments ported onto the campaign orchestrator: these accept
# --jobs/--serial and shard cells over a worker pool.
CAMPAIGN_BINS=(
  exp_t2_strategies
  exp_f3_load_sweep
  exp_f9_failures
  exp_f11_smt4
)

BINS=(
  exp_t1_miniapps
  exp_f2_pair_matrix
  exp_t2_strategies
  exp_f3_load_sweep
  exp_f4_share_fraction
  exp_f5_overhead
  exp_t3_headline
  exp_f7_pairing_ablation
  exp_f8_estimate_error
  exp_f9_failures
  exp_f10_fairness
  exp_f11_smt4
  exp_f12_duration_match
  exp_f13_site_profiles
  exp_f14_gang_vs_smt
  exp_f15_estimate_learning
)

cargo build --release -p nodeshare-bench || exit 1

# Run every experiment even when one fails, report per-binary status,
# and propagate failure through the script's own exit code (a plain
# `for` loop under `set -e` would stop at the first failure and, in some
# shells, mask the code of the last command).
failed=()
for bin in "${BINS[@]}"; do
  echo "=== $bin ==="
  extra=()
  if [[ " ${CAMPAIGN_BINS[*]} " == *" $bin "* ]]; then
    extra=("${JOBS_ARGS[@]}")
  fi
  if ! cargo run --release --quiet -p nodeshare-bench --bin "$bin" -- "${extra[@]}"; then
    echo "!!! $bin FAILED (exit $?)" >&2
    failed+=("$bin")
  fi
done

if ((${#failed[@]})); then
  echo "FAILED experiments: ${failed[*]}" >&2
  exit 1
fi
echo "All experiment outputs are in results/."
if [[ "$NODESHARE_TELEMETRY" != 0 && -n "$NODESHARE_TELEMETRY" ]]; then
  echo "Per-campaign telemetry (JSONL + .prom) is in $NODESHARE_TELEMETRY/."
fi
