//! Differential tests across the full strategy lineup, with the replay
//! auditor as the shared oracle, plus fault-injection tests proving the
//! auditor actually catches accounting bugs.

use nodeshare::cluster::NodeId;
use nodeshare::prelude::*;

fn world() -> (AppCatalog, ContentionModel, CoRunTruth) {
    let catalog = AppCatalog::trinity();
    let model = ContentionModel::calibrated();
    let matrix = CoRunTruth::build(&catalog, &model);
    (catalog, model, matrix)
}

/// A deep-queue campaign: jobs arrive faster than the machine drains
/// them, so throughput (not arrival timing) limits the makespan. This is
/// the regime where node sharing pays.
fn saturated_workload(catalog: &AppCatalog, seed: u64, n_jobs: usize) -> Workload {
    let mut spec = WorkloadSpec::evaluation(catalog, seed);
    spec.n_jobs = n_jobs;
    spec.arrival = ArrivalProcess::Poisson { rate: 0.0080 };
    spec.generate(catalog)
}

/// Every strategy in the lineup, on shared seeds, passes a full replay
/// audit (including the queue-order justification check) and schedules
/// exactly the same job set.
#[test]
fn lineup_passes_audit_on_shared_seeds() {
    let (catalog, model, matrix) = world();
    let cluster = ClusterSpec::evaluation();
    let mut config = SimConfig::new(cluster);
    config.audit = false; // audited explicitly below

    for seed in [11, 23] {
        let workload = saturated_workload(&catalog, seed, 80);
        let mut scheduled: Option<Vec<JobId>> = None;
        for cfg in StrategyConfig::lineup() {
            let mut sched = cfg.build(&catalog, &model);
            let (out, trace) = run_traced(&workload, &matrix, sched.as_mut(), &config);
            assert!(out.complete(), "{} seed {seed}", cfg.label());

            let summary = Auditor::new(&matrix, &config)
                .with_queue_order_check()
                .audit(&trace, &out)
                .unwrap_or_else(|vs| {
                    panic!(
                        "{} seed {seed}: {} violation(s), first: {}",
                        cfg.label(),
                        vs.len(),
                        vs[0]
                    )
                });
            assert_eq!(
                summary.starts + out.rejected.len(),
                workload.len() + summary.requeues
            );

            // Same seed => same job set scheduled, whatever the order.
            let mut ids: Vec<JobId> = out.records.iter().map(|r| r.id).collect();
            ids.sort();
            match &scheduled {
                None => scheduled = Some(ids),
                Some(prev) => assert_eq!(prev, &ids, "{} seed {seed}", cfg.label()),
            }
        }
    }
}

/// Exclusive strategies must never co-locate: zero shared starts in the
/// trace and zero shared core-seconds in the outcome.
#[test]
fn exclusive_strategies_never_share() {
    let (catalog, model, matrix) = world();
    let mut config = SimConfig::new(ClusterSpec::evaluation());
    config.audit = false;
    let workload = saturated_workload(&catalog, 7, 60);

    for cfg in StrategyConfig::lineup() {
        if cfg.kind.shares() {
            continue;
        }
        let mut sched = cfg.build(&catalog, &model);
        let (out, trace) = run_traced(&workload, &matrix, sched.as_mut(), &config);
        let summary = Auditor::new(&matrix, &config)
            .audit(&trace, &out)
            .unwrap_or_else(|vs| panic!("{}: {}", cfg.label(), vs[0]));
        assert_eq!(summary.shared_starts, 0, "{}", cfg.label());
        assert_eq!(out.shared_core_seconds, 0.0, "{}", cfg.label());
        assert!(
            out.records.iter().all(|r| !r.shared_alloc),
            "{}",
            cfg.label()
        );
    }
}

/// On a saturated campaign the sharing strategies dominate their
/// exclusive baselines: co-backfill finishes no later than FCFS and
/// actually co-locates work.
#[test]
fn sharing_dominates_exclusive_when_saturated() {
    let (catalog, model, matrix) = world();
    let cluster = ClusterSpec::evaluation();
    let mut config = SimConfig::new(cluster);
    config.audit = false;

    for seed in [3, 19] {
        let workload = saturated_workload(&catalog, seed, 100);

        let run_one = |cfg: &StrategyConfig| {
            let mut sched = cfg.build(&catalog, &model);
            let (out, trace) = run_traced(&workload, &matrix, sched.as_mut(), &config);
            let summary = Auditor::new(&matrix, &config)
                .audit(&trace, &out)
                .unwrap_or_else(|vs| panic!("{}: {}", cfg.label(), vs[0]));
            (out.metrics(&cluster).makespan, summary.shared_starts)
        };

        let (fcfs_makespan, _) = run_one(&StrategyConfig::exclusive(StrategyKind::Fcfs));
        let (co_makespan, co_shared) = run_one(&StrategyConfig::sharing(StrategyKind::CoBackfill));

        assert!(co_shared > 0, "seed {seed}: co-backfill never co-located");
        assert!(
            co_makespan <= fcfs_makespan + 1e-6,
            "seed {seed}: co-backfill makespan {co_makespan} worse than fcfs {fcfs_makespan}"
        );
    }
}

/// The optimized schedulers (dense pairing tables, cached reservations,
/// allocation-free scans) must be **bit-identical** to the retained
/// pre-optimization implementations: the same decision trace and the
/// same outcome, for every strategy in the lineup (plus the
/// co-backfill-only ablation) across several saturated seeds.
#[test]
fn optimized_schedulers_match_reference_bit_for_bit() {
    let (catalog, model, matrix) = world();
    let mut config = SimConfig::new(ClusterSpec::evaluation());
    config.audit = false;

    let mut lineup = StrategyConfig::lineup();
    lineup.push(StrategyConfig::sharing(StrategyKind::CoBackfillOnly));
    for seed in [2, 5, 11, 17, 23] {
        let workload = saturated_workload(&catalog, seed, 70);
        for cfg in &lineup {
            let mut fast = cfg.build(&catalog, &model);
            let (out_fast, trace_fast) = run_traced(&workload, &matrix, fast.as_mut(), &config);
            let mut refr = cfg.build_reference(&catalog, &model);
            let (out_ref, trace_ref) = run_traced(&workload, &matrix, refr.as_mut(), &config);
            assert_eq!(
                trace_fast.events().len(),
                trace_ref.events().len(),
                "{} seed {seed}: trace lengths diverge",
                cfg.label()
            );
            assert!(
                trace_fast == trace_ref,
                "{} seed {seed}: decision traces diverge",
                cfg.label()
            );
            assert!(
                out_fast == out_ref,
                "{} seed {seed}: outcomes diverge",
                cfg.label()
            );
        }
    }
}

/// The optimized paths must also report the *same scheduler telemetry*
/// as the reference: pairing query/hit counters are part of the observed
/// behavior, so the caching layers may not skip counted work when a
/// telemetry sink is attached.
#[test]
fn optimized_schedulers_match_reference_telemetry() {
    use nodeshare::engine::{run_with_telemetry, SimTelemetry};
    let (catalog, model, matrix) = world();
    let mut config = SimConfig::new(ClusterSpec::evaluation());
    config.audit = false;
    let workload = saturated_workload(&catalog, 31, 60);

    for cfg in [
        StrategyConfig::sharing(StrategyKind::CoFirstFit),
        StrategyConfig::sharing(StrategyKind::CoBackfill),
        StrategyConfig::sharing(StrategyKind::CoBackfillOnly),
        // Conservative's fast path skips re-planning via its memos; the
        // engine-side decision counter must not notice.
        StrategyConfig::exclusive(StrategyKind::Conservative),
    ] {
        let tele_fast = SimTelemetry::new(300.0);
        let tele_ref = SimTelemetry::new(300.0);
        let mut fast = cfg.build(&catalog, &model);
        let out_fast = run_with_telemetry(&workload, &matrix, fast.as_mut(), &config, &tele_fast);
        let mut refr = cfg.build_reference(&catalog, &model);
        let out_ref = run_with_telemetry(&workload, &matrix, refr.as_mut(), &config, &tele_ref);
        assert!(out_fast == out_ref, "{}: outcomes diverge", cfg.label());
        for (name, a, b) in [
            (
                "decisions",
                tele_fast.sched.decisions.get(),
                tele_ref.sched.decisions.get(),
            ),
            (
                "pairing_queries",
                tele_fast.sched.pairing_queries.get(),
                tele_ref.sched.pairing_queries.get(),
            ),
            (
                "pairing_hits",
                tele_fast.sched.pairing_hits.get(),
                tele_ref.sched.pairing_hits.get(),
            ),
            (
                "head_started",
                tele_fast.sched.head_started.get(),
                tele_ref.sched.head_started.get(),
            ),
            (
                "backfill_started",
                tele_fast.sched.backfill_started.get(),
                tele_ref.sched.backfill_started.get(),
            ),
        ] {
            assert_eq!(a, b, "{}: telemetry counter {name} diverges", cfg.label());
        }
    }
}

/// The incremental conservative path (version-keyed profile base,
/// in-place reservation splicing, cross-pass prefix memo) must be
/// bit-identical to the from-scratch reference on **every workload
/// mix**, not just the saturated regime: trace, outcome, and records.
#[test]
fn conservative_matches_reference_on_every_workload_mix() {
    use nodeshare::workload::Preset;
    let (catalog, model, matrix) = world();
    let mut config = SimConfig::new(ClusterSpec::evaluation());
    config.audit = false;
    let cfg = StrategyConfig::exclusive(StrategyKind::Conservative);

    for preset in Preset::ALL {
        for seed in [2, 5, 11, 17, 23] {
            let mut spec = preset.spec(&catalog, seed);
            spec.n_jobs = 60;
            let workload = spec.generate(&catalog);

            let mut fast = cfg.build(&catalog, &model);
            let (out_fast, trace_fast) = run_traced(&workload, &matrix, fast.as_mut(), &config);
            let mut refr = cfg.build_reference(&catalog, &model);
            let (out_ref, trace_ref) = run_traced(&workload, &matrix, refr.as_mut(), &config);

            assert!(
                trace_fast == trace_ref,
                "{preset:?} seed {seed}: decision traces diverge"
            );
            assert!(
                out_fast == out_ref,
                "{preset:?} seed {seed}: outcomes diverge"
            );
            assert!(out_fast.complete(), "{preset:?} seed {seed}");
        }
    }
}

/// Wraps the optimized conservative scheduler and corrupts its
/// incremental profile once, the first time the clock reaches `at`.
struct CorruptedConservative {
    inner: Conservative,
    at: f64,
    fired: bool,
}

impl Scheduler for CorruptedConservative {
    fn name(&self) -> &'static str {
        "conservative-backfill"
    }

    fn schedule(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
        if !self.fired && ctx.now >= self.at {
            self.fired = true;
            self.inner.corrupt_next_pass(1);
        }
        self.inner.schedule(ctx)
    }
}

/// Acceptance check for the incremental profile: corrupt one entry of
/// the timeline mid-campaign (one free node vanishes from the anchor
/// step) and the replay auditor names the violated reservation
/// invariant. The corrupted anchor makes the fast path believe the
/// 3-node head cannot start now, so a later 1-node job overtakes it
/// while enough idle nodes sit free — exactly the "queue-order"
/// justification check.
#[test]
fn auditor_catches_corrupted_incremental_profile() {
    use nodeshare::workload::{JobSpec, Workload};
    let (_catalog, _model, matrix) = world();
    let mut config = SimConfig::new(ClusterSpec::new(4, NodeSpec::tiny()));
    config.audit = false;

    let job = |id: u64, nodes: u32, submit: f64, runtime: f64, est: f64| JobSpec {
        malleable: Default::default(),
        id: JobId(id),
        app: AppId(0),
        nodes,
        submit,
        runtime_exclusive: runtime,
        walltime_estimate: est,
        mem_per_node_mib: 64,
        share_eligible: false,
        user: 0,
    };
    // j0 keeps one node until t=300 (estimated free at 600). The 3-node
    // j1 fits the 3 idle nodes the moment it arrives at t=10 — unless
    // the profile lies about a free node, in which case j2 (1 node,
    // arriving just after) jumps it.
    let workload = Workload::new(vec![
        job(0, 1, 0.0, 300.0, 600.0),
        job(1, 3, 10.0, 100.0, 200.0),
        job(2, 1, 11.0, 50.0, 100.0),
    ])
    .unwrap();

    // Control: the untampered optimized path passes the queue-order audit.
    let mut clean = Conservative::new();
    let (out, trace) = run_traced(&workload, &matrix, &mut clean, &config);
    assert!(out.complete());
    Auditor::new(&matrix, &config)
        .with_queue_order_check()
        .audit(&trace, &out)
        .expect("untampered incremental profile must audit clean");

    // Corrupt the anchor entry of the incremental profile at t=10.
    let mut sched = CorruptedConservative {
        inner: Conservative::new(),
        at: 10.0,
        fired: false,
    };
    let (out, trace) = run_traced(&workload, &matrix, &mut sched, &config);
    assert!(sched.fired);
    assert!(out.complete(), "corruption delays but must not wedge");

    let violations = Auditor::new(&matrix, &config)
        .with_queue_order_check()
        .audit(&trace, &out)
        .expect_err("corrupted profile must fail the replay audit");
    let v = violations
        .iter()
        .find(|v| v.invariant == "queue-order")
        .expect("the violated reservation invariant must be named");
    assert_eq!(v.job, Some(JobId(2)), "the overtaking job is flagged");
    let msg = v.to_string();
    assert!(
        msg.contains("queue-order") && msg.contains("jumped waiting head job1"),
        "violation must name the invariant and the delayed head: {msg}"
    );
}

/// The parallel campaign orchestrator must be **bit-identical** to the
/// serial reference: the same campaign grid run under `--serial`,
/// `--jobs 1`, and `--jobs 8` produces byte-identical emitted tables and
/// identical per-cell outcomes and decision-trace hashes, across three
/// replication seeds. This is the "two roads" contract end to end —
/// parallelizing the campaign must not change a single byte of the
/// science.
#[test]
fn parallel_campaign_is_bit_identical_to_serial() {
    use nodeshare_bench::campaign::{run_campaign, CampaignSpec, CellOptions, PresetVariant};
    use nodeshare_bench::orchestrator::Parallelism;
    use nodeshare_bench::{seeds, World};

    let world = World::evaluation();
    let spec = CampaignSpec::on_evaluation_cluster(
        "differential",
        vec![
            PresetVariant {
                n_jobs: Some(60),
                ..PresetVariant::saturated("saturated")
            },
            PresetVariant {
                n_jobs: Some(50),
                ..PresetVariant::online("online")
            },
        ],
        vec![
            StrategyConfig::exclusive(StrategyKind::EasyBackfill).into(),
            StrategyConfig::sharing(StrategyKind::CoBackfill).into(),
            StrategyConfig::exclusive(StrategyKind::Conservative).into(),
        ],
        seeds(3),
    );
    let opts = CellOptions { hash_traces: true };

    let reference = run_campaign(&world, &spec, Parallelism::Serial, &opts)
        .expect("serial reference campaign must succeed");
    assert_eq!(reference.results.len(), spec.n_cells());

    for jobs in [1, 8] {
        let parallel = run_campaign(&world, &spec, Parallelism::Jobs(jobs), &opts)
            .unwrap_or_else(|f| panic!("--jobs {jobs} campaign failed: {}", f[0]));
        for (a, b) in reference.results.iter().zip(&parallel.results) {
            let label = spec.cell_label(&a.coord);
            assert_eq!(a.coord, b.coord, "jobs={jobs}: cell order diverges");
            assert!(
                a.trace_hash.is_some() && a.trace_hash == b.trace_hash,
                "jobs={jobs} cell {label}: decision-trace hashes diverge"
            );
            assert!(
                a.outcome == b.outcome,
                "jobs={jobs} cell {label}: outcomes diverge"
            );
            assert!(
                a.metrics == b.metrics,
                "jobs={jobs} cell {label}: metrics diverge"
            );
        }
        // The emitted artifacts — rendered table and CSV — are byte-equal.
        assert_eq!(
            reference.cell_table.render(),
            parallel.cell_table.render(),
            "jobs={jobs}: rendered cell tables diverge"
        );
        assert_eq!(
            reference.cell_table.to_csv(),
            parallel.cell_table.to_csv(),
            "jobs={jobs}: cell CSVs diverge"
        );
    }
}

/// Observability is read-only: recording a trace, running under the
/// telemetry layer (which arms the scheduler phase-span timers), and
/// generating reports all leave the simulation outcome bit-identical to
/// the plain telemetry-off `run`, across the full strategy lineup — and
/// report generation itself is deterministic.
#[test]
fn report_and_phase_spans_leave_outcomes_bit_identical() {
    use nodeshare::engine::{run_traced_with_telemetry, run_with_telemetry, SimTelemetry};
    use nodeshare::report::{Report, ReportOptions};
    use nodeshare_bench::campaign::trace_hash;

    let (catalog, model, matrix) = world();
    let cluster = ClusterSpec::evaluation();
    let mut config = SimConfig::new(cluster);
    config.audit = false;

    let workload = saturated_workload(&catalog, 31, 60);
    for cfg in StrategyConfig::lineup() {
        let label = cfg.label();
        let baseline = {
            let mut sched = cfg.build(&catalog, &model);
            run(&workload, &matrix, sched.as_mut(), &config)
        };

        // Tracing must not perturb the simulation.
        let (traced_out, trace) = {
            let mut sched = cfg.build(&catalog, &model);
            run_traced(&workload, &matrix, sched.as_mut(), &config)
        };
        assert!(
            baseline == traced_out,
            "{label}: tracing changed the outcome"
        );

        // The telemetry layer arms the wall-clock phase spans inside the
        // schedulers (placement scan, timeline maintenance, pairing
        // lookups); measuring must not steer a single decision.
        let tele = SimTelemetry::new(300.0);
        let tele_out = {
            let mut sched = cfg.build(&catalog, &model);
            run_with_telemetry(&workload, &matrix, sched.as_mut(), &config, &tele)
        };
        assert!(
            baseline == tele_out,
            "{label}: telemetry/phase spans changed the outcome"
        );

        // Both at once — the campaign orchestrator's audited-cell path.
        let tele2 = SimTelemetry::new(300.0);
        let (both_out, both_trace) = {
            let mut sched = cfg.build(&catalog, &model);
            run_traced_with_telemetry(&workload, &matrix, sched.as_mut(), &config, &tele2)
        };
        assert!(
            baseline == both_out,
            "{label}: trace+telemetry changed the outcome"
        );
        assert_eq!(
            trace_hash(&trace),
            trace_hash(&both_trace),
            "{label}: decision traces diverge across entry points"
        );

        // Report generation is a pure function of the trace: two builds
        // are byte-identical, from either entry point's trace.
        let opts = ReportOptions {
            title: Some(format!("differential: {label}")),
            total_cores: Some(cluster.total_cores()),
        };
        let a = Report::from_trace(&trace, &opts);
        let b = Report::from_trace(&trace, &opts);
        let c = Report::from_trace(&both_trace, &opts);
        assert_eq!(a.perfetto_json, b.perfetto_json, "{label}");
        assert_eq!(a.markdown, b.markdown, "{label}");
        assert_eq!(a.perfetto_json, c.perfetto_json, "{label}");
        assert_eq!(a.markdown, c.markdown, "{label}");
    }
}

/// The calendar event queue must be a pure performance substitution: for
/// every strategy in the lineup (plus the co-backfill-only ablation), the
/// same campaign run through the calendar backend and the reference
/// binary heap produces identical decision traces and outcomes.
#[test]
fn calendar_event_queue_matches_heap_across_lineup() {
    use nodeshare::engine::QueueBackend;
    let (catalog, model, matrix) = world();
    let mut cal_config = SimConfig::new(ClusterSpec::evaluation());
    cal_config.audit = false;
    cal_config.queue_backend = QueueBackend::Calendar;
    let mut heap_config = cal_config.clone();
    heap_config.queue_backend = QueueBackend::BinaryHeap;

    let mut lineup = StrategyConfig::lineup();
    lineup.push(StrategyConfig::sharing(StrategyKind::CoBackfillOnly));
    for seed in [2, 17, 23] {
        let workload = saturated_workload(&catalog, seed, 70);
        for cfg in &lineup {
            let mut cal = cfg.build(&catalog, &model);
            let (out_cal, trace_cal) = run_traced(&workload, &matrix, cal.as_mut(), &cal_config);
            let mut heap = cfg.build(&catalog, &model);
            let (out_heap, trace_heap) =
                run_traced(&workload, &matrix, heap.as_mut(), &heap_config);
            assert!(
                trace_cal == trace_heap,
                "{} seed {seed}: decision traces diverge across queue backends",
                cfg.label()
            );
            assert!(
                out_cal == out_heap,
                "{} seed {seed}: outcomes diverge across queue backends",
                cfg.label()
            );
        }
    }
}

/// Feeding the engine from a streaming source must be indistinguishable
/// from materializing the workload first: identical decision traces,
/// outcomes, and telemetry counters for every strategy in the lineup,
/// across chunk sizes that exercise mid-tie chunk boundaries.
#[test]
fn streamed_runs_match_materialized_across_lineup() {
    use nodeshare::engine::{
        run_streamed_traced, run_streamed_with_telemetry, run_with_telemetry, SimTelemetry,
    };
    let (catalog, model, matrix) = world();
    let mut config = SimConfig::new(ClusterSpec::evaluation());
    config.audit = false;

    let mut spec = WorkloadSpec::evaluation(&catalog, 13);
    spec.n_jobs = 70;
    spec.arrival = ArrivalProcess::Poisson { rate: 0.0080 };
    let materialized = spec.generate(&catalog);

    let mut lineup = StrategyConfig::lineup();
    lineup.push(StrategyConfig::sharing(StrategyKind::CoBackfillOnly));
    for cfg in &lineup {
        let mut sched = cfg.build(&catalog, &model);
        let (out_mat, trace_mat) = run_traced(&materialized, &matrix, sched.as_mut(), &config);
        for chunk in [1, 17, 4096] {
            let mut source = spec.stream(&catalog, chunk);
            let mut sched = cfg.build(&catalog, &model);
            let (out_str, trace_str) =
                run_streamed_traced(&mut source, &matrix, sched.as_mut(), &config);
            assert!(
                trace_mat == trace_str,
                "{} chunk {chunk}: decision traces diverge streamed vs materialized",
                cfg.label()
            );
            assert!(
                out_mat == out_str,
                "{} chunk {chunk}: outcomes diverge streamed vs materialized",
                cfg.label()
            );
        }

        // Telemetry counters (not the periodic gauge samples — the
        // event-queue gauge legitimately reflects fewer queued arrivals
        // in a streamed run) must agree as well.
        let tele_mat = SimTelemetry::new(300.0);
        let mut sched = cfg.build(&catalog, &model);
        run_with_telemetry(&materialized, &matrix, sched.as_mut(), &config, &tele_mat);
        let tele_str = SimTelemetry::new(300.0);
        let mut source = spec.stream(&catalog, 17);
        let mut sched = cfg.build(&catalog, &model);
        run_streamed_with_telemetry(&mut source, &matrix, sched.as_mut(), &config, &tele_str);
        for (name, a, b) in [
            (
                "pairing_queries",
                tele_mat.sched.pairing_queries.get(),
                tele_str.sched.pairing_queries.get(),
            ),
            (
                "pairing_hits",
                tele_mat.sched.pairing_hits.get(),
                tele_str.sched.pairing_hits.get(),
            ),
            (
                "decisions",
                tele_mat.sched.decisions.get(),
                tele_str.sched.decisions.get(),
            ),
        ] {
            assert_eq!(
                a,
                b,
                "{}: telemetry counter {name} diverges streamed vs materialized",
                cfg.label()
            );
        }
        // The closing sample carries the engine-side cumulative counters.
        let last_mat = tele_mat.samples().pop().expect("closing sample");
        let last_str = tele_str.samples().pop().expect("closing sample");
        for (name, a, b) in [
            ("completed", last_mat.completed, last_str.completed),
            (
                "starts_exclusive",
                last_mat.starts_exclusive,
                last_str.starts_exclusive,
            ),
            (
                "starts_shared",
                last_mat.starts_shared,
                last_str.starts_shared,
            ),
            (
                "backfill_started",
                last_mat.backfill_started,
                last_str.backfill_started,
            ),
        ] {
            assert_eq!(
                a,
                b,
                "{}: closing-sample counter {name} diverges streamed vs materialized",
                cfg.label()
            );
        }
    }
}

/// Lean mode (`retain_detail = false`) discards per-job records and series
/// points but must keep the aggregate science exact: same event count, end
/// time, completion count, rejections, peak queue depth, and (up to fp
/// regrouping of same-instant updates) the occupancy integrals.
#[test]
fn lean_mode_keeps_exact_counts_and_close_integrals() {
    let (catalog, model, matrix) = world();
    let mut full_config = SimConfig::new(ClusterSpec::evaluation());
    full_config.audit = false;
    let mut lean_config = full_config.clone();
    lean_config.retain_detail = false;

    let workload = saturated_workload(&catalog, 29, 80);
    for cfg in [
        StrategyConfig::exclusive(StrategyKind::EasyBackfill),
        StrategyConfig::sharing(StrategyKind::CoBackfill),
    ] {
        let mut sched = cfg.build(&catalog, &model);
        let full = run(&workload, &matrix, sched.as_mut(), &full_config);
        let mut sched = cfg.build(&catalog, &model);
        let lean = run(&workload, &matrix, sched.as_mut(), &lean_config);

        let label = cfg.label();
        assert!(lean.records.is_empty(), "{label}: lean run kept records");
        assert!(lean.queue_depth.points().is_empty(), "{label}");
        assert_eq!(full.completed_jobs, full.records.len() as u64, "{label}");
        assert_eq!(lean.completed_jobs, full.completed_jobs, "{label}");
        assert_eq!(lean.events_processed, full.events_processed, "{label}");
        assert_eq!(lean.end_time, full.end_time, "{label}");
        assert_eq!(lean.unscheduled, full.unscheduled, "{label}");
        assert_eq!(lean.rejected, full.rejected, "{label}");
        assert_eq!(lean.peak_queue_depth, full.peak_queue_depth, "{label}");
        assert_eq!(
            lean.peak_queue_depth,
            full.queue_depth.max_value(),
            "{label}"
        );
        let rel = (lean.busy_core_seconds - full.busy_core_seconds).abs()
            / full.busy_core_seconds.max(1.0);
        assert!(rel < 1e-9, "{label}: busy integral drifted by {rel}");
    }
}

/// Counts justification calls, proving the engine batches them through
/// `explain_all` — once per invocation that produced decisions — instead
/// of re-scanning per decision, and skips them entirely when not tracing.
struct CountingExplain {
    inner: Box<dyn Scheduler>,
    nonempty_invocations: usize,
    explain_all_calls: std::cell::Cell<usize>,
    explained_decisions: std::cell::Cell<usize>,
}

impl Scheduler for CountingExplain {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn schedule(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
        let d = self.inner.schedule(ctx);
        if !d.is_empty() {
            self.nonempty_invocations += 1;
        }
        d
    }
    fn explain_all(
        &self,
        ctx: &SchedContext<'_>,
        decisions: &[Decision],
    ) -> Vec<nodeshare::engine::StartReason> {
        self.explain_all_calls.set(self.explain_all_calls.get() + 1);
        self.explained_decisions
            .set(self.explained_decisions.get() + decisions.len());
        self.inner.explain_all(ctx, decisions)
    }
}

/// The traced path justifies decisions through one `explain_all` batch
/// per productive invocation (never per decision), and the untraced path
/// never pays for justification at all.
#[test]
fn traced_runs_batch_justifications_through_explain_all() {
    let (catalog, model, matrix) = world();
    let mut config = SimConfig::new(ClusterSpec::evaluation());
    config.audit = false;
    let workload = saturated_workload(&catalog, 11, 60);
    let cfg = StrategyConfig::sharing(StrategyKind::CoBackfill);

    let mut counting = CountingExplain {
        inner: cfg.build(&catalog, &model),
        nonempty_invocations: 0,
        explain_all_calls: std::cell::Cell::new(0),
        explained_decisions: std::cell::Cell::new(0),
    };
    let (out, _trace) = run_traced(&workload, &matrix, &mut counting, &config);
    assert!(out.complete());
    assert_eq!(
        counting.explain_all_calls.get(),
        counting.nonempty_invocations,
        "tracing must justify via exactly one explain_all per productive invocation"
    );
    assert_eq!(
        counting.explained_decisions.get() as u64,
        out.completed_jobs,
        "every started job is justified exactly once"
    );

    let mut counting = CountingExplain {
        inner: cfg.build(&catalog, &model),
        nonempty_invocations: 0,
        explain_all_calls: std::cell::Cell::new(0),
        explained_decisions: std::cell::Cell::new(0),
    };
    run(&workload, &matrix, &mut counting, &config);
    assert_eq!(
        counting.explain_all_calls.get(),
        0,
        "untraced runs must not pay for justification"
    );
}

/// Acceptance check: a double-charged node-second in the outcome is a
/// conservation violation the auditor reports by name.
#[test]
fn auditor_catches_double_charged_node_seconds() {
    let (catalog, model, matrix) = world();
    let cluster = ClusterSpec::evaluation();
    let mut config = SimConfig::new(cluster);
    config.audit = false;
    let workload = saturated_workload(&catalog, 5, 40);

    let cfg = StrategyConfig::sharing(StrategyKind::CoBackfill);
    let mut sched = cfg.build(&catalog, &model);
    let (mut out, trace) = run_traced(&workload, &matrix, sched.as_mut(), &config);

    // Sanity: the untampered run is clean.
    Auditor::new(&matrix, &config)
        .audit(&trace, &out)
        .expect("untampered run must audit clean");

    // Inject the bug: one node billed for one extra second.
    out.busy_core_seconds += cluster.node.cores() as f64;

    let violations = Auditor::new(&matrix, &config)
        .audit(&trace, &out)
        .expect_err("double-charged node-second must be caught");
    let v = violations
        .iter()
        .find(|v| v.invariant == "node-second-conservation")
        .expect("conservation violation must be reported by name");
    let msg = v.to_string();
    assert!(msg.contains("node-second-conservation"), "{msg}");
}

/// Acceptance check: a doctored placement (a start on a node that does
/// not exist) is reported with the job, the node, and the violated
/// invariant — enough to act on.
#[test]
fn auditor_catches_doctored_placement() {
    let (catalog, model, matrix) = world();
    let mut config = SimConfig::new(ClusterSpec::evaluation());
    config.audit = false;
    let workload = saturated_workload(&catalog, 5, 40);

    let cfg = StrategyConfig::sharing(StrategyKind::CoBackfill);
    let mut sched = cfg.build(&catalog, &model);
    let (out, trace) = run_traced(&workload, &matrix, sched.as_mut(), &config);

    // Rewrite the first start to land on a node the cluster doesn't have.
    let phantom = NodeId(9999);
    let mut doctored = DecisionTrace::new();
    let mut victim = None;
    for ev in trace.events() {
        let mut ev = ev.clone();
        if victim.is_none() {
            if let TraceEvent::Started { job, nodes, .. } = &mut ev {
                victim = Some(*job);
                nodes[0] = phantom;
            }
        }
        doctored.push(ev);
    }
    let victim = victim.expect("campaign must start at least one job");

    let violations = Auditor::new(&matrix, &config)
        .audit(&doctored, &out)
        .expect_err("phantom node must be caught");
    let v = violations
        .iter()
        .find(|v| v.invariant == "known-node")
        .expect("placement violation must be reported by name");
    assert_eq!(v.job, Some(victim));
    assert_eq!(v.node, Some(phantom));
    let msg = v.to_string();
    assert!(
        msg.contains("known-node") && msg.contains(&victim.to_string()) && msg.contains("n9999"),
        "violation message must name job, node, and invariant: {msg}"
    );
}

/// D1 regression for the one annotated unordered set in the workload
/// path: the duplicate-id guard in `Workload::with_dedup_capacity`.
/// The set is membership-only, so neither the order jobs are inserted
/// in nor the set's initial capacity (its bucket layout) may influence
/// anything downstream. Build the same job set three ways — natural
/// order, reversed, and interleaved, each with a different dedup
/// capacity — run every lineup strategy on each, and require the
/// decision traces and rendered report artifacts to be byte-identical.
#[test]
fn dedup_set_layout_leaves_campaign_artifacts_bit_identical() {
    use nodeshare::report::{Report, ReportOptions};
    use nodeshare_bench::campaign::trace_hash;

    let (catalog, model, matrix) = world();
    let cluster = ClusterSpec::evaluation();
    let mut config = SimConfig::new(cluster);
    config.audit = false;

    let base = saturated_workload(&catalog, 17, 60);
    let jobs = base.jobs().to_vec();
    let mut reversed = jobs.clone();
    reversed.reverse();
    let mut interleaved: Vec<_> = jobs.iter().step_by(2).cloned().collect();
    interleaved.extend(jobs.iter().skip(1).step_by(2).cloned());

    let variants = [
        Workload::new(jobs).expect("natural order"),
        Workload::with_dedup_capacity(reversed, 0).expect("reversed, no preallocation"),
        Workload::with_dedup_capacity(interleaved, 4096).expect("interleaved, oversized"),
    ];
    for (i, w) in variants.iter().enumerate() {
        assert_eq!(
            w.jobs(),
            base.jobs(),
            "variant {i}: construction order leaked into the job sequence"
        );
    }

    for cfg in StrategyConfig::lineup() {
        let label = cfg.label();
        let mut reference: Option<(u64, String, String)> = None;
        for (i, w) in variants.iter().enumerate() {
            let mut sched = cfg.build(&catalog, &model);
            let (out, trace) = run_traced(w, &matrix, sched.as_mut(), &config);
            assert!(out.complete(), "{label} variant {i}");
            let opts = ReportOptions {
                title: Some(format!("d1 differential: {label}")),
                total_cores: Some(cluster.total_cores()),
            };
            let report = Report::from_trace(&trace, &opts);
            let artifact = (trace_hash(&trace), report.markdown, report.perfetto_json);
            match &reference {
                None => reference = Some(artifact),
                Some(prev) => assert_eq!(
                    prev, &artifact,
                    "{label} variant {i}: artifacts diverged with dedup-set layout"
                ),
            }
        }
    }
}

/// The adaptive reshape policy must be a pure pass-through on all-rigid
/// workloads: no job carries a malleability contract, so neither the
/// shrink-to-admit nor the grow-to-fill path may ever fire, and the
/// decision trace and outcome (up to the policy's name) are
/// **byte-identical** to plain EASY backfill on **every workload mix** —
/// the same preset × seed grid the conservative differential sweeps.
#[test]
fn adaptive_is_bit_identical_to_easy_backfill_on_rigid_workloads() {
    use nodeshare::workload::Preset;
    let (catalog, model, matrix) = world();
    let mut config = SimConfig::new(ClusterSpec::evaluation());
    config.audit = false;
    let adaptive = StrategyConfig::exclusive(StrategyKind::Adaptive);
    let easy = StrategyConfig::exclusive(StrategyKind::EasyBackfill);

    for preset in Preset::ALL {
        for seed in [2, 5, 11, 17, 23] {
            let mut spec = preset.spec(&catalog, seed);
            spec.n_jobs = 60;
            let workload = spec.generate(&catalog);
            assert!(
                workload.jobs().iter().all(|j| j.malleable.is_rigid()),
                "{preset:?}: presets generate rigid jobs unless opted in"
            );

            let mut a = adaptive.build(&catalog, &model);
            let (out_a, trace_a) = run_traced(&workload, &matrix, a.as_mut(), &config);
            let mut e = easy.build(&catalog, &model);
            let (out_e, trace_e) = run_traced(&workload, &matrix, e.as_mut(), &config);

            assert!(
                trace_a
                    .events()
                    .iter()
                    .all(|ev| !matches!(ev, TraceEvent::Reshape { .. })),
                "{preset:?} seed {seed}: reshape on an all-rigid workload"
            );
            assert!(
                trace_a == trace_e,
                "{preset:?} seed {seed}: decision traces diverge"
            );
            let mut renamed = out_a.clone();
            renamed.scheduler = out_e.scheduler.clone();
            assert!(
                renamed == out_e,
                "{preset:?} seed {seed}: outcomes diverge beyond the name"
            );
            assert!(out_e.complete(), "{preset:?} seed {seed}");
        }
    }
}

/// The rigid pass-through also holds under the telemetry layer: the
/// scheduler-side counters and the closing cumulative sample agree
/// between adaptive and EASY backfill when no job is malleable.
#[test]
fn adaptive_matches_easy_backfill_telemetry_on_rigid_workloads() {
    use nodeshare::engine::{run_with_telemetry, SimTelemetry};
    let (catalog, model, matrix) = world();
    let mut config = SimConfig::new(ClusterSpec::evaluation());
    config.audit = false;
    let workload = saturated_workload(&catalog, 31, 60);

    let tele_a = SimTelemetry::new(300.0);
    let mut a = StrategyConfig::exclusive(StrategyKind::Adaptive).build(&catalog, &model);
    let out_a = run_with_telemetry(&workload, &matrix, a.as_mut(), &config, &tele_a);
    let tele_e = SimTelemetry::new(300.0);
    let mut e = StrategyConfig::exclusive(StrategyKind::EasyBackfill).build(&catalog, &model);
    let out_e = run_with_telemetry(&workload, &matrix, e.as_mut(), &config, &tele_e);

    let mut renamed = out_a.clone();
    renamed.scheduler = out_e.scheduler.clone();
    assert!(renamed == out_e, "outcomes diverge beyond the name");
    for (name, a, b) in [
        (
            "decisions",
            tele_a.sched.decisions.get(),
            tele_e.sched.decisions.get(),
        ),
        (
            "head_started",
            tele_a.sched.head_started.get(),
            tele_e.sched.head_started.get(),
        ),
        (
            "backfill_started",
            tele_a.sched.backfill_started.get(),
            tele_e.sched.backfill_started.get(),
        ),
    ] {
        assert_eq!(a, b, "telemetry counter {name} diverges");
    }
    let last_a = tele_a.samples().pop().expect("closing sample");
    let last_e = tele_e.samples().pop().expect("closing sample");
    assert_eq!(last_a.completed, last_e.completed);
    assert_eq!(last_a.starts_exclusive, last_e.starts_exclusive);
    assert_eq!(last_a.starts_shared, last_e.starts_shared);
    assert_eq!(last_a.backfill_started, last_e.backfill_started);
}

/// End to end through the campaign orchestrator: two campaigns over the
/// same rigid preset grid — one running adaptive, one running EASY
/// backfill, both under the same axis label — emit byte-identical cell
/// tables and CSVs, and every cell's decision-trace hash and metrics
/// agree. The reshape machinery costs the rigid science nothing.
#[test]
fn adaptive_campaign_artifacts_match_easy_backfill_on_rigid_presets() {
    use nodeshare_bench::campaign::{
        run_campaign, CampaignSpec, CellOptions, PresetVariant, StrategyVariant,
    };
    use nodeshare_bench::orchestrator::Parallelism;
    use nodeshare_bench::{seeds, World};

    let world = World::evaluation();
    let campaign = |cfg: StrategyConfig| {
        let spec = CampaignSpec::on_evaluation_cluster(
            "rigid-differential",
            vec![
                PresetVariant {
                    n_jobs: Some(50),
                    ..PresetVariant::saturated("saturated")
                },
                PresetVariant {
                    n_jobs: Some(40),
                    ..PresetVariant::online("online")
                },
            ],
            // The same axis label for both policies: any byte that
            // differs below is a behavioral divergence, not a name.
            vec![StrategyVariant::named("policy", cfg)],
            seeds(5),
        );
        run_campaign(
            &world,
            &spec,
            Parallelism::Serial,
            &CellOptions { hash_traces: true },
        )
        .unwrap_or_else(|f| panic!("campaign failed: {}", f[0]))
    };

    let a = campaign(StrategyConfig::exclusive(StrategyKind::Adaptive));
    let e = campaign(StrategyConfig::exclusive(StrategyKind::EasyBackfill));
    assert_eq!(a.results.len(), e.results.len());
    for (ra, re) in a.results.iter().zip(&e.results) {
        assert_eq!(ra.coord, re.coord, "cell order diverges");
        assert!(
            ra.trace_hash.is_some() && ra.trace_hash == re.trace_hash,
            "cell {:?}: decision-trace hashes diverge",
            ra.coord
        );
        assert!(ra.metrics == re.metrics, "cell {:?}: metrics", ra.coord);
    }
    assert_eq!(
        a.cell_table.render(),
        e.cell_table.render(),
        "rendered cell tables diverge"
    );
    assert_eq!(
        a.cell_table.to_csv(),
        e.cell_table.to_csv(),
        "cell CSVs diverge"
    );
}

/// Acceptance check for the reshape invariants: over-shrink one recorded
/// reshape below the job's contract minimum and the replay auditor names
/// the invariant, the job, and the node — same bar as the doctored
/// placement above.
#[test]
fn auditor_catches_overshrunk_reshape() {
    use nodeshare::workload::{JobSpec, Malleability, Workload};
    let (catalog, model, matrix) = world();
    let mut config = SimConfig::new(ClusterSpec::new(4, NodeSpec::tiny()));
    config.audit = false;

    // Job 0 holds all four nodes under a [2, 4] contract; job 1 arrives
    // behind it, so adaptive shrinks job 0 to admit it.
    let job = |id: u64, nodes: u32, submit: f64, runtime: f64, malleable: Malleability| JobSpec {
        malleable,
        id: JobId(id),
        app: AppId(0),
        nodes,
        submit,
        runtime_exclusive: runtime,
        walltime_estimate: 3_000.0,
        mem_per_node_mib: 64,
        share_eligible: false,
        user: 0,
    };
    let workload = Workload::new(vec![
        job(0, 4, 0.0, 400.0, Malleability::range(2, 4, 10.0)),
        job(1, 2, 5.0, 50.0, Malleability::RIGID),
    ])
    .unwrap();

    let cfg = StrategyConfig::exclusive(StrategyKind::Adaptive);
    let mut sched = cfg.build(&catalog, &model);
    let (out, trace) = run_traced(&workload, &matrix, sched.as_mut(), &config);
    assert!(out.complete());

    // Control: the engine-produced reshape schedule audits clean.
    Auditor::new(&matrix, &config)
        .audit(&trace, &out)
        .expect("untampered reshape schedule must audit clean");

    // Doctor the first reshape: keep a single node, below the contract's
    // minimum of two.
    let mut doctored = DecisionTrace::new();
    let mut victim = None;
    let mut flagged = None;
    for ev in trace.events() {
        let mut ev = ev.clone();
        if victim.is_none() {
            if let TraceEvent::Reshape { job, to, .. } = &mut ev {
                victim = Some(*job);
                to.truncate(1);
                flagged = to.first().copied();
            }
        }
        doctored.push(ev);
    }
    let victim = victim.expect("adaptive must have reshaped job 0");

    let violations = Auditor::new(&matrix, &config)
        .audit(&doctored, &out)
        .expect_err("over-shrink below min_nodes must be caught");
    let v = violations
        .iter()
        .find(|v| v.invariant == "reshape-width-in-range")
        .expect("the contract-range invariant must be reported by name");
    assert_eq!(v.job, Some(victim), "the over-shrunk job is flagged");
    assert_eq!(v.node, flagged, "the surviving node is flagged");
    let msg = v.to_string();
    assert!(
        msg.contains("reshape-width-in-range") && msg.contains("outside the contract"),
        "violation must name the invariant and the range: {msg}"
    );
}
