//! Whole-system property tests: accounting identities that must hold for
//! any workload under any strategy, exercised through the full stack.

use nodeshare::prelude::*;
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct RawJob {
    nodes: u32,
    runtime: f64,
    gap: f64,
    app: u8,
    share: bool,
    over: f64,
}

fn raw_job() -> impl Strategy<Value = RawJob> {
    (
        1u32..=8,
        30.0f64..2_000.0,
        0.0f64..600.0,
        0u8..8,
        prop::bool::weighted(0.7),
        1.05f64..3.0,
    )
        .prop_map(|(nodes, runtime, gap, app, share, over)| RawJob {
            nodes,
            runtime,
            gap,
            app,
            share,
            over,
        })
}

fn build(raw: Vec<RawJob>) -> Workload {
    let mut t = 0.0;
    Workload::new(
        raw.into_iter()
            .enumerate()
            .map(|(i, r)| {
                t += r.gap;
                JobSpec {
                    malleable: Default::default(),
                    id: nodeshare::cluster::JobId(i as u64),
                    app: AppId(r.app),
                    nodes: r.nodes,
                    submit: t,
                    runtime_exclusive: r.runtime,
                    walltime_estimate: r.runtime * r.over,
                    mem_per_node_mib: 512,
                    share_eligible: r.share,
                    user: i as u32 % 9,
                }
            })
            .collect(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Accounting identities, checked through the whole stack for every
    /// strategy in the lineup:
    /// * busy time is bounded by makespan × cores and by the series max,
    /// * delivered work never exceeds busy capacity scaled by the best
    ///   possible sharing factor (2×),
    /// * shared time is a subset of busy time,
    /// * per-job shared node-seconds are consistent with occupancy.
    #[test]
    fn accounting_identities_hold(raw in prop::collection::vec(raw_job(), 1..20)) {
        let catalog = AppCatalog::trinity();
        let model = ContentionModel::calibrated();
        let matrix = CoRunTruth::build(&catalog, &model);
        let cluster = ClusterSpec::new(12, nodeshare::cluster::NodeSpec::tiny());
        let workload = build(raw);
        for cfg in StrategyConfig::lineup() {
            let mut sched = cfg.build(&catalog, &model);
            let out = nodeshare::engine::run(
                &workload, &matrix, sched.as_mut(), &SimConfig::new(cluster),
            );
            prop_assert!(out.complete(), "{}", cfg.label());
            let m = out.metrics(&cluster);
            let cores = cluster.total_cores() as f64;

            prop_assert!(out.busy_core_seconds <= m.makespan * cores + 1e-6);
            prop_assert!(out.shared_core_seconds <= out.busy_core_seconds + 1e-6);
            prop_assert!(out.busy_cores.max_value() <= cores + 1e-9);
            prop_assert!(m.utilization <= 1.0 + 1e-9);
            // Work delivered can never exceed 2× busy capacity (SMT-2).
            prop_assert!(m.work_core_seconds <= 2.0 * out.busy_core_seconds + 1e-6);

            let cores_per_node = cluster.node.cores() as f64;
            let shared_by_records: f64 = out
                .records
                .iter()
                .map(|r| r.shared_node_seconds)
                .sum();
            // Every shared node-second involves exactly two jobs, and the
            // engine's series counts the node once.
            let shared_by_series = out.shared_core_seconds / cores_per_node;
            prop_assert!(
                (shared_by_records - 2.0 * shared_by_series).abs() < 1e-3,
                "{}: records say {shared_by_records}, series says {shared_by_series}",
                cfg.label()
            );
        }
    }

    /// The replay auditor is the oracle on hostile inputs: jobs larger
    /// than the whole cluster (rejected at submission) and walltime
    /// *under*-estimates (killed at the limit) must still satisfy every
    /// conservation and placement invariant, for every strategy.
    #[test]
    fn audit_holds_with_rejections_and_kills(raw in prop::collection::vec(raw_job(), 1..15)) {
        let catalog = AppCatalog::trinity();
        let model = ContentionModel::calibrated();
        let matrix = CoRunTruth::build(&catalog, &model);
        let cluster = ClusterSpec::new(12, nodeshare::cluster::NodeSpec::tiny());
        // Stretch sizes past the machine (rejections) and shrink some
        // estimates below the true runtime (walltime kills).
        let workload = build(
            raw.into_iter()
                .enumerate()
                .map(|(i, mut r)| {
                    r.nodes += (i as u32 % 3) * 8; // up to 17 > 12 nodes
                    r.over = 0.3 + (i as f64 * 0.37) % 2.7; // under- and over-estimates
                    r
                })
                .collect(),
        );
        let mut config = SimConfig::new(cluster);
        config.audit = false; // audited explicitly, so failures surface as prop errors

        for cfg in StrategyConfig::lineup() {
            let mut sched = cfg.build(&catalog, &model);
            let (out, trace) = nodeshare::engine::run_traced(
                &workload, &matrix, sched.as_mut(), &config,
            );
            prop_assert!(out.complete(), "{}", cfg.label());
            let audit = nodeshare::engine::Auditor::new(&matrix, &config)
                .audit(&trace, &out);
            match audit {
                Ok(summary) => {
                    prop_assert_eq!(
                        out.records.len() + out.rejected.len(),
                        workload.len(),
                        "{}", cfg.label()
                    );
                    prop_assert_eq!(summary.killed,
                        out.records.iter().filter(|r| r.killed).count());
                }
                Err(violations) => {
                    return Err(TestCaseError::fail(format!(
                        "{}: {} violation(s), first: {}",
                        cfg.label(), violations.len(), violations[0]
                    )));
                }
            }
        }
    }

    /// The queue-depth series returns to zero and every record appears
    /// exactly once.
    #[test]
    fn queue_drains_and_records_are_unique(raw in prop::collection::vec(raw_job(), 1..15)) {
        let catalog = AppCatalog::trinity();
        let model = ContentionModel::calibrated();
        let matrix = CoRunTruth::build(&catalog, &model);
        let cluster = ClusterSpec::new(12, nodeshare::cluster::NodeSpec::tiny());
        let workload = build(raw);
        let cfg = StrategyConfig::sharing(StrategyKind::CoBackfill);
        let mut sched = cfg.build(&catalog, &model);
        let out = nodeshare::engine::run(
            &workload, &matrix, sched.as_mut(), &SimConfig::new(cluster),
        );
        prop_assert_eq!(out.queue_depth.value_at(out.end_time + 1.0), 0.0);
        let mut ids: Vec<_> = out.records.iter().map(|r| r.id).collect();
        let n = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), n);
        prop_assert_eq!(n, workload.len());
    }
}
