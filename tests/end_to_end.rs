//! Cross-crate integration: slurm.conf → sbatch → strategy → metrics,
//! plus the SWF round trip through a full simulation.

use nodeshare::prelude::*;
use nodeshare::workload::swf;

const CONF: &str = "\
NodeName=n[0-31] Sockets=2 CoresPerSocket=16 ThreadsPerCore=2 RealMemory=131072
PartitionName=batch Nodes=ALL Default=YES MaxTime=12:00:00 OverSubscribe=YES
";

fn batch_system() -> BatchSystem {
    BatchSystem::new(SlurmConf::parse(CONF).unwrap(), AppCatalog::trinity())
}

#[test]
fn sbatch_to_metrics_pipeline() {
    let mut bs = batch_system();
    let apps = ["AMG", "miniDFT", "miniFE", "SNAP", "MILC", "GTC"];
    for (i, app) in apps.iter().enumerate() {
        bs.submit_script(
            &format!(
                "#SBATCH --nodes=4\n#SBATCH --time=02:00:00\n#SBATCH --oversubscribe\nsrun ./{app}\n"
            ),
            i as f64 * 30.0,
            i as u32,
            3_000.0 + i as f64 * 100.0,
        )
        .unwrap();
    }
    let model = ContentionModel::calibrated();
    let pairing = Pairing::new(
        PairingPolicy::default_threshold(),
        Predictor::class_based(bs.catalog(), &model),
    );
    let out = bs.run(&mut Backfill::co(pairing), &model);
    assert!(out.complete());
    assert_eq!(out.records.len(), apps.len());
    let m = out.metrics(&bs.conf().cluster);
    assert_eq!(m.jobs, apps.len());
    assert!(m.utilization > 0.0 && m.utilization <= 1.0);
    // 6 × 4-node jobs fit a 32-node machine simultaneously: no waits.
    assert!(m.wait.max < 1.0);
}

#[test]
fn workload_survives_swf_round_trip_through_simulation() {
    let catalog = AppCatalog::trinity();
    let model = ContentionModel::calibrated();
    let matrix = CoRunTruth::build(&catalog, &model);
    let cluster = ClusterSpec::evaluation();
    let mut spec = WorkloadSpec::evaluation(&catalog, 11);
    spec.n_jobs = 120;
    let original = spec.generate(&catalog);

    // Round-trip through SWF text.
    let text = swf::write(&original, cluster.node.cores());
    let (reimported, skipped) = swf::to_workload(
        &swf::parse(&text).unwrap(),
        &catalog,
        &swf::SwfImportOptions {
            cores_per_node: cluster.node.cores(),
            ..Default::default()
        },
    );
    assert_eq!(skipped, 0);

    // Same structure simulated under the same exclusive policy gives the
    // same qualitative outcome; times differ only by SWF's 1-second
    // rounding, so compare with tolerance.
    let config = SimConfig::new(cluster);
    let a = nodeshare::engine::run(&original, &matrix, &mut Fcfs::new(), &config);
    let b = nodeshare::engine::run(&reimported, &matrix, &mut Fcfs::new(), &config);
    assert!(a.complete() && b.complete());
    assert_eq!(a.records.len(), b.records.len());
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.nodes, y.nodes);
        assert_eq!(x.app, y.app);
        // Rounding can shift schedules slightly; starts should agree to
        // within a small multiple of the rounding error accumulated
        // across preceding jobs.
        assert!(
            (x.start - y.start).abs() < 120.0,
            "{}: {} vs {}",
            x.id,
            x.start,
            y.start
        );
    }
}

#[test]
fn priority_wrapper_composes_with_sharing_strategy() {
    use nodeshare::slurm::{MultifactorPriority, PriorityWeights};
    let catalog = AppCatalog::trinity();
    let model = ContentionModel::calibrated();
    let matrix = CoRunTruth::build(&catalog, &model);
    let mut spec = WorkloadSpec::evaluation(&catalog, 3);
    spec.n_jobs = 80;
    let workload = spec.generate(&catalog);
    let config = SimConfig::new(ClusterSpec::evaluation());

    let pairing = Pairing::new(
        PairingPolicy::default_threshold(),
        Predictor::class_based(&catalog, &model),
    );
    let mut sched =
        MultifactorPriority::new(Backfill::co(pairing), PriorityWeights::default(), 128);
    let out = nodeshare::engine::run(&workload, &matrix, &mut sched, &config);
    assert!(out.complete());
    assert_eq!(out.records.len(), 80);
}

#[test]
fn share_gating_flows_from_partition_to_outcome() {
    // Same workload through a non-oversubscribable partition never shares.
    let conf = SlurmConf::parse(
        "NodeName=n[0-31] Sockets=2 CoresPerSocket=16 ThreadsPerCore=2 RealMemory=131072\n\
         PartitionName=noshare Nodes=ALL Default=YES MaxTime=12:00:00 OverSubscribe=NO\n",
    )
    .unwrap();
    let catalog = AppCatalog::trinity();
    let mut bs = BatchSystem::new(conf, catalog);
    let mut spec = WorkloadSpec::evaluation(bs.catalog(), 5);
    spec.n_jobs = 60;
    let workload = spec.generate(bs.catalog());
    bs.load_workload(&workload);
    assert!(bs.jobs().iter().all(|j| !j.spec.share_eligible));

    let model = ContentionModel::calibrated();
    let pairing = Pairing::new(
        PairingPolicy::default_threshold(),
        Predictor::class_based(bs.catalog(), &model),
    );
    let out = bs.run(&mut Backfill::co(pairing), &model);
    assert!(out.complete());
    assert!(out.records.iter().all(|r| !r.shared_alloc));
    assert_eq!(out.shared_core_seconds, 0.0);
}
