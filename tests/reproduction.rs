//! Reproduction guard-rails: fast versions of the paper's headline
//! comparisons, asserted as directional invariants so a regression that
//! breaks the science (not just the code) fails CI.

use nodeshare::metrics::relative_gain;
use nodeshare::prelude::*;
use nodeshare::workload::ArrivalProcess;

fn world() -> (AppCatalog, ContentionModel, CoRunTruth, ClusterSpec) {
    let catalog = AppCatalog::trinity();
    let model = ContentionModel::calibrated();
    let matrix = CoRunTruth::build(&catalog, &model);
    (catalog, model, matrix, ClusterSpec::evaluation())
}

fn saturated(catalog: &AppCatalog, seed: u64, n_jobs: usize) -> Workload {
    let mut spec = WorkloadSpec::evaluation(catalog, seed);
    spec.n_jobs = n_jobs;
    spec.arrival = ArrivalProcess::Poisson { rate: 0.0080 };
    spec.generate(catalog)
}

fn run_cfg(
    cfg: &StrategyConfig,
    workload: &Workload,
    catalog: &AppCatalog,
    model: &ContentionModel,
    matrix: &CoRunTruth,
    cluster: &ClusterSpec,
) -> CampaignMetrics {
    let mut sched = cfg.build(catalog, model);
    let out = nodeshare::engine::run(workload, matrix, sched.as_mut(), &SimConfig::new(*cluster));
    assert!(out.complete(), "{}: unscheduled jobs", cfg.label());
    out.metrics(cluster)
}

/// The headline: CoBackfill beats standard allocation on both efficiency
/// metrics by a double-digit margin on the saturated campaign (paper:
/// +19% / +25.2%; we assert a conservative floor).
#[test]
fn cobackfill_beats_standard_allocation() {
    let (catalog, model, matrix, cluster) = world();
    let workload = saturated(&catalog, 42, 800);
    let easy = run_cfg(
        &StrategyConfig::exclusive(StrategyKind::EasyBackfill),
        &workload,
        &catalog,
        &model,
        &matrix,
        &cluster,
    );
    let co = run_cfg(
        &StrategyConfig::sharing(StrategyKind::CoBackfill),
        &workload,
        &catalog,
        &model,
        &matrix,
        &cluster,
    );
    let comp_gain = relative_gain(co.computational_efficiency, easy.computational_efficiency);
    let sched_gain = relative_gain(co.scheduling_efficiency, easy.scheduling_efficiency);
    assert!(
        comp_gain > 0.10,
        "computational efficiency gain {comp_gain:.3}"
    );
    assert!(
        sched_gain > 0.08,
        "scheduling efficiency gain {sched_gain:.3}"
    );
    assert!(
        co.makespan < easy.makespan,
        "sharing should shorten the campaign"
    );
    assert!(co.wait.mean < easy.wait.mean, "sharing should cut waits");
}

/// "No overhead": under compatibility pairing the dilation distribution
/// stays tight and essentially nothing is killed, while naive pairing
/// shows the heavy tail.
#[test]
fn compatibility_pairing_has_no_overhead_but_any_pairing_does() {
    let (catalog, model, matrix, cluster) = world();
    let workload = saturated(&catalog, 7, 400);
    let threshold = run_cfg(
        &StrategyConfig::sharing(StrategyKind::CoBackfill),
        &workload,
        &catalog,
        &model,
        &matrix,
        &cluster,
    );
    let mut any_cfg = StrategyConfig::sharing(StrategyKind::CoBackfill);
    any_cfg.pairing = PairingPolicy::Any;
    any_cfg.predictor = PredictorKind::Oblivious;
    let any = run_cfg(&any_cfg, &workload, &catalog, &model, &matrix, &cluster);

    assert!(
        threshold.dilation.p95 < 1.5,
        "threshold dilation p95 {}",
        threshold.dilation.p95
    );
    assert!(
        any.dilation.p95 > threshold.dilation.p95 + 0.1,
        "any-pairing should have a heavier tail ({} vs {})",
        any.dilation.p95,
        threshold.dilation.p95
    );
    assert!(threshold.killed <= 2, "kills {}", threshold.killed);
    assert!(
        any.killed > threshold.killed,
        "naive pairing should cause kills"
    );
}

/// Sharing gains grow with offered load (the F3 shape) — checked at two
/// well-separated points.
#[test]
fn gains_grow_with_load() {
    let (catalog, model, matrix, cluster) = world();
    let co = StrategyConfig::sharing(StrategyKind::CoBackfill);
    let easy = StrategyConfig::exclusive(StrategyKind::EasyBackfill);

    let gain_at = |rate: f64| {
        let mut spec = WorkloadSpec::evaluation(&catalog, 19);
        spec.n_jobs = 300;
        spec.arrival = ArrivalProcess::Poisson { rate };
        let workload = spec.generate(&catalog);
        let e = run_cfg(&easy, &workload, &catalog, &model, &matrix, &cluster);
        let c = run_cfg(&co, &workload, &catalog, &model, &matrix, &cluster);
        relative_gain(c.scheduling_efficiency, e.scheduling_efficiency)
    };
    let low = gain_at(0.0025); // ~0.5× saturation
    let high = gain_at(0.0080); // ~1.7× saturation
    assert!(
        high > low + 0.05,
        "gain must grow with load (low {low:.3}, high {high:.3})"
    );
}

/// The strategy ordering of the T2 table: both sharing strategies beat
/// every exclusive baseline on computational efficiency.
#[test]
fn sharing_strategies_lead_the_lineup() {
    let (catalog, model, matrix, cluster) = world();
    let workload = saturated(&catalog, 23, 300);
    let mut results: Vec<(String, f64)> = Vec::new();
    for cfg in StrategyConfig::lineup() {
        let m = run_cfg(&cfg, &workload, &catalog, &model, &matrix, &cluster);
        results.push((cfg.label().to_string(), m.computational_efficiency));
    }
    let of = |label: &str| {
        results
            .iter()
            .find(|(l, _)| l == label)
            .map(|&(_, v)| v)
            .unwrap()
    };
    for shared in ["co-first-fit", "co-backfill"] {
        for excl in ["fcfs", "first-fit", "easy-backfill", "conservative"] {
            assert!(
                of(shared) > of(excl) + 0.05,
                "{shared} ({:.3}) must beat {excl} ({:.3})",
                of(shared),
                of(excl)
            );
        }
    }
}

/// Exclusive baselines deliver exactly E_comp = 1 (sanity anchor for the
/// gain arithmetic).
#[test]
fn exclusive_baselines_anchor_at_unit_efficiency() {
    let (catalog, model, matrix, cluster) = world();
    let workload = saturated(&catalog, 31, 200);
    for kind in [StrategyKind::Fcfs, StrategyKind::EasyBackfill] {
        let m = run_cfg(
            &StrategyConfig::exclusive(kind),
            &workload,
            &catalog,
            &model,
            &matrix,
            &cluster,
        );
        assert!(
            (m.computational_efficiency - 1.0).abs() < 1e-9,
            "{kind:?}: E_comp {}",
            m.computational_efficiency
        );
    }
}
