//! Vendored offline stand-in for `rayon`.
//!
//! This workspace only uses `slice.par_iter().map(f).collect::<Vec<_>>()`
//! (independent replications of a simulation). The shim implements that
//! shape for real: `par_iter()` returns a [`ParIter`] whose `map` produces
//! a [`ParMap`]; collecting a `ParMap` into a `Vec` fans the work out over
//! `std::thread::scope` with one chunk per available core, preserving
//! input order. Other iterator adaptors fall back to sequential execution
//! via the `Iterator` implementation.

use std::num::NonZeroUsize;

/// Parallel-ish view over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

/// A mapped parallel view; collecting it into a `Vec` runs in parallel.
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps each element; the closure must be `Sync + Send` so chunks can
    /// run on worker threads.
    pub fn map<O, F: Fn(&'data T) -> O>(self, f: F) -> ParMap<'data, T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Sequential fallback iterator over the elements.
    pub fn iter(&self) -> std::slice::Iter<'data, T> {
        self.items.iter()
    }
}

impl<'data, T, F, O> ParMap<'data, T, F>
where
    T: Sync,
    F: Fn(&'data T) -> O + Sync,
    O: Send,
{
    /// Runs the map over all elements — in parallel when more than one
    /// core is available — and collects results in input order.
    pub fn collect<C: FromParallel<O>>(self) -> C {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .min(self.items.len().max(1));
        let mut results: Vec<Option<O>> = Vec::with_capacity(self.items.len());
        results.resize_with(self.items.len(), || None);
        if threads <= 1 {
            for (slot, item) in results.iter_mut().zip(self.items) {
                *slot = Some((self.f)(item));
            }
        } else {
            let chunk = self.items.len().div_ceil(threads);
            let f = &self.f;
            std::thread::scope(|scope| {
                for (out_chunk, in_chunk) in results.chunks_mut(chunk).zip(self.items.chunks(chunk))
                {
                    scope.spawn(move || {
                        for (slot, item) in out_chunk.iter_mut().zip(in_chunk) {
                            *slot = Some(f(item));
                        }
                    });
                }
            });
        }
        C::from_ordered(results.into_iter().map(|r| r.expect("worker filled slot")))
    }
}

/// Collection targets for [`ParMap::collect`].
pub trait FromParallel<O> {
    /// Builds the collection from results in input order.
    fn from_ordered<I: Iterator<Item = O>>(iter: I) -> Self;
}

impl<O> FromParallel<O> for Vec<O> {
    fn from_ordered<I: Iterator<Item = O>>(iter: I) -> Self {
        iter.collect()
    }
}

/// The rayon prelude: brings `par_iter()` into scope.
pub mod prelude {
    pub use super::{IntoParallelRefIterator, ParIter, ParMap};
}

/// Slice/Vec extension providing `par_iter()`.
pub trait IntoParallelRefIterator<'data> {
    /// Element type.
    type Item: 'data;
    /// Iterator-ish type returned.
    type Iter;
    /// A parallel view over `&self`.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_tiny_and_empty_inputs() {
        let xs: Vec<u32> = vec![];
        let ys: Vec<u32> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
        let one = [7u32];
        let ys: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(ys, vec![8]);
    }
}
