//! Vendored offline stand-in for `rayon`.
//!
//! The workspace uses two shapes:
//!
//! * `slice.par_iter().map(f).collect::<Vec<_>>()` — independent
//!   replications of a simulation, results in input order;
//! * [`dispatch`] — the campaign orchestrator's work queue: run `f(i)`
//!   for `i in 0..n` over a bounded worker pool with **dynamic** load
//!   balancing (an atomic claim index, so heterogeneous cells don't
//!   stall a statically chunked worker), delivering each result to a
//!   caller-side sink *in completion order* as soon as it is ready.
//!
//! Both honor [`set_num_threads`] (0 = one worker per available core),
//! which the bench harness wires to `--jobs N` / `NODESHARE_JOBS`.
//! Other iterator adaptors fall back to sequential execution via the
//! `Iterator` implementation.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Global worker-count override: 0 means "one per available core".
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count used by [`dispatch`] and
/// `par_iter().map().collect()`. `0` restores the default (one worker
/// per available core). Unlike upstream rayon's pool builder this may be
/// called repeatedly; the next parallel call picks the new value up.
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n, Ordering::SeqCst);
}

/// The worker count the next parallel call will use.
pub fn current_num_threads() -> usize {
    match NUM_THREADS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Runs `f(i)` for every `i in 0..n` across `threads` workers and feeds
/// each `(i, f(i))` pair to `sink` **on the calling thread, in
/// completion order**. Work is claimed dynamically (one atomic
/// fetch-add per item), so slow items don't strand idle workers the way
/// static chunking would.
///
/// With `threads <= 1` (or `n <= 1`) everything runs inline on the
/// caller in index order — no threads, no channel; this degenerate case
/// is the serial reference the parallel path is tested against.
///
/// A panic inside `f` on a worker propagates to the caller when the
/// scope joins (after remaining workers drain); callers needing per-item
/// fault isolation should catch unwinds inside `f` and return a
/// `Result`.
pub fn dispatch<R, F, S>(threads: usize, n: usize, f: F, mut sink: S)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    S: FnMut(usize, R),
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        for i in 0..n {
            sink(i, f(i));
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // The receiver only disappears if the caller's sink
                // panicked; stop producing and let the scope unwind.
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            sink(i, r);
        }
    });
}

/// Parallel-ish view over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

/// A mapped parallel view; collecting it into a `Vec` runs in parallel.
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps each element; the closure must be `Sync + Send` so chunks can
    /// run on worker threads.
    pub fn map<O, F: Fn(&'data T) -> O>(self, f: F) -> ParMap<'data, T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Sequential fallback iterator over the elements.
    pub fn iter(&self) -> std::slice::Iter<'data, T> {
        self.items.iter()
    }
}

impl<'data, T, F, O> ParMap<'data, T, F>
where
    T: Sync,
    F: Fn(&'data T) -> O + Sync,
    O: Send,
{
    /// Runs the map over all elements — dynamically scheduled over
    /// [`current_num_threads`] workers — and collects results in input
    /// order.
    pub fn collect<C: FromParallel<O>>(self) -> C {
        let mut results: Vec<Option<O>> = Vec::with_capacity(self.items.len());
        results.resize_with(self.items.len(), || None);
        let f = &self.f;
        let items = self.items;
        dispatch(
            current_num_threads(),
            items.len(),
            |i| f(&items[i]),
            |i, r| results[i] = Some(r),
        );
        C::from_ordered(results.into_iter().map(|r| r.expect("worker filled slot")))
    }
}

/// Collection targets for [`ParMap::collect`].
pub trait FromParallel<O> {
    /// Builds the collection from results in input order.
    fn from_ordered<I: Iterator<Item = O>>(iter: I) -> Self;
}

impl<O> FromParallel<O> for Vec<O> {
    fn from_ordered<I: Iterator<Item = O>>(iter: I) -> Self {
        iter.collect()
    }
}

/// The rayon prelude: brings `par_iter()` into scope.
pub mod prelude {
    pub use super::{IntoParallelRefIterator, ParIter, ParMap};
}

/// Slice/Vec extension providing `par_iter()`.
pub trait IntoParallelRefIterator<'data> {
    /// Element type.
    type Item: 'data;
    /// Iterator-ish type returned.
    type Iter;
    /// A parallel view over `&self`.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{current_num_threads, dispatch, set_num_threads};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_tiny_and_empty_inputs() {
        let xs: Vec<u32> = vec![];
        let ys: Vec<u32> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
        let one = [7u32];
        let ys: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(ys, vec![8]);
    }

    #[test]
    fn dispatch_runs_every_item_exactly_once() {
        for threads in [1, 2, 8, 64] {
            let mut seen = vec![0u32; 100];
            dispatch(
                threads,
                100,
                |i| i * 3,
                |i, r| {
                    assert_eq!(r, i * 3);
                    seen[i] += 1;
                },
            );
            assert!(seen.iter().all(|&c| c == 1), "threads={threads}");
        }
    }

    #[test]
    fn dispatch_handles_empty_input() {
        let mut calls = 0;
        dispatch(8, 0, |i| i, |_, _| calls += 1);
        assert_eq!(calls, 0);
    }

    #[test]
    fn dispatch_balances_dynamically() {
        // With 2 workers and one huge item, the other worker must chew
        // through everything else (static half/half chunking would make
        // wall time ~ huge + half the rest).
        let done = AtomicUsize::new(0);
        dispatch(
            2,
            64,
            |i| {
                if i == 0 {
                    while done.load(Ordering::SeqCst) < 63 {
                        std::thread::yield_now();
                    }
                } else {
                    done.fetch_add(1, Ordering::SeqCst);
                }
                i
            },
            |_, _| {},
        );
        assert_eq!(done.load(Ordering::SeqCst), 63);
    }

    #[test]
    fn num_threads_override_roundtrips() {
        set_num_threads(3);
        assert_eq!(current_num_threads(), 3);
        set_num_threads(0);
        assert!(current_num_threads() >= 1);
        // collect still works under an override wider than the machine.
        set_num_threads(7);
        let xs: Vec<u64> = (0..50).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x + 1).collect();
        assert_eq!(ys.len(), 50);
        set_num_threads(0);
    }
}
