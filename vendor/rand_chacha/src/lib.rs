//! Vendored offline stand-in for `rand_chacha`.
//!
//! A genuine ChaCha keystream generator (RFC 8439 block function, with the
//! round count as a const parameter), exposing `ChaCha8Rng` /
//! `ChaCha12Rng` / `ChaCha20Rng` over the local `rand` shim's traits. The
//! word stream is not bit-identical to upstream `rand_chacha` (upstream
//! buffers four blocks and uses a different stream layout), but it has the
//! same statistical quality and the same determinism guarantees: a seed
//! fully determines the stream, and distinct seeds give independent
//! streams.

use rand::{RngCore, SeedableRng};

/// ChaCha quarter round.
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha generator with `R` double rounds... more precisely `R` total
/// rounds as named (ChaCha8 = 8 rounds = 4 double rounds).
#[derive(Clone, Debug)]
pub struct ChaChaRng<const ROUNDS: usize> {
    /// Key words (seed).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    fn refill(&mut self) {
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&Self::SIGMA);
        s[4..12].copy_from_slice(&self.key);
        s[12] = self.counter as u32;
        s[13] = (self.counter >> 32) as u32;
        s[14] = 0;
        s[15] = 0;
        let input = s;
        debug_assert!(ROUNDS.is_multiple_of(2), "ChaCha needs an even round count");
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for (out, inp) in s.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = s;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaChaRng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

/// ChaCha with 8 rounds — the workspace's workhorse generator.
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<20>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn chacha20_rfc8439_test_vector() {
        // RFC 8439 §2.3.2: key 00..1f, counter 1, nonce 000000090000004a00000000,
        // but our layout fixes the nonce words to zero, so instead check the
        // all-zero-key/zero-counter block against the widely published
        // ChaCha20 zero vector's first words.
        let mut r = ChaCha20Rng::from_seed([0u8; 32]);
        let first = r.next_u32();
        // First keystream word of ChaCha20 with zero key/counter/nonce:
        // 0xade0b876 (keystream byte order 76 b8 e0 ad).
        assert_eq!(first, 0xade0_b876);
    }

    #[test]
    fn float_draws_are_uniformish() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let n = 50_000;
        let mean = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
