//! Vendored offline stand-in for `serde`.
//!
//! The workspace uses serde only as derive markers on data types; nothing
//! serializes through the serde data model (JSON output in this repo is
//! hand-written, e.g. `nodeshare_engine::trace::DecisionTrace::to_json`).
//! The traits are therefore empty markers with blanket impls, and the
//! derives (re-exported from the sibling `serde_derive` shim) expand to
//! nothing. Swap in the real crates if the serde data model is needed.

/// Marker for types annotated `#[derive(Serialize)]`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for types annotated `#[derive(Deserialize)]`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Probe {
        a: u32,
        b: Vec<String>,
    }

    #[derive(Serialize, Deserialize)]
    enum ProbeEnum {
        #[allow(dead_code)]
        Unit,
        #[allow(dead_code)]
        Tuple(u8, f64),
        #[allow(dead_code)]
        Struct { x: i64 },
    }

    fn assert_serialize<T: super::Serialize>() {}
    fn assert_deserialize<T: for<'de> super::Deserialize<'de>>() {}

    #[test]
    fn derives_compile_and_traits_are_satisfied() {
        assert_serialize::<Probe>();
        assert_deserialize::<Probe>();
        assert_serialize::<ProbeEnum>();
        let p = Probe {
            a: 1,
            b: vec!["x".into()],
        };
        assert_eq!(p, p);
    }
}
