//! Vendored offline stand-in for `rand` 0.9.
//!
//! Implements exactly the API surface this workspace uses — `RngCore`,
//! `SeedableRng` (with the SplitMix64-based `seed_from_u64` expansion),
//! and the `Rng` extension trait with `random`, `random_range`,
//! `random_bool`, and `fill` — with the same uniform-sampling
//! constructions as upstream (53-bit mantissa floats, unbiased integer
//! ranges via Lemire rejection). The concrete generator lives in the
//! sibling `rand_chacha` shim.

use std::ops::{Range, RangeInclusive};

/// A low-level uniform random generator.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it into a full seed
    /// with SplitMix64 (the same construction upstream rand uses, so
    /// distinct small seeds give well-separated streams).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = splitmix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = sm();
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(mut state: u64) -> impl FnMut() -> u64 {
    move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types sampleable uniformly over their "natural" domain (`[0, 1)` for
/// floats, the full value range for integers and `bool`).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64, u128 => next_u64, i128 => next_u64,
);

/// A range usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty as $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_sint!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t as Standard>::draw(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + <$t as Standard>::draw(rng) * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Unbiased uniform draw in `[0, span)` via Lemire's multiply-shift with
/// rejection. `span` must be non-zero.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span {
            return (m >> 64) as u64;
        }
        // Rejection zone: only `span - (2^64 mod span)` low products bias.
        let threshold = span.wrapping_neg() % span;
        if lo >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value over the type's natural domain (`[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value in `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as Standard>::draw(self) < p
    }

    /// Fills `dest` with uniform bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Common generator types (API-compatibility namespace).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast non-cryptographic generator (SplitMix64 core).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng {
                state: u64::from_le_bytes(seed),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn floats_are_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_inclusive_bounds_and_stay_inside() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let x = r.random_range(3u32..=5);
            assert!((3..=5).contains(&x));
            seen_lo |= x == 3;
            seen_hi |= x == 5;
        }
        assert!(seen_lo && seen_hi, "inclusive bounds must be reachable");
        for _ in 0..1_000 {
            let x = r.random_range(10u64..11);
            assert_eq!(x, 10);
        }
        for _ in 0..1_000 {
            let x = r.random_range(-5i32..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn float_ranges_cover_span() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        for _ in 0..10_000 {
            let x = r.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&x));
            min = min.min(x);
            max = max.max(x);
        }
        assert!(
            min < -1.5 && max > 1.5,
            "draws should spread over the range"
        );
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut r = SmallRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn seed_from_u64_separates_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
