//! Vendored offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` with `sample_size`/`throughput`/`bench_with_input`,
//! and `Bencher::iter` — backed by a simple measure loop: warm up, pick an
//! iteration count targeting ~50 ms per sample, take the configured number
//! of samples, and report median ± spread on stdout. No statistical
//! regression machinery, no HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

/// Per-iteration timing harness handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, amortized over an automatically chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: find an iteration count that runs ≥ ~20 ms.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(20) || iters >= 1 << 24 {
                break;
            }
            iters = (iters * 2).max(1);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.samples.push(t0.elapsed() / iters as u32);
        }
    }

    /// Times `routine` over inputs produced by `setup`, excluding the
    /// setup from the measured time (criterion's `iter_batched`). The
    /// batch-size hint is accepted for API parity and ignored — inputs
    /// are built one at a time.
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        // Calibration: find an iteration count whose routine-only time
        // accumulates to ≥ ~20 ms.
        let mut iters: u64 = 1;
        loop {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t0 = Instant::now();
                std::hint::black_box(routine(input));
                elapsed += t0.elapsed();
            }
            if elapsed >= Duration::from_millis(20) || iters >= 1 << 24 {
                break;
            }
            iters = (iters * 2).max(1);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t0 = Instant::now();
                std::hint::black_box(routine(input));
                elapsed += t0.elapsed();
            }
            self.samples.push(elapsed / iters as u32);
        }
    }

    fn report(&self, label: &str, throughput: Option<&Throughput>) {
        if self.samples.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        let mut s = self.samples.clone();
        s.sort();
        let median = s[s.len() / 2];
        let lo = s[0];
        let hi = s[s.len() - 1];
        let per_elem = match throughput {
            Some(Throughput::Elements(n)) if *n > 0 => {
                format!("  ({:.1} Melem/s)", *n as f64 / median.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if *n > 0 => {
                format!(
                    "  ({:.1} MiB/s)",
                    *n as f64 / median.as_secs_f64() / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!("{label:<50} median {median:>12.3?}  [{lo:.3?} .. {hi:.3?}]{per_elem}");
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`]; accepted for API
/// parity with criterion, not acted on.
pub enum BatchSize {
    /// Small inputs: criterion would batch many per allocation.
    SmallInput,
    /// Large inputs: criterion would batch few per allocation.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Work-rate annotation for a benchmark group.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named benchmark id, possibly parameterized.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Id carrying only the parameter (group name supplies the rest).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates the amount of work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&format!("{}/{id}", self.name), self.throughput.as_ref());
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(
            &format!("{}/{}", self.name, id.label),
            self.throughput.as_ref(),
        );
    }

    /// Finishes the group (separator line).
    pub fn finish(&mut self) {
        println!();
    }
}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.default_sample_size,
        };
        f(&mut b);
        b.report(id, None);
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            throughput: None,
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3).throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::from_parameter(5), &5u32, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }
}
