//! Exercises the `proptest!` macro surface exactly the way the workspace's
//! property tests use it.

use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Pair {
    a: u32,
    b: bool,
}

fn pair() -> impl Strategy<Value = Pair> {
    (1u32..=8, prop::bool::weighted(0.7)).prop_map(|(a, b)| Pair { a, b })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ranges_and_tuples(x in 0u8..8, y in 30.0f64..2_000.0, p in pair()) {
        prop_assert!(x < 8);
        prop_assert!((30.0..2_000.0).contains(&y));
        prop_assert!((1..=8).contains(&p.a) || p.b);
    }

    #[test]
    fn collections_options_and_oneof(
        xs in prop::collection::vec(0u32..6, 1..40),
        maybe in prop::option::of(50.0f64..500.0),
        choice in prop_oneof![0i32..10, 100i32..110, 200i32..210],
    ) {
        prop_assert!(!xs.is_empty() && xs.len() < 40);
        prop_assert!(xs.iter().all(|&x| x < 6));
        if let Some(v) = maybe {
            prop_assert!((50.0..500.0).contains(&v));
        }
        prop_assert!(
            (0..10).contains(&choice)
                || (100..110).contains(&choice)
                || (200..210).contains(&choice),
            "choice {choice} outside every arm"
        );
        prop_assert_eq!(xs.len(), xs.len());
        prop_assert_ne!(xs.len(), xs.len() + 1);
    }
}

#[test]
fn failing_case_reports_input() {
    // The proptest! machinery is a macro, so drive the failure path
    // manually through a child test binary pattern: simplest is to assert
    // the macro's error formatting via catch_unwind around a tiny inline
    // expansion.
    let result = std::panic::catch_unwind(|| {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0u32..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    });
    let err = result.expect_err("the inner property must fail");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("x was"),
        "message {msg:?} should carry the format"
    );
    assert!(
        msg.contains("input:"),
        "message {msg:?} should show the input"
    );
}
