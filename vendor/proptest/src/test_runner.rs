//! Test configuration and the deterministic RNG behind `proptest!`.

/// Per-`proptest!`-block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Case count after applying the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// Adapter matching upstream's `TestCaseError` constructor surface. In
/// this shim, property-test bodies fail with plain `String` messages, so
/// `fail` simply converts the reason into the message type.
#[derive(Clone, Debug)]
pub struct TestCaseError;

impl TestCaseError {
    /// Wraps a rejection reason as a test-case failure message.
    pub fn fail(reason: impl std::fmt::Display) -> String {
        reason.to_string()
    }
}

/// Deterministic per-test RNG (SplitMix64 core). Seeded from the hash of
/// the test's module path + name so every test has its own reproducible
/// stream; `PROPTEST_SEED=<n>` perturbs all streams at once.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(n) = extra.parse::<u64>() {
                h ^= n.rotate_left(17);
            }
        }
        TestRng { state: h }
    }

    /// Explicit seed (for tooling/tests of the shim itself).
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits (SplitMix64).
    #[allow(clippy::should_implement_trait)] // named for upstream parity, not Iterator
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire multiply-shift with rejection (unbiased).
        loop {
            let x = self.next();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next(), b.next());
        let mut c = TestRng::for_test("x::z");
        // Overwhelmingly likely to differ.
        assert_ne!(a.next(), c.next());
    }

    #[test]
    fn below_stays_below() {
        let mut r = TestRng::from_seed(9);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }
}
