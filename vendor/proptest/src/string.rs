//! Regex-subset string strategy: `impl Strategy for &str`, like upstream
//! proptest's regex string strategies.
//!
//! Supported syntax (enough for fuzz-style "arbitrary text" patterns and
//! simple structured tokens): literals, `.`, escapes (`\d` `\w` `\s` `\n`
//! `\t` and escaped punctuation), character classes `[a-z0-9_]` with
//! ranges (no negation), groups `( | )` with alternation, and the
//! quantifiers `*` `+` `?` `{m}` `{m,n}` (unbounded `*`/`+` cap at 8
//! repetitions). Inline flags `(?s)`/`(?m)`/`(?i)` at the start are
//! accepted and ignored (`.` always includes `\n` here). Unsupported
//! syntax panics with a message naming the pattern, so a test using a
//! fancier regex fails loudly rather than generating wrong data.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Maximum repetitions for unbounded quantifiers.
const UNBOUNDED_CAP: u32 = 8;

#[derive(Clone, Debug)]
enum Node {
    /// Sequence of alternatives: pick one branch.
    Alt(Vec<Vec<Node>>),
    /// One literal char.
    Lit(char),
    /// Any char (printable ASCII + common whitespace + a few multibyte).
    Dot,
    /// One char from the set.
    Class(Vec<(char, char)>),
    /// Repetition of an inner node.
    Repeat(Box<Node>, u32, u32),
}

struct Parser<'a> {
    pattern: &'a str,
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser {
            pattern,
            chars: pattern.chars().peekable(),
        }
    }

    fn fail(&self, what: &str) -> ! {
        panic!(
            "proptest shim: unsupported regex {what} in string strategy {:?}; \
             extend vendor/proptest/src/string.rs if the test needs it",
            self.pattern
        );
    }

    /// alternation := concat ('|' concat)*
    fn parse_alt(&mut self, in_group: bool) -> Node {
        let mut branches = vec![Vec::new()];
        loop {
            match self.chars.peek().copied() {
                None => break,
                Some(')') if in_group => break,
                Some(')') => self.fail("unbalanced ')'"),
                Some('|') => {
                    self.chars.next();
                    branches.push(Vec::new());
                }
                Some(_) => {
                    let atom = self.parse_atom();
                    let atom = self.parse_quantifier(atom);
                    branches.last_mut().unwrap().push(atom);
                }
            }
        }
        Node::Alt(branches)
    }

    fn parse_atom(&mut self) -> Node {
        match self.chars.next() {
            Some('(') => {
                // Inline flag group `(?s)` etc.: accept and ignore.
                if self.chars.peek() == Some(&'?') {
                    self.chars.next();
                    let mut flags = String::new();
                    for c in self.chars.by_ref() {
                        if c == ')' {
                            break;
                        }
                        flags.push(c);
                    }
                    if !flags.chars().all(|c| "smix".contains(c)) {
                        self.fail("group syntax `(?…)`");
                    }
                    // A flag group matches nothing.
                    return Node::Alt(vec![vec![]]);
                }
                let inner = self.parse_alt(true);
                match self.chars.next() {
                    Some(')') => inner,
                    _ => self.fail("unclosed group"),
                }
            }
            Some('[') => self.parse_class(),
            Some('.') => Node::Dot,
            Some('\\') => match self.chars.next() {
                Some('d') => Node::Class(vec![('0', '9')]),
                Some('w') => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                Some('s') => Node::Class(vec![(' ', ' '), ('\t', '\t'), ('\n', '\n')]),
                Some('n') => Node::Lit('\n'),
                Some('t') => Node::Lit('\t'),
                Some('r') => Node::Lit('\r'),
                Some(c) if c.is_ascii_punctuation() => Node::Lit(c),
                _ => self.fail("escape"),
            },
            Some(c @ ('*' | '+' | '?' | '{')) => {
                self.fail(&format!("dangling quantifier `{c}`"));
            }
            Some(c) => Node::Lit(c),
            None => self.fail("truncated pattern"),
        }
    }

    fn parse_class(&mut self) -> Node {
        let mut ranges = Vec::new();
        if self.chars.peek() == Some(&'^') {
            self.fail("negated character class");
        }
        loop {
            let c = match self.chars.next() {
                Some(']') => break,
                Some('\\') => match self.chars.next() {
                    Some('d') => {
                        ranges.push(('0', '9'));
                        continue;
                    }
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some(c) => c,
                    None => self.fail("truncated class"),
                },
                Some(c) => c,
                None => self.fail("unclosed character class"),
            };
            if self.chars.peek() == Some(&'-') {
                self.chars.next();
                match self.chars.peek() {
                    Some(']') | None => {
                        // Trailing '-' is a literal.
                        ranges.push((c, c));
                        ranges.push(('-', '-'));
                    }
                    Some(_) => {
                        let hi = self.chars.next().unwrap();
                        assert!(c <= hi, "inverted class range");
                        ranges.push((c, hi));
                    }
                }
            } else {
                ranges.push((c, c));
            }
        }
        if ranges.is_empty() {
            self.fail("empty character class");
        }
        Node::Class(ranges)
    }

    fn parse_quantifier(&mut self, atom: Node) -> Node {
        match self.chars.peek().copied() {
            Some('*') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, UNBOUNDED_CAP)
            }
            Some('+') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 1, UNBOUNDED_CAP)
            }
            Some('?') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, 1)
            }
            Some('{') => {
                self.chars.next();
                let mut spec = String::new();
                loop {
                    match self.chars.next() {
                        Some('}') => break,
                        Some(c) => spec.push(c),
                        None => self.fail("unclosed `{`"),
                    }
                }
                let (min, max) = match spec.split_once(',') {
                    None => {
                        let n: u32 = spec.trim().parse().unwrap_or_else(|_| self.fail("count"));
                        (n, n)
                    }
                    Some((a, b)) => {
                        let min: u32 = a.trim().parse().unwrap_or_else(|_| self.fail("count"));
                        let max: u32 = if b.trim().is_empty() {
                            min + UNBOUNDED_CAP
                        } else {
                            b.trim().parse().unwrap_or_else(|_| self.fail("count"))
                        };
                        (min, max)
                    }
                };
                assert!(min <= max, "inverted repetition bounds");
                Node::Repeat(Box::new(atom), min, max)
            }
            _ => atom,
        }
    }
}

fn generate(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Alt(branches) => {
            let branch = &branches[rng.below(branches.len() as u64) as usize];
            for n in branch {
                generate(n, rng, out);
            }
        }
        Node::Lit(c) => out.push(*c),
        Node::Dot => {
            // Mostly printable ASCII, with some whitespace and multibyte
            // characters so parsers meet non-trivial input.
            let c = match rng.below(20) {
                0 => '\n',
                1 => '\t',
                2 => 'é',
                3 => '→',
                _ => char::from(rng.below(95) as u8 + 0x20),
            };
            out.push(c);
        }
        Node::Class(ranges) => {
            let idx = rng.below(ranges.len() as u64) as usize;
            let (lo, hi) = ranges[idx];
            let span = (hi as u32 - lo as u32) as u64 + 1;
            let c = char::from_u32(lo as u32 + rng.below(span) as u32)
                .expect("class range stays in valid chars");
            out.push(c);
        }
        Node::Repeat(inner, min, max) => {
            let n = min + rng.below((max - min + 1) as u64) as u32;
            for _ in 0..n {
                generate(inner, rng, out);
            }
        }
    }
}

/// Compiled regex-subset string strategy.
#[derive(Clone, Debug)]
pub struct StringStrategy {
    root: std::rc::Rc<Node>,
}

impl Strategy for StringStrategy {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        generate(&self.root, rng, &mut out);
        out
    }
}

/// `&str` patterns are regex string strategies, as in upstream proptest.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        // Compile per call; patterns in tests are tiny.
        let mut parser = Parser::new(self);
        let root = parser.parse_alt(false);
        let mut out = String::new();
        generate(&root, rng, &mut out);
        out
    }
}

/// Compiles `pattern` once (avoids reparsing in hot strategies).
pub fn string_regex(pattern: &str) -> StringStrategy {
    let mut parser = Parser::new(pattern);
    StringStrategy {
        root: std::rc::Rc::new(parser.parse_alt(false)),
    }
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn dot_star_pattern_generates_bounded_text() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let s = "(?s).{0,400}".sample(&mut rng);
            assert!(s.chars().count() <= 400);
        }
    }

    #[test]
    fn classes_ranges_and_alternation() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let s = "[a-c]{2}(x|y)\\d+".sample(&mut rng);
            let cs: Vec<char> = s.chars().collect();
            assert!(cs.len() >= 4);
            assert!(cs[0].is_ascii_lowercase() && cs[1].is_ascii_lowercase());
            assert!(cs[2] == 'x' || cs[2] == 'y');
            assert!(cs[3..].iter().all(char::is_ascii_digit));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex")]
    fn unsupported_syntax_fails_loudly() {
        let mut rng = TestRng::from_seed(3);
        let _ = "[^abc]".sample(&mut rng);
    }
}
