//! Vendored offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`boxed`, range and
//! tuple strategies, `prop::collection::vec`, `prop::bool::weighted`,
//! `prop::option::of`, the `proptest!`/`prop_assert!`/`prop_assert_eq!`/
//! `prop_oneof!` macros, and [`ProptestConfig::with_cases`].
//!
//! Differences from upstream, by design:
//! * **No shrinking.** A failing case reports the exact generated input
//!   (all bound values, `Debug`-formatted) and the case number, which is
//!   reproducible because…
//! * **Deterministic seeding.** Each test's RNG is seeded from the hash of
//!   its module path + name, so failures reproduce exactly on re-run. Set
//!   `PROPTEST_SEED=<n>` to perturb all streams, and `PROPTEST_CASES=<n>`
//!   to override the per-test case count globally.

pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Strategy constructors namespaced like upstream's `prop::` module.
pub mod sub_modules {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{SizeRange, Strategy, VecStrategy};

        /// A `Vec` of values from `element`, with length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::WeightedBool;

        /// `true` with probability `p`.
        pub fn weighted(p: f64) -> WeightedBool {
            assert!((0.0..=1.0).contains(&p), "weight must be a probability");
            WeightedBool { p }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::strategy::{OptionStrategy, Strategy};

        /// `Some` of the inner strategy half the time, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner, p_some: 0.5 }
        }
    }
}

/// Everything a property test needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::bool::weighted`, …).
    pub mod prop {
        pub use crate::sub_modules::bool;
        pub use crate::sub_modules::collection;
        pub use crate::sub_modules::option;
    }
}

/// Declares property tests: a block of `#[test]` functions whose
/// arguments are drawn from strategies (`arg in strategy` syntax), with an
/// optional `#![proptest_config(...)]` header.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!([$config] $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!([$crate::test_runner::ProptestConfig::default()] $($rest)*);
    };
}

/// Internal: expands each test item in a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ([$config:expr]) => {};
    ([$config:expr]
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let cases = config.effective_cases();
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..cases {
                let values = ($( $crate::strategy::Strategy::sample(&$strat, &mut rng), )+);
                let shown = format!("{values:#?}");
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::std::result::Result<(), ::std::string::String> {
                        let ($($pat,)+) = values;
                        $body
                        ::std::result::Result::Ok(())
                    },
                ));
                match outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(msg)) => panic!(
                        "proptest case {case}/{cases} failed: {msg}\n\
                         input: {shown}\n\
                         (deterministic; re-run reproduces this case)",
                    ),
                    ::std::result::Result::Err(panic_payload) => {
                        eprintln!(
                            "proptest case {case}/{cases} panicked\n\
                             input: {shown}\n\
                             (deterministic; re-run reproduces this case)",
                        );
                        ::std::panic::resume_unwind(panic_payload);
                    }
                }
            }
        }
        $crate::__proptest_items!([$config] $($rest)*);
    };
}

/// Asserts inside a `proptest!` body; on failure the failing *input* is
/// reported alongside the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)*), l, r
                );
            }
        }
    };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
