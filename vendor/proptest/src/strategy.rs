//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking; a strategy
/// simply draws a fresh value per case from the deterministic test RNG.
pub trait Strategy {
    /// The generated type (must be `Debug` so failing inputs can be shown).
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so differently-shaped strategies with the
    /// same value type can be mixed (e.g. in [`Union`] / `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, the inner vtable of [`BoxedStrategy`].
trait DynStrategy<V> {
    fn sample_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample_dyn(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    /// A union over the given arms; each is picked with equal probability.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Length bound for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// `prop::collection::vec` strategy.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    /// Element strategy.
    pub element: S,
    /// Length bounds.
    pub size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span + 1) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `prop::bool::weighted` strategy.
#[derive(Clone, Copy, Debug)]
pub struct WeightedBool {
    /// Probability of `true`.
    pub p: f64,
}

impl Strategy for WeightedBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.unit_f64() < self.p
    }
}

/// `prop::option::of` strategy.
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    /// Inner strategy for the `Some` case.
    pub inner: S,
    /// Probability of `Some`.
    pub p_some: f64,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        (rng.unit_f64() < self.p_some).then(|| self.inner.sample(rng))
    }
}
