//! Vendored offline stand-in for `serde_derive`.
//!
//! This workspace builds in environments with no network access and no
//! crates.io mirror, so the real serde cannot be fetched. The workspace
//! only uses serde as derive markers (`#[derive(Serialize, Deserialize)]`)
//! — nothing calls `serialize`/`deserialize` — so the derives expand to
//! nothing and the traits are blanket-implemented in the `serde` shim.
//!
//! If real serialization is ever needed, replace `vendor/serde*` with the
//! upstream crates (the call sites are already annotated correctly).

use proc_macro::TokenStream;

/// No-op `Serialize` derive. Accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive. Accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
