//! A0 golden fixture: the annotation escape hatch is itself audited.

fn bad_missing_reason(v: Option<u32>) -> u32 {
    // detlint: allow(D5) //~ A0
    v.map_or(0, |x| x)
}

fn bad_unknown_rule(v: Option<u32>) -> u32 {
    // detlint: allow(D9, no such rule exists) //~ A0
    v.map_or(0, |x| x)
}

fn good_annotation_is_not_flagged(v: Option<u32>) -> u32 {
    // detlint: allow(D5, invariant stated by the caller; None is a bug)
    v.unwrap()
}
