//! D5 golden fixture: panicking escape hatches in library code.

fn positive(v: Option<u32>) -> u32 {
    let a = v.unwrap(); //~ D5
    let b = v.expect("present"); //~ D5
    a + b
}

fn negative_propagated_user_method(p: &mut Parser) -> Result<(), ParseError> {
    p.expect(b'{')?;
    Ok(())
}

fn negative_annotated(v: Option<u32>) -> u32 {
    // detlint: allow(D5, invariant stated by the caller; None is a bug)
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn negative_test_code_is_exempt() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
