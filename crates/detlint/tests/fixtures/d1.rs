//! D1 golden fixture: unordered collections in artifact-producing code.
//! Expected-finding markers are documented in golden.rs.

use std::collections::{BTreeSet, HashMap, HashSet}; // use lines never fire

fn positive() {
    let m: HashMap<u32, u32> = HashMap::new(); //~ D1 D1
    let s = HashSet::<u32>::new(); //~ D1
    drop((m, s));
}

fn negative_sorted_next_statement(xs: &[u32]) -> Vec<u32> {
    let mut keys: Vec<u32> = xs.iter().copied().collect::<HashSet<u32>>().into_iter().collect();
    keys.sort();
    keys
}

fn negative_collected_into_btree(xs: &[u32]) -> BTreeSet<u32> {
    let ordered: BTreeSet<u32> = HashSet::<u32>::from_iter(xs.iter().copied()).into_iter().collect();
    ordered
}

fn negative_annotated() {
    // detlint: allow(D1, membership probes only; never iterated)
    let s = HashSet::<u32>::new();
    drop(s);
}

#[cfg(test)]
mod tests {
    #[test]
    fn negative_test_code_is_exempt() {
        let m = std::collections::HashMap::<u32, u32>::new();
        drop(m);
    }
}
