//! D2 golden fixture: wall-clock reads outside timing modules.

use std::time::{Duration, Instant, SystemTime}; // use lines never fire

fn positive() {
    let t0 = Instant::now(); //~ D2
    let wall = SystemTime::now(); //~ D2
    drop((t0, wall));
}

fn negative_value_passed_in(at: Instant) -> Duration {
    at.elapsed()
}

fn negative_annotated() {
    // detlint: allow(D2, boot banner timestamp; never enters artifacts)
    let wall = SystemTime::now();
    drop(wall);
}

#[cfg(test)]
mod tests {
    #[test]
    fn negative_test_code_is_exempt() {
        let t = std::time::Instant::now();
        drop(t);
    }
}
