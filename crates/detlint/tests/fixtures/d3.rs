//! D3 golden fixture: ad-hoc threading and locking.

use std::sync::Mutex; // use lines never fire
use std::thread;

fn positive() {
    let h = thread::spawn(|| 1); //~ D3
    let m = Mutex::new(0); //~ D3
    drop((h, m));
}

fn negative_other_thread_api() {
    thread::yield_now();
}

fn negative_annotated() {
    // detlint: allow(D3, bounded worker pool; joined before any merge)
    let h = thread::spawn(|| 2);
    h.join().ok();
}

#[cfg(test)]
mod tests {
    #[test]
    fn negative_test_code_is_exempt() {
        let m = std::sync::Mutex::new(1);
        drop(m);
    }
}
