//! D4 golden fixture: bare float accumulation in merge paths.

fn positive_sum(xs: &[f64]) -> f64 {
    xs.iter().sum() //~ D4
}

fn positive_fold(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |a, b| a + b) //~ D4
}

fn negative_integer_accumulator(xs: &[u64]) -> u64 {
    xs.iter().sum::<u64>()
}

fn negative_ordered_merge(xs: &[f64]) -> f64 {
    OrderedMerge::from_sorted(xs).values().sum::<f64>()
}

fn negative_annotated(xs: &[f64]) -> f64 {
    // detlint: allow(D4, inputs pre-sorted by job id upstream)
    xs.iter().sum()
}

#[cfg(test)]
mod tests {
    #[test]
    fn negative_test_code_is_exempt() {
        let total: f64 = [1.0, 2.0].iter().sum();
        drop(total);
    }
}
