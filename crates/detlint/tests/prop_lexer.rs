//! Property test: the lexer is lossless and total. For any input built
//! from Rust-ish fragments — including pathological juxtapositions like
//! a raw-string opener against a comment opener, or unterminated
//! strings — the token spans tile the input exactly: contiguous,
//! in order, and concatenating `Token::text` reconstructs the source
//! byte-for-byte.

use detlint::lexer::{lex, TokKind};
use proptest::prelude::*;

/// Fragment vocabulary: every lexer mode plus the edge shapes that
/// historically break hand-rolled scanners (nested block comments,
/// raw/byte strings, char-vs-lifetime, exponents, raw identifiers,
/// unterminated openers, non-ASCII).
const FRAGMENTS: &[&str] = &[
    "fn",
    "let",
    "ident",
    "HashMap",
    "r#fn",
    "_x1",
    "self",
    "0",
    "42",
    "0x1f",
    "0b10",
    "1.5",
    "1.5e-3",
    "0..10",
    "1_000",
    "\"str\"",
    "\"esc \\\" aped\"",
    "r\"raw\"",
    "r#\"ra\"w\"#",
    "b\"bytes\"",
    "br#\"raw bytes\"#",
    "'a'",
    "'\\n'",
    "'\\''",
    "b'x'",
    "'static",
    "'a",
    "// line comment\n",
    "//\n",
    "/* block */",
    "/* /* nested */ */",
    "/** doc */",
    "::",
    "->",
    "=>",
    "..=",
    ";",
    ",",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    "<",
    ">",
    "&",
    "|",
    "#",
    "!",
    "?",
    ".",
    "=",
    " ",
    "\n",
    "\t",
    "\r\n",
    "    ",
    "§",
    "€",
    "λ",
    "\u{1F980}",
    "\"unterminated",
    "/* open",
    "r#\"open",
    "b'",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]
    #[test]
    fn token_spans_reconstruct_input(
        idxs in prop::collection::vec(0usize..FRAGMENTS.len(), 0..64),
    ) {
        let src: String = idxs.iter().map(|&i| FRAGMENTS[i]).collect();
        let toks = lex(&src);
        // Spans are contiguous and cover every byte exactly once.
        let mut pos = 0usize;
        for t in &toks {
            prop_assert_eq!(t.start, pos, "gap or overlap before {:?}", t.kind);
            prop_assert!(t.end > t.start, "empty token {:?} at {}", t.kind, t.start);
            pos = t.end;
        }
        prop_assert_eq!(pos, src.len(), "trailing bytes not tokenized");
        // Concatenating the spans reconstructs the input byte-for-byte.
        let rebuilt: String = toks.iter().map(|t| t.text(&src)).collect();
        prop_assert_eq!(rebuilt, src);
    }

    #[test]
    fn line_and_column_are_consistent(
        idxs in prop::collection::vec(0usize..FRAGMENTS.len(), 0..64),
    ) {
        let src: String = idxs.iter().map(|&i| FRAGMENTS[i]).collect();
        let mut last = (1u32, 0u32);
        for t in lex(&src) {
            let here = (t.line, t.col);
            prop_assert!(t.line >= 1 && t.col >= 1, "0-based position leaked");
            prop_assert!(
                here > last || (t.kind == TokKind::Unknown && here >= last),
                "positions went backward: {last:?} then {here:?}"
            );
            last = here;
        }
    }
}
