//! Golden-fixture tests: each file under `tests/fixtures/` carries
//! `//~ RULE` markers naming the findings expected on that line
//! (repeat the rule id for multiple findings on one line). The harness
//! lints the fixture under an all-rules-on config and asserts the
//! finding set matches the markers exactly — so every rule is covered
//! both positively (the marked lines fire) and negatively (nothing
//! else does).

use detlint::config::{self, Config};
use detlint::rules;

/// All rules enabled, no crate/path scoping: fixtures opt out of
/// nothing, so their negatives exercise the rule heuristics themselves
/// (annotations, sorted statements, test regions) rather than config.
fn all_rules_config() -> Config {
    config::parse(
        "version = 1\n\
         [workspace]\n\
         include = [\"crates\"]\n\
         [rules.D1]\n[rules.D2]\n[rules.D3]\n[rules.D4]\n[rules.D5]\n",
    )
    .expect("golden config parses")
}

/// Parses `//~ RULE [RULE ...]` markers into (rule, 1-based line).
fn expected_findings(src: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        if let Some(pos) = line.find("//~") {
            for rule in line[pos + 3..].split_whitespace() {
                out.push((rule.to_string(), idx as u32 + 1));
            }
        }
    }
    out.sort();
    out
}

fn check_fixture(name: &str) {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).expect("fixture exists");
    let cfg = all_rules_config();
    // A synthetic library-crate path: D1/D5 crate scoping and the
    // bin/test exemptions all see the fixture as shipped library code.
    let mut got: Vec<(String, u32)> =
        rules::check_file(&format!("crates/engine/src/{name}"), &src, &cfg)
            .into_iter()
            .map(|f| (f.rule.to_string(), f.line))
            .collect();
    got.sort();
    assert_eq!(
        got,
        expected_findings(&src),
        "finding set mismatch for fixture {name}"
    );
}

#[test]
fn d1_unordered_collections() {
    check_fixture("d1.rs");
}

#[test]
fn d2_wall_clock_reads() {
    check_fixture("d2.rs");
}

#[test]
fn d3_ad_hoc_threading() {
    check_fixture("d3.rs");
}

#[test]
fn d4_bare_float_accumulation() {
    check_fixture("d4.rs");
}

#[test]
fn d5_panicking_escape_hatches() {
    check_fixture("d5.rs");
}

#[test]
fn a0_malformed_annotations() {
    check_fixture("a0.rs");
}

#[test]
fn fixtures_are_excluded_from_the_workspace_scan() {
    // The committed config must keep the deliberately-violating
    // fixtures out of the real gate.
    let root = detlint::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let cfg = detlint::load_config(&root).expect("workspace config");
    assert!(cfg
        .exclude
        .iter()
        .any(|x| x == "crates/detlint/tests/fixtures"));
}
