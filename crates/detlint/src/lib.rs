#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! # detlint
//!
//! A dependency-free static-analysis pass enforcing the workspace's
//! determinism contract (DESIGN.md, "Determinism contract"): the code
//! patterns that historically break bit-identical replay — unordered
//! map iteration, wall-clock reads in compared artifacts, ad-hoc
//! threading, unordered float reduction, and panicking escape hatches
//! in library code — are rejected statically, before a differential
//! test ever runs.
//!
//! The front end is a hand-rolled lossless Rust lexer ([`lexer`]); the
//! rules ([`rules`]) walk its significant-token stream; scoping and
//! standing exemptions live in the committed `detlint.toml`
//! ([`config`]). Run it as `cargo run -p detlint -- --check` (the CI
//! gate) or `nodeshare lint`.

pub mod config;
pub mod lexer;
pub mod rules;

use config::Config;
use rules::Finding;
use std::path::{Path, PathBuf};

/// Analyzer version, reported in the banner so experiment logs are
/// traceable to the lint level they ran under.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// The one-line banner printed by `--version` and by
/// `scripts/run_all_experiments.sh`.
pub fn banner() -> String {
    format!("detlint {VERSION} (rules {})", rules::RULE_IDS.join("/"))
}

/// Result of a workspace scan.
#[derive(Clone, Debug, Default)]
pub struct ScanReport {
    /// All findings, sorted by (path, line, col, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Locates the workspace root by walking upward from `start` until a
/// directory containing `detlint.toml` is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("detlint.toml").is_file() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

/// Loads `detlint.toml` from `root`.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("detlint.toml");
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    config::parse(&text).map_err(|e| e.to_string())
}

/// Scans the workspace under `root` per `cfg` and returns every
/// finding. File order (and therefore report order) is deterministic:
/// directory entries are visited in sorted order.
pub fn scan_workspace(root: &Path, cfg: &Config) -> Result<ScanReport, String> {
    let mut files = Vec::new();
    for inc in &cfg.include {
        let dir = root.join(inc);
        if dir.is_dir() {
            collect_rs_files(root, &dir, cfg, &mut files)
                .map_err(|e| format!("{}: {e}", dir.display()))?;
        }
    }
    files.sort();
    let mut report = ScanReport::default();
    for rel in files {
        let text = std::fs::read_to_string(root.join(&rel)).map_err(|e| format!("{rel}: {e}"))?;
        report.files_scanned += 1;
        report.findings.extend(rules::check_file(&rel, &text, cfg));
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(report)
}

/// Recursively collects workspace-relative `/`-separated `.rs` paths,
/// honoring the config's `exclude` prefixes, in sorted order.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<String>,
) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let rel = match path.strip_prefix(root) {
            Ok(r) => r
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/"),
            Err(_) => continue,
        };
        if cfg.exclude.iter().any(|x| rel.starts_with(x.as_str())) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, cfg, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Formats a scan outcome for humans; one finding per line, stable
/// order, with a trailing summary.
pub fn render_report(report: &ScanReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    if report.findings.is_empty() {
        out.push_str(&format!(
            "detlint: clean — {} files scanned, 0 findings ({})\n",
            report.files_scanned,
            banner()
        ));
    } else {
        out.push_str(&format!(
            "detlint: {} finding(s) in {} files scanned ({})\n",
            report.findings.len(),
            report.files_scanned,
            banner()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_root_walks_upward() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace has detlint.toml");
        assert!(root.join("Cargo.toml").is_file());
    }

    #[test]
    fn banner_names_all_rules() {
        let b = banner();
        for r in rules::RULE_IDS {
            assert!(b.contains(r), "{b} missing {r}");
        }
    }
}
