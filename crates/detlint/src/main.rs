#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! `detlint` CLI: the workspace determinism & hygiene gate.
//!
//! ```text
//! cargo run -p detlint -- --check            # CI gate: exit 1 on any finding
//! cargo run -p detlint -- --version          # print the lint banner
//! cargo run -p detlint -- --root DIR         # scan an explicit root
//! cargo run -p detlint -- --config FILE      # explicit config path
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // `--check` is the explicit CI spelling; a bare run checks too.
            "--check" => {}
            "--version" | "-V" => {
                println!("{}", detlint::banner());
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a directory"),
            },
            "--config" => match args.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return usage("--config needs a file"),
            },
            "--help" | "-h" => {
                println!(
                    "detlint — workspace determinism & hygiene static analysis\n\n\
                     USAGE: detlint [--check] [--root DIR] [--config FILE] [--version]\n\n\
                     Scans the workspace sources for violations of rules D1-D5\n\
                     (see DESIGN.md, \"Determinism contract\") and exits nonzero\n\
                     on any unannotated finding."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("detlint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match detlint::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "detlint: no detlint.toml found between {} and /; pass --root",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let cfg = match config_path {
        Some(p) => std::fs::read_to_string(&p)
            .map_err(|e| format!("{}: {e}", p.display()))
            .and_then(|t| detlint::config::parse(&t).map_err(|e| e.to_string())),
        None => detlint::load_config(&root),
    };
    let cfg = match cfg {
        Ok(c) => c,
        Err(e) => {
            eprintln!("detlint: {e}");
            return ExitCode::from(2);
        }
    };
    match detlint::scan_workspace(&root, &cfg) {
        Ok(report) => {
            print!("{}", detlint::render_report(&report));
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("detlint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("detlint: {msg} (see --help)");
    ExitCode::from(2)
}
