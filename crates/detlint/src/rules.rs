//! The determinism rules D1–D5 and the annotation grammar.
//!
//! Rules operate on the significant-token stream of one file (comments
//! and whitespace stripped, but line-mapped). Each rule is scoped by
//! the committed `detlint.toml` (crate lists / path prefixes /
//! path-level allowlists) and can be suppressed at a single site by an
//! inline annotation:
//!
//! ```text
//! // detlint: allow(D1, membership-only set; never iterated)
//! ```
//!
//! An annotation suppresses the named rule on its own line and on the
//! next line that contains code. The reason is mandatory — a reasonless
//! or malformed annotation is itself a finding (rule `A0`), so the
//! check gate also audits the escape hatch.

use crate::config::Config;
use crate::lexer::{lex, TokKind, Token};
use std::collections::BTreeMap;

/// All rule identifiers, in report order.
pub const RULE_IDS: [&str; 6] = ["D1", "D2", "D3", "D4", "D5", "A0"];

/// One-line human description of a rule, used in reports.
pub fn describe(rule: &str) -> &'static str {
    match rule {
        "D1" => "HashMap/HashSet in artifact-producing code (unordered iteration risk)",
        "D2" => "wall-clock read (Instant::now/SystemTime) outside allowlisted timing modules",
        "D3" => "ad-hoc threading/locking (thread::spawn, raw Mutex) outside the dispatch layer",
        "D4" => "bare float sum()/fold accumulation in a parallel-merge path",
        "D5" => "unwrap()/expect() in library-crate non-test code",
        "A0" => "malformed detlint annotation (missing reason or unknown rule)",
        _ => "unknown rule",
    }
}

/// One finding: a rule violated at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`D1`..`D5`, `A0`).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// The offending source line, trimmed (truncated if very long).
    pub snippet: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {} — {}",
            self.path,
            self.line,
            self.col,
            self.rule,
            describe(self.rule),
            self.snippet
        )
    }
}

/// How a file participates in rule scoping, derived from its path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileClass {
    /// Crate name: `crates/<name>/...` → `<name>`, root `src/` or
    /// `tests/` → `nodeshare`, anything else → its first component.
    pub crate_name: String,
    /// Integration tests / benches / examples: rules that protect
    /// shipped artifacts do not apply to test-only code.
    pub is_test: bool,
    /// Binary roots (`src/bin/`, `src/main.rs`): D5 treats these as
    /// application code, not library code.
    pub is_bin: bool,
}

/// Classifies a workspace-relative, `/`-separated path.
pub fn classify(path: &str) -> FileClass {
    let crate_name = if let Some(rest) = path.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("").to_string()
    } else if path.starts_with("src/") || path.starts_with("tests/") {
        "nodeshare".to_string()
    } else {
        path.split('/').next().unwrap_or("").to_string()
    };
    let is_test = path.contains("/tests/")
        || path.starts_with("tests/")
        || path.contains("/benches/")
        || path.starts_with("examples/")
        || path.contains("/examples/");
    let is_bin = path.contains("/src/bin/") || path.ends_with("src/main.rs");
    FileClass {
        crate_name,
        is_test,
        is_bin,
    }
}

/// A parsed `// detlint: allow(RULE, reason)` annotation.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Allow {
    rule: String,
    line: u32,
    col: u32,
}

/// Scans one file and returns its findings in source order.
pub fn check_file(path: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let class = classify(path);
    let tokens = lex(src);
    let sig: Vec<Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
            )
        })
        .copied()
        .collect();

    // Line → index (into `sig`) of that line's first significant token.
    let mut line_first: BTreeMap<u32, usize> = BTreeMap::new();
    for (i, t) in sig.iter().enumerate() {
        line_first.entry(t.line).or_insert(i);
    }

    let mut findings = Vec::new();
    let (allows, bad) = collect_annotations(src, &tokens);
    for a in &bad {
        findings.push(finding("A0", path, src, a.line, a.col));
    }
    // Rule → lines it is suppressed on: the annotation's own line plus
    // the next line holding code.
    let mut suppressed: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
    for a in &allows {
        let Some(rule) = RULE_IDS.iter().find(|r| **r == a.rule) else {
            continue; // unknown rules were already reported via `bad`
        };
        let entry = suppressed.entry(rule).or_default();
        entry.push(a.line);
        if let Some((&l, _)) = line_first.range(a.line + 1..).next() {
            entry.push(l);
        }
    }
    let allowed = |rule: &str, line: u32| {
        suppressed
            .get(rule)
            .is_some_and(|lines| lines.contains(&line))
    };

    let test_regions = cfg_test_regions(&sig, src);
    let in_test = |t: &Token| {
        class.is_test
            || test_regions
                .iter()
                .any(|&(s, e)| t.start >= s && t.start < e)
    };
    // `use` lines never execute; flagging both the import and the call
    // site would demand two annotations for one decision.
    let is_use_line = |t: &Token| {
        line_first.get(&t.line).is_some_and(|&i| {
            let first = sig[i].text(src);
            first == "use"
                || (first == "pub" && sig.get(i + 1).is_some_and(|n| n.text(src) == "use"))
        })
    };

    let in_scope = |rule: &str| {
        let rc = cfg.rule(rule);
        rc.enabled
            && (rc.crates.is_empty() || rc.crates.contains(&class.crate_name))
            && (rc.paths.is_empty() || rc.paths.iter().any(|p| path.starts_with(p.as_str())))
            && !rc.allow_paths.iter().any(|p| path.starts_with(p.as_str()))
    };
    let scoped: BTreeMap<&str, bool> = RULE_IDS.iter().map(|r| (*r, in_scope(r))).collect();

    for (i, t) in sig.iter().enumerate() {
        if t.kind != TokKind::Ident && t.kind != TokKind::Punct {
            continue;
        }
        let text = t.text(src);
        // D1 — unordered collections in artifact-producing crates.
        if scoped["D1"]
            && (text == "HashMap" || text == "HashSet")
            && !in_test(t)
            && !is_use_line(t)
            && !statement_mentions(&sig, src, i, &SORTERS, true)
            && !allowed("D1", t.line)
        {
            findings.push(finding("D1", path, src, t.line, t.col));
        }
        // D2 — wall-clock reads.
        if scoped["D2"]
            && (text == "SystemTime"
                || (text == "Instant" && follows(&sig, src, i, &[":", ":", "now"])))
            && !in_test(t)
            && !is_use_line(t)
            && !allowed("D2", t.line)
        {
            findings.push(finding("D2", path, src, t.line, t.col));
        }
        // D3 — ad-hoc threading / locking.
        if scoped["D3"]
            && ((text == "thread" && follows(&sig, src, i, &[":", ":", "spawn"]))
                || text == "Mutex")
            && !in_test(t)
            && !is_use_line(t)
            && !allowed("D3", t.line)
        {
            findings.push(finding("D3", path, src, t.line, t.col));
        }
        // D4 — order-sensitive float accumulation in merge paths. A
        // statement that names an integer accumulator type or the
        // OrderedMerge reorder buffer is exempt; everything else needs
        // a sorted-input annotation.
        if scoped["D4"]
            && text == "."
            && sig
                .get(i + 1)
                .is_some_and(|n| n.text(src) == "sum" || n.text(src) == "fold")
            && !in_test(t)
            && !statement_mentions(&sig, src, i, &INT_EXEMPT, false)
            && !allowed("D4", sig[i + 1].line)
        {
            let n = &sig[i + 1];
            findings.push(finding("D4", path, src, n.line, n.col));
        }
        // D5 — panicking escape hatches in library code.
        if scoped["D5"]
            && text == "."
            && sig
                .get(i + 1)
                .is_some_and(|n| n.text(src) == "unwrap" || n.text(src) == "expect")
            && sig.get(i + 2).is_some_and(|n| n.text(src) == "(")
            && !class.is_bin
            && !in_test(t)
            && !propagated_call(&sig, src, i + 2)
            && !allowed("D5", sig[i + 1].line)
        {
            let n = &sig[i + 1];
            findings.push(finding("D5", path, src, n.line, n.col));
        }
    }
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    findings
}

/// D1's "immediately sorted" escape hatch vocabulary.
const SORTERS: [&str; 8] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_by_cached_key",
    "BTreeMap",
    "BTreeSet",
];

/// D4's order-insensitive accumulator vocabulary: integer sums commute
/// exactly, and `OrderedMerge` is the sanctioned merge primitive.
const INT_EXEMPT: [&str; 13] = [
    "u8",
    "u16",
    "u32",
    "u64",
    "u128",
    "usize",
    "i8",
    "i16",
    "i32",
    "i64",
    "i128",
    "isize",
    "OrderedMerge",
];

fn finding(rule: &'static str, path: &str, src: &str, line: u32, col: u32) -> Finding {
    Finding {
        rule,
        path: path.to_string(),
        line,
        col,
        snippet: snippet_of(src, line),
    }
}

/// The trimmed text of a 1-based source line, capped for readability.
fn snippet_of(src: &str, line: u32) -> String {
    let text = src.lines().nth(line as usize - 1).unwrap_or("").trim();
    let mut s: String = text.chars().take(120).collect();
    if text.chars().count() > 120 {
        s.push('…');
    }
    s
}

/// Does `sig[i+1..]` spell exactly the given texts?
fn follows(sig: &[Token], src: &str, i: usize, texts: &[&str]) -> bool {
    texts
        .iter()
        .enumerate()
        .all(|(k, want)| sig.get(i + 1 + k).is_some_and(|t| t.text(src) == *want))
}

/// Whether the call whose `(` sits at `sig[open]` is immediately
/// followed by `?`. `Option::expect`/`Result::expect` return the bare
/// value, so `.expect(...)?` can only be a user-defined fallible
/// method (e.g. the report JSON parser's `expect(byte)`), not the
/// panicking std combinator D5 targets.
fn propagated_call(sig: &[Token], src: &str, open: usize) -> bool {
    let mut depth = 0i32;
    let mut j = open;
    while j < sig.len() {
        match punct_char(&sig[j], src) {
            Some('(') => depth += 1,
            Some(')') => {
                depth -= 1;
                if depth == 0 {
                    return sig.get(j + 1).is_some_and(|t| t.text(src) == "?");
                }
            }
            _ => {}
        }
        j += 1;
    }
    false
}

/// The character of a punct token.
fn punct_char(t: &Token, src: &str) -> Option<char> {
    if t.kind == TokKind::Punct {
        t.text(src).chars().next()
    } else {
        None
    }
}

/// Whether the statement around `sig[i]` mentions any of `words` as an
/// identifier. The statement spans from the previous `;`/`{`/`}` at
/// the site's own nesting depth through the matching forward boundary,
/// so multi-line iterator chains (closures included) count as one
/// statement. With `include_next`, the immediately following statement
/// is scanned too — the `let mut v = ...collect(); v.sort();` idiom
/// sorts on the next statement.
fn statement_mentions(
    sig: &[Token],
    src: &str,
    i: usize,
    words: &[&str],
    include_next: bool,
) -> bool {
    let lo = statement_start(sig, src, i);
    let mut hi = statement_end(sig, src, i);
    if include_next && punct_char(&sig[hi], src) == Some(';') && hi + 1 < sig.len() {
        hi = statement_end(sig, src, hi + 1);
    }
    sig[lo..=hi]
        .iter()
        .any(|t| t.kind == TokKind::Ident && words.contains(&t.text(src)))
}

/// Walks backward from `i` to the previous statement boundary.
fn statement_start(sig: &[Token], src: &str, i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j > 0 {
        match punct_char(&sig[j - 1], src) {
            Some('}') | Some(')') | Some(']') => depth += 1,
            Some('{') | Some('(') | Some('[') => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            // A depth-0 comma separates struct fields / match arms /
            // call arguments — each is judged on its own.
            Some(';') | Some(',') if depth == 0 => return j,
            _ => {}
        }
        j -= 1;
    }
    0
}

/// Walks forward from `i` to the next statement boundary.
fn statement_end(sig: &[Token], src: &str, i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j + 1 < sig.len() {
        j += 1;
        match punct_char(&sig[j], src) {
            Some('{') | Some('(') | Some('[') => depth += 1,
            Some('}') | Some(')') | Some(']') => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            Some(';') | Some(',') if depth == 0 => return j,
            _ => {}
        }
    }
    sig.len() - 1
}

/// Byte ranges of items gated behind `#[cfg(test)]`: the attribute
/// sequence `# [ cfg ( test ) ]` followed by an item, whose extent is
/// the matching `}` of its first block (or the terminating `;`).
fn cfg_test_regions(sig: &[Token], src: &str) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < sig.len() {
        if sig[i].text(src) == "#" && follows(sig, src, i, &["[", "cfg", "(", "test", ")", "]"]) {
            // Skip past this attribute and any further attributes
            // (`#[test]`, `#[allow(...)]`, ...) before the item.
            let mut j = i + 7;
            while sig.get(j).is_some_and(|t| t.text(src) == "#")
                && sig.get(j + 1).is_some_and(|t| t.text(src) == "[")
            {
                let mut depth = 0i32;
                j += 1;
                while j < sig.len() {
                    match punct_char(&sig[j], src) {
                        Some('[') => depth += 1,
                        Some(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                j += 1;
            }
            // The item runs to its first top-level `;` or the matching
            // `}` of its first `{`.
            let item_start = sig.get(j).map_or(src.len(), |t| t.start);
            let mut depth = 0i32;
            let mut end = src.len();
            while j < sig.len() {
                match punct_char(&sig[j], src) {
                    Some('{') => depth += 1,
                    Some('}') => {
                        depth -= 1;
                        if depth == 0 {
                            end = sig[j].end;
                            break;
                        }
                    }
                    Some(';') if depth == 0 => {
                        end = sig[j].end;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            regions.push((item_start, end));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    regions
}

/// Extracts `detlint: allow(RULE, reason)` annotations from comments.
/// Returns (well-formed, malformed) lists.
fn collect_annotations(src: &str, tokens: &[Token]) -> (Vec<Allow>, Vec<Allow>) {
    let mut good = Vec::new();
    let mut bad = Vec::new();
    for t in tokens {
        if t.kind != TokKind::LineComment && t.kind != TokKind::BlockComment {
            continue;
        }
        let body = t.text(src);
        // Doc comments are prose — only plain `//` / `/*` comments
        // carry directives, so documentation may quote the syntax.
        if body.starts_with("///")
            || body.starts_with("//!")
            || body.starts_with("/**")
            || body.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = body.find("detlint:") else {
            continue;
        };
        let rest = body[at + "detlint:".len()..].trim_start();
        // Prose that merely mentions "detlint:" without an `allow(`
        // directly after is not an annotation attempt.
        if !rest.starts_with("allow") {
            continue;
        }
        let allow = |rule: String| Allow {
            rule,
            line: t.line,
            col: t.col,
        };
        match parse_allow(rest) {
            Some((rule, reason))
                if RULE_IDS.contains(&rule.as_str()) && rule != "A0" && !reason.is_empty() =>
            {
                good.push(allow(rule));
            }
            Some((rule, _)) => bad.push(allow(rule)),
            None => bad.push(allow(String::new())),
        }
    }
    (good, bad)
}

/// Parses `allow(RULE, reason...)` → `(RULE, reason)`.
fn parse_allow(text: &str) -> Option<(String, String)> {
    let inner = text.strip_prefix("allow")?.trim_start().strip_prefix('(')?;
    let close = inner.rfind(')')?;
    let inner = &inner[..close];
    let (rule, reason) = match inner.find(',') {
        Some(c) => (&inner[..c], inner[c + 1..].trim()),
        None => (inner, ""),
    };
    let reason = reason.trim_matches('"').trim();
    Some((rule.trim().to_string(), reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config;

    fn cfg_all() -> Config {
        config::parse(
            r#"
version = 1
[rules.D1]
[rules.D2]
[rules.D3]
[rules.D4]
[rules.D5]
"#,
        )
        .expect("test config parses")
    }

    fn rules_at(path: &str, src: &str) -> Vec<(&'static str, u32)> {
        check_file(path, src, &cfg_all())
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn d1_flags_and_annotation_suppresses() {
        let src = "fn f() {\n    let m = std::collections::HashMap::new();\n}\n";
        assert_eq!(rules_at("crates/engine/src/x.rs", src), [("D1", 2)]);
        let src = "fn f() {\n    // detlint: allow(D1, lookup-only map)\n    let m = std::collections::HashMap::new();\n}\n";
        assert_eq!(rules_at("crates/engine/src/x.rs", src), []);
    }

    #[test]
    fn d1_sorted_statement_is_exempt() {
        let src = "fn f(m: &std::collections::HashMap<u32, u32>) {\n    let mut v: Vec<_> = m.keys().collect();\n    v.sort();\n}\n";
        // The declaration line mentions HashMap inside the fn signature
        // statement, which also has no sort — but the type position is
        // a parameter; the statement scan runs to the `{`.
        let hits = rules_at("crates/engine/src/x.rs", src);
        assert_eq!(hits, [("D1", 1)]);
        // Sorting on the next statement exempts (collect-then-sort
        // idiom). Note the scan treats depth-0 commas as statement
        // boundaries (so struct fields are judged individually), which
        // means a multi-parameter turbofish truncates the scan — such
        // sites should carry an annotation instead.
        let src = "fn f() {\n    let mut v: Vec<_> = std::collections::HashSet::<u32>::new().into_iter().collect::<Vec<_>>(); v.sort();\n}\n";
        assert_eq!(rules_at("crates/engine/src/x.rs", src), []);
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn g() { let m = HashMap::<u32, u32>::new(); let _ = m; }\n}\n";
        assert_eq!(rules_at("crates/engine/src/x.rs", src), []);
    }

    #[test]
    fn d2_matches_instant_now_but_not_instant_type() {
        let src = "fn f() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
        assert_eq!(rules_at("crates/engine/src/x.rs", src), [("D2", 2)]);
    }

    #[test]
    fn d5_skips_bins_tests_and_use_lines() {
        let src = "fn f() {\n    let v: Option<u32> = None;\n    v.unwrap();\n}\n";
        assert_eq!(rules_at("crates/engine/src/x.rs", src), [("D5", 3)]);
        assert_eq!(rules_at("crates/engine/src/bin/tool.rs", src), []);
        assert_eq!(rules_at("crates/engine/tests/t.rs", src), []);
    }

    #[test]
    fn a0_on_missing_reason_or_unknown_rule() {
        let src = "// detlint: allow(D1)\nfn f() {}\n";
        assert_eq!(rules_at("crates/engine/src/x.rs", src), [("A0", 1)]);
        let src = "// detlint: allow(D9, because)\nfn f() {}\n";
        assert_eq!(rules_at("crates/engine/src/x.rs", src), [("A0", 1)]);
    }

    #[test]
    fn scoping_by_crate_and_allow_path() {
        let mut cfg = cfg_all();
        cfg.rules.get_mut("D1").expect("D1 present").crates = vec!["engine".into()];
        let src = "fn f() { let m = std::collections::HashMap::<u32, u32>::new(); let _ = m; }\n";
        assert_eq!(check_file("crates/engine/src/x.rs", src, &cfg).len(), 1);
        assert_eq!(check_file("crates/slurm/src/x.rs", src, &cfg).len(), 0);
        cfg.rules.get_mut("D1").expect("D1 present").allow_paths =
            vec!["crates/engine/src/x.rs".into()];
        assert_eq!(check_file("crates/engine/src/x.rs", src, &cfg).len(), 0);
    }
}
