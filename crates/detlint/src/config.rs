//! `detlint.toml` parsing: a minimal, dependency-free TOML subset.
//!
//! The committed workspace config only needs table headers, strings,
//! booleans, integers, and (possibly multi-line) string arrays, so that
//! is exactly what this parser accepts — anything else is a
//! line-numbered error, in the same spirit as the rest of the
//! workspace's hand-rolled readers (report JSON, ctrace CSV).

use std::collections::BTreeMap;

/// Per-rule configuration: where the rule applies and standing
/// path-level exemptions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleCfg {
    /// `false` disables the rule entirely.
    pub enabled: bool,
    /// Crate names (directory names under `crates/`, or `nodeshare`
    /// for the root package) the rule is scoped to. Empty = all.
    pub crates: Vec<String>,
    /// Workspace-relative path prefixes the rule is *restricted* to.
    /// Empty = no path restriction.
    pub paths: Vec<String>,
    /// Workspace-relative path prefixes exempt from the rule (the
    /// config-level allowlist, e.g. the wall-clock modules for D2).
    pub allow_paths: Vec<String>,
}

/// The parsed `detlint.toml`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Config {
    /// Top-level directories to scan, relative to the workspace root.
    pub include: Vec<String>,
    /// Path prefixes to skip entirely (vendored code, fixtures, ...).
    pub exclude: Vec<String>,
    /// Rule id (e.g. `"D1"`) → its scope.
    pub rules: BTreeMap<String, RuleCfg>,
}

impl Config {
    /// Looks up a rule's config; a rule absent from the file is off.
    pub fn rule(&self, id: &str) -> RuleCfg {
        self.rules.get(id).cloned().unwrap_or_default()
    }
}

/// A config-file parse failure with its 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the offending construct.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "detlint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// One parsed value.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Value {
    Str(String),
    Bool(bool),
    Int(i64),
    Array(Vec<String>),
}

/// Parses the TOML subset. Unknown keys are errors so that a typo in
/// the committed config cannot silently disable a rule.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let mut cfg = Config::default();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(err(lineno, "unterminated table header"));
            };
            section = name.trim().to_string();
            if let Some(id) = section.strip_prefix("rules.") {
                // A rule named in the config is on unless it says
                // `enabled = false`, even with no other keys.
                cfg.rules.entry(id.to_string()).or_insert_with(|| RuleCfg {
                    enabled: true,
                    ..RuleCfg::default()
                });
            } else if section != "workspace" {
                return Err(err(lineno, format!("unknown table [{section}]")));
            }
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(err(
                lineno,
                format!("expected `key = value`, found {line:?}"),
            ));
        };
        let key = line[..eq].trim().to_string();
        let mut val_text = line[eq + 1..].trim().to_string();
        // A multi-line array: keep consuming lines until the bracket
        // closes (string contents are comment-stripped safely because
        // the committed config never puts `#` inside a path).
        while val_text.starts_with('[') && !val_text.ends_with(']') {
            let Some((_, cont)) = lines.next() else {
                return Err(err(lineno, "unterminated array"));
            };
            val_text.push(' ');
            val_text.push_str(strip_comment(cont).trim());
        }
        let value = parse_value(lineno, &val_text)?;
        apply(&mut cfg, &section, &key, value, lineno)?;
    }
    Ok(cfg)
}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(lineno: usize, text: &str) -> Result<Value, ConfigError> {
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let Some(inner) = inner.strip_suffix(']') else {
            return Err(err(lineno, "unterminated array"));
        };
        let mut items = Vec::new();
        for piece in split_top_level(inner) {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            match parse_value(lineno, piece)? {
                Value::Str(s) => items.push(s),
                other => {
                    return Err(err(
                        lineno,
                        format!("arrays may only hold strings, found {other:?}"),
                    ))
                }
            }
        }
        return Ok(Value::Array(items));
    }
    if let Some(inner) = text.strip_prefix('"') {
        let Some(inner) = inner.strip_suffix('"') else {
            return Err(err(lineno, "unterminated string"));
        };
        if inner.contains('"') {
            return Err(err(lineno, "escaped quotes are not supported"));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    if let Ok(n) = text.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    Err(err(lineno, format!("cannot parse value {text:?}")))
}

/// Splits an array body on commas that sit outside quotes.
fn split_top_level(inner: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for ch in inner.chars() {
        match ch {
            '"' => {
                in_str = !in_str;
                cur.push(ch);
            }
            ',' if !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

fn apply(
    cfg: &mut Config,
    section: &str,
    key: &str,
    value: Value,
    lineno: usize,
) -> Result<(), ConfigError> {
    let want_array = |v: Value| -> Result<Vec<String>, ConfigError> {
        match v {
            Value::Array(a) => Ok(a),
            other => Err(err(lineno, format!("expected an array, found {other:?}"))),
        }
    };
    match section {
        "" => match (key, value) {
            ("version", Value::Int(1)) => Ok(()),
            ("version", other) => Err(err(
                lineno,
                format!("unsupported config version {other:?} (expected 1)"),
            )),
            (k, _) => Err(err(lineno, format!("unknown top-level key {k:?}"))),
        },
        "workspace" => match key {
            "include" => {
                cfg.include = want_array(value)?;
                Ok(())
            }
            "exclude" => {
                cfg.exclude = want_array(value)?;
                Ok(())
            }
            k => Err(err(lineno, format!("unknown [workspace] key {k:?}"))),
        },
        rule_section => {
            let id = rule_section
                .strip_prefix("rules.")
                .expect("only rules.* sections reach here");
            let entry = cfg.rules.entry(id.to_string()).or_insert_with(|| RuleCfg {
                enabled: true,
                ..RuleCfg::default()
            });
            match key {
                "enabled" => match value {
                    Value::Bool(b) => {
                        entry.enabled = b;
                        Ok(())
                    }
                    other => Err(err(
                        lineno,
                        format!("enabled must be a bool, found {other:?}"),
                    )),
                },
                "crates" => {
                    entry.crates = want_array(value)?;
                    Ok(())
                }
                "paths" => {
                    entry.paths = want_array(value)?;
                    Ok(())
                }
                "allow_paths" => {
                    entry.allow_paths = want_array(value)?;
                    Ok(())
                }
                k => Err(err(lineno, format!("unknown [rules.{id}] key {k:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shipped_shape() {
        let cfg = parse(
            r#"
version = 1
[workspace]
include = ["crates", "src"]
exclude = [
    "vendor", # offline stand-ins
    "target",
]
[rules.D1]
enabled = true
crates = ["engine", "core"]
[rules.D2]
allow_paths = ["crates/obs/src/span.rs"]
"#,
        )
        .expect("config parses");
        assert_eq!(cfg.include, ["crates", "src"]);
        assert_eq!(cfg.exclude, ["vendor", "target"]);
        assert!(cfg.rule("D1").enabled);
        assert_eq!(cfg.rule("D1").crates, ["engine", "core"]);
        assert_eq!(cfg.rule("D2").allow_paths, ["crates/obs/src/span.rs"]);
        assert!(!cfg.rule("D9").enabled, "unknown rules default to off");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("version = 1\n[workspace]\nbogus = 3\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("detlint.toml:3"), "{e}");
        let e = parse("[rules.D1]\nenabled = \"yes\"\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn version_must_be_one() {
        assert!(parse("version = 2\n").is_err());
    }
}
