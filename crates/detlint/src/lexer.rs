//! A minimal hand-rolled Rust lexer.
//!
//! The scanner needs just enough lexical structure to tell code from
//! comments and string literals: a `HashMap` inside a doc comment or a
//! format string must never produce a finding, and a `// detlint:
//! allow(...)` annotation must be recognized wherever it appears. The
//! lexer therefore produces a *lossless* token stream — every byte of
//! the input belongs to exactly one token, and concatenating the token
//! spans reconstructs the input verbatim (property-tested in
//! `tests/prop_lexer.rs`). It understands nested block comments, raw
//! and byte strings, char-vs-lifetime disambiguation, and numeric
//! literals well enough to never mis-bracket a delimiter; it does not
//! attempt full fidelity on exotic literals because rules only ever
//! match identifier and punctuation tokens.

/// Classification of one lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Runs of whitespace (including newlines).
    Whitespace,
    /// `// ...` up to (not including) the newline; doc `///` included.
    LineComment,
    /// `/* ... */`, nesting-aware; doc `/** */` included.
    BlockComment,
    /// Identifier or keyword.
    Ident,
    /// `'lifetime` (not a char literal).
    Lifetime,
    /// Numeric literal (integer or float, any base, with suffix).
    Number,
    /// String literal: `"..."`, `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`.
    Str,
    /// Char or byte-char literal: `'a'`, `b'\n'`.
    Char,
    /// A single punctuation character.
    Punct,
    /// Anything the lexer does not classify (kept for losslessness).
    Unknown,
}

/// One token: a classified byte span of the source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// What the span is.
    pub kind: TokKind,
    /// Byte offset of the first byte (inclusive).
    pub start: usize,
    /// Byte offset one past the last byte (exclusive).
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based byte column of the token's first byte within its line.
    pub col: u32,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

struct Cursor<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    line_start: usize,
}

impl<'s> Cursor<'s> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking line starts. Multi-byte UTF-8
    /// sequences never contain ASCII bytes, so byte-wise scanning is
    /// safe for every delimiter the lexer cares about.
    fn bump(&mut self) {
        if self.bytes.get(self.pos) == Some(&b'\n') {
            self.line += 1;
            self.line_start = self.pos + 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn eat_while(&mut self, pred: impl Fn(u8) -> bool) {
        while let Some(b) = self.peek(0) {
            if pred(b) {
                self.bump();
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a lossless token stream.
///
/// Invariants (property-tested): tokens are contiguous, non-empty,
/// cover the whole input in order, and `concat(token.text()) == src`.
pub fn lex(src: &str) -> Vec<Token> {
    let mut c = Cursor {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        line_start: 0,
    };
    let mut out = Vec::new();
    while c.pos < c.bytes.len() {
        let start = c.pos;
        let line = c.line;
        let col = (c.pos - c.line_start + 1) as u32;
        let kind = next_kind(&mut c);
        debug_assert!(c.pos > start, "lexer must always make progress");
        out.push(Token {
            kind,
            start,
            end: c.pos,
            line,
            col,
        });
    }
    out
}

fn next_kind(c: &mut Cursor<'_>) -> TokKind {
    let b = c.peek(0).expect("next_kind called at end of input");
    match b {
        _ if b.is_ascii_whitespace() => {
            c.eat_while(|b| b.is_ascii_whitespace());
            TokKind::Whitespace
        }
        b'/' => match c.peek(1) {
            Some(b'/') => {
                c.eat_while(|b| b != b'\n');
                TokKind::LineComment
            }
            Some(b'*') => {
                block_comment(c);
                TokKind::BlockComment
            }
            _ => {
                c.bump();
                TokKind::Punct
            }
        },
        b'"' => {
            quoted(c, b'"');
            TokKind::Str
        }
        b'\'' => char_or_lifetime(c),
        b'r' | b'b' if raw_or_byte_literal(c) != TokKind::Ident => raw_or_byte_literal_eat(c),
        _ if is_ident_start(b) => {
            c.eat_while(is_ident_continue);
            TokKind::Ident
        }
        _ if b.is_ascii_digit() => {
            number(c);
            TokKind::Number
        }
        _ if b.is_ascii_punctuation() => {
            c.bump();
            TokKind::Punct
        }
        _ => {
            c.bump();
            TokKind::Unknown
        }
    }
}

/// Looks ahead (without consuming) to see whether the cursor sits on a
/// raw/byte string or byte-char literal rather than a plain identifier
/// starting with `r`/`b`.
fn raw_or_byte_literal(c: &Cursor<'_>) -> TokKind {
    let b0 = c.peek(0);
    let mut i = 1;
    if b0 == Some(b'b') && c.peek(1) == Some(b'r') {
        i = 2;
    }
    match (b0, c.peek(i)) {
        (Some(b'b'), Some(b'\'')) if i == 1 => TokKind::Char,
        (Some(b'b'), Some(b'"')) if i == 1 => TokKind::Str,
        (Some(b'r') | Some(b'b'), Some(b'"')) | (Some(b'r') | Some(b'b'), Some(b'#')) => {
            // `r"`, `r#`, `br"`, `br#` — but `r#ident` (raw identifier)
            // must stay an identifier: only a `"` at the end of the
            // hash run makes it a raw string.
            let mut j = i;
            while c.peek(j) == Some(b'#') {
                j += 1;
            }
            if c.peek(j) == Some(b'"') {
                TokKind::Str
            } else {
                TokKind::Ident
            }
        }
        _ => TokKind::Ident,
    }
}

/// Consumes the literal detected by [`raw_or_byte_literal`].
fn raw_or_byte_literal_eat(c: &mut Cursor<'_>) -> TokKind {
    let kind = raw_or_byte_literal(c);
    // Skip the `b` / `r` / `br` prefix.
    c.bump();
    if c.peek(0) == Some(b'r') && kind == TokKind::Str {
        c.bump();
    }
    match kind {
        TokKind::Char => {
            char_body(c);
            TokKind::Char
        }
        TokKind::Str => {
            if c.peek(0) == Some(b'"') {
                quoted(c, b'"');
            } else {
                raw_string(c);
            }
            TokKind::Str
        }
        other => other,
    }
}

/// `/* ... */` with nesting; an unterminated comment runs to EOF.
fn block_comment(c: &mut Cursor<'_>) {
    c.bump_n(2);
    let mut depth = 1usize;
    while depth > 0 {
        match (c.peek(0), c.peek(1)) {
            (Some(b'/'), Some(b'*')) => {
                depth += 1;
                c.bump_n(2);
            }
            (Some(b'*'), Some(b'/')) => {
                depth -= 1;
                c.bump_n(2);
            }
            (Some(_), _) => c.bump(),
            (None, _) => break,
        }
    }
}

/// A `"..."` (or the body of a `b"..."`) with backslash escapes; an
/// unterminated string runs to EOF.
fn quoted(c: &mut Cursor<'_>, delim: u8) {
    c.bump(); // opening delimiter
    loop {
        match c.peek(0) {
            Some(b'\\') => c.bump_n(2.min(c.bytes.len() - c.pos)),
            Some(b) if b == delim => {
                c.bump();
                break;
            }
            Some(_) => c.bump(),
            None => break,
        }
    }
}

/// `#...#"..."#...#` after the `r`/`br` prefix: counts opening hashes,
/// then scans for `"` followed by the same number of hashes.
fn raw_string(c: &mut Cursor<'_>) {
    let mut hashes = 0usize;
    while c.peek(0) == Some(b'#') {
        hashes += 1;
        c.bump();
    }
    if c.peek(0) != Some(b'"') {
        return; // malformed; losslessness is preserved regardless
    }
    c.bump();
    'scan: loop {
        match c.peek(0) {
            Some(b'"') => {
                for i in 1..=hashes {
                    if c.peek(i) != Some(b'#') {
                        c.bump();
                        continue 'scan;
                    }
                }
                c.bump_n(1 + hashes);
                break;
            }
            Some(_) => c.bump(),
            None => break,
        }
    }
}

/// Disambiguates `'a'` (char) from `'a` (lifetime) at a leading `'`.
fn char_or_lifetime(c: &mut Cursor<'_>) -> TokKind {
    // A lifetime is `'` + ident not followed by a closing `'`.
    if c.peek(1).is_some_and(is_ident_start) {
        let mut j = 2;
        while c.peek(j).is_some_and(is_ident_continue) {
            j += 1;
        }
        if c.peek(j) != Some(b'\'') {
            c.bump(); // the quote
            c.eat_while(is_ident_continue);
            return TokKind::Lifetime;
        }
    }
    char_body(c);
    TokKind::Char
}

/// Consumes a `'...'` char (or byte-char) literal including escapes.
fn char_body(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    loop {
        match c.peek(0) {
            Some(b'\\') => c.bump_n(2.min(c.bytes.len() - c.pos)),
            Some(b'\'') => {
                c.bump();
                break;
            }
            Some(b'\n') | None => break, // malformed; stop at the line
            Some(_) => c.bump(),
        }
    }
}

/// Numeric literal: digits, underscores, suffixes, `0x`/`0b`/`0o`
/// bases, a fraction part only when `.` is followed by a digit (so
/// `0..10` lexes as `0`, `.`, `.`, `10`), and signed exponents.
fn number(c: &mut Cursor<'_>) {
    c.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    if c.peek(0) == Some(b'.') && c.peek(1).is_some_and(|b| b.is_ascii_digit()) {
        c.bump();
        c.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    }
    // `1e-5` / `2.5E+10`: the alphanumeric run stops at the sign.
    if c.src[..c.pos].ends_with(['e', 'E'])
        && matches!(c.peek(0), Some(b'+') | Some(b'-'))
        && c.peek(1).is_some_and(|b| b.is_ascii_digit())
    {
        c.bump();
        c.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokKind::Whitespace))
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_inside_strings_and_comments_are_not_code() {
        let src = r##"let x = "HashMap"; // HashMap
/* HashMap /* nested */ still comment */
let y = r#"HashMap"#;"##;
        let idents: Vec<_> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(idents, ["let", "x", "let", "y"]);
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }";
        let v = kinds(src);
        assert!(v.contains(&(TokKind::Lifetime, "'a".into())));
        assert!(v.contains(&(TokKind::Char, "'x'".into())));
        assert!(v.contains(&(TokKind::Char, "'\\n'".into())));
    }

    #[test]
    fn raw_identifier_is_ident() {
        let v = kinds("let r#fn = 1;");
        assert!(v.contains(&(TokKind::Ident, "r".into())), "{v:?}");
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let v = kinds("for i in 0..10 {}");
        assert!(v.contains(&(TokKind::Number, "0".into())));
        assert!(v.contains(&(TokKind::Number, "10".into())));
    }

    #[test]
    fn byte_strings_and_exponents() {
        let v = kinds(r#"let b = b"bytes"; let e = 1.5e-3; let c = b'x';"#);
        assert!(v.contains(&(TokKind::Str, "b\"bytes\"".into())));
        assert!(v.contains(&(TokKind::Number, "1.5e-3".into())));
        assert!(v.contains(&(TokKind::Char, "b'x'".into())));
    }

    #[test]
    fn line_numbers_are_one_based_and_track_newlines() {
        let src = "a\nbb\n  ccc";
        let toks: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .collect();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
        assert_eq!(toks[2].col, 3);
    }
}
