//! A small, dependency-free `--flag value` argument parser for the
//! `nodeshare` binary.

use std::collections::BTreeMap;

/// Parsed invocation: a subcommand plus its flags.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Invocation {
    /// First positional token (`simulate`, `workload`, `pairs`, `apps`).
    pub command: String,
    /// `--flag value` pairs; bare `--flag` stores an empty string.
    flags: BTreeMap<String, String>,
}

/// Argument parsing failure with a user-facing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Invocation {
    /// Parses the argument vector (without the program name).
    pub fn parse<I, S>(args: I) -> Result<Invocation, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut it = args.into_iter().map(Into::into).peekable();
        let command = it
            .next()
            .ok_or_else(|| ArgError("missing subcommand; try `nodeshare help`".into()))?;
        if command.starts_with('-') {
            return Err(ArgError(format!(
                "expected a subcommand, found flag {command:?}"
            )));
        }
        let mut flags = BTreeMap::new();
        while let Some(tok) = it.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected positional argument {tok:?}")));
            };
            if name.is_empty() {
                return Err(ArgError("empty flag name".into()));
            }
            if let Some((k, v)) = name.split_once('=') {
                flags.insert(k.to_string(), v.to_string());
                continue;
            }
            // Value is the next token unless it is another flag.
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().unwrap_or_default(),
                _ => String::new(),
            };
            flags.insert(name.to_string(), value);
        }
        Ok(Invocation { command, flags })
    }

    /// String flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Whether a bare flag is present.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// Parsed numeric flag with a default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("bad value {v:?} for --{name}"))),
        }
    }

    /// Flag names the caller did not consume — for unknown-flag errors.
    pub fn check_known(&self, known: &[&str]) -> Result<(), ArgError> {
        for flag in self.flags.keys() {
            if !known.contains(&flag.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{flag} for `{}` (known: {})",
                    self.command,
                    known.join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_commands_and_flags() {
        let inv =
            Invocation::parse(["simulate", "--jobs", "500", "--strategy", "co-backfill"]).unwrap();
        assert_eq!(inv.command, "simulate");
        assert_eq!(inv.get("jobs"), Some("500"));
        assert_eq!(inv.get("strategy"), Some("co-backfill"));
        assert_eq!(inv.num::<u32>("jobs", 0).unwrap(), 500);
        assert_eq!(inv.num::<u32>("seed", 42).unwrap(), 42);
    }

    #[test]
    fn equals_form_and_bare_flags() {
        let inv = Invocation::parse(["simulate", "--seed=7", "--quiet", "--jobs", "10"]).unwrap();
        assert_eq!(inv.get("seed"), Some("7"));
        assert!(inv.has("quiet"));
        assert_eq!(inv.get("quiet"), Some(""));
        assert_eq!(inv.num::<u64>("seed", 0).unwrap(), 7);
    }

    #[test]
    fn errors() {
        assert!(Invocation::parse(Vec::<String>::new()).is_err());
        assert!(Invocation::parse(["--flag"]).is_err());
        assert!(Invocation::parse(["sim", "stray"]).is_err());
        let inv = Invocation::parse(["sim", "--jobs", "abc"]).unwrap();
        assert!(inv.num::<u32>("jobs", 0).is_err());
    }

    #[test]
    fn unknown_flags_are_reported() {
        let inv = Invocation::parse(["pairs", "--bogus", "1"]).unwrap();
        let err = inv.check_known(&["seed"]).unwrap_err();
        assert!(err.0.contains("bogus"));
        assert!(inv.check_known(&["bogus"]).is_ok());
    }

    #[test]
    fn flag_followed_by_flag_keeps_empty_value() {
        let inv = Invocation::parse(["sim", "--a", "--b", "2"]).unwrap();
        assert_eq!(inv.get("a"), Some(""));
        assert_eq!(inv.get("b"), Some("2"));
    }
}
