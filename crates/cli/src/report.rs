//! Campaign report rendering for the CLI: one text document with the
//! headline metrics, distribution read-outs, fairness, and per-app
//! breakdown.

use nodeshare_cluster::ClusterSpec;
use nodeshare_engine::{AuditSummary, SimOutcome};
use nodeshare_metrics::{by_app, fmt_seconds, user_slowdown_fairness, Buckets, Histogram, Table};
use nodeshare_perf::AppCatalog;

/// Renders the full report for one finished run.
pub fn render(outcome: &SimOutcome, spec: &ClusterSpec, catalog: &AppCatalog) -> String {
    let m = outcome.metrics(spec);
    let mut out = String::new();
    out.push_str(&format!(
        "=== nodeshare report: {} ===\n\n",
        outcome.scheduler
    ));
    if !outcome.rejected.is_empty() {
        out.push_str(&format!(
            "rejected at submission (unsatisfiable): {} jobs\n",
            outcome.rejected.len()
        ));
    }
    out.push_str(&format!(
        "jobs {}  killed {}  restarts {}  makespan {}  \n\
         utilization {:.3}  computational efficiency {:.3}  scheduling efficiency {:.3}\n\
         shared node-time {:.1}%  user fairness (Jain) {:.3}\n\n",
        m.jobs,
        m.killed,
        m.total_restarts,
        fmt_seconds(m.makespan),
        m.utilization,
        m.computational_efficiency,
        m.scheduling_efficiency,
        m.shared_fraction * 100.0,
        user_slowdown_fairness(&outcome.records),
    ));

    let mut t = Table::new(vec!["metric", "mean", "median", "p95", "max"]);
    for (name, s) in [
        ("wait (s)", &m.wait),
        ("bounded slowdown", &m.bounded_slowdown),
        ("dilation", &m.dilation),
    ] {
        t.row(vec![
            name.to_string(),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.median),
            format!("{:.2}", s.p95),
            format!("{:.2}", s.max),
        ]);
    }
    out.push_str(&t.render());

    if m.shared_fraction > 0.0 {
        let hist = Histogram::of(
            outcome
                .records
                .iter()
                .filter(|r| !r.killed)
                .map(|r| r.dilation().max(1.0)),
            &Buckets::Linear {
                lo: 1.0,
                hi: 2.0,
                count: 10,
            },
        );
        out.push_str("\ndilation distribution:\n");
        out.push_str(&hist.render(32));
    }

    out.push_str("\nper-application outcomes:\n");
    let mut t = Table::new(vec!["app", "jobs", "wait:mean(s)", "dil:p95", "shared"]);
    for (app, g) in by_app(&outcome.records) {
        t.row(vec![
            catalog
                .get(app)
                .map(|a| a.name.clone())
                .unwrap_or_else(|| app.to_string()),
            g.jobs.to_string(),
            format!("{:.0}", g.wait.mean),
            format!("{:.2}", g.dilation.p95),
            format!("{:.0}%", g.shared_fraction * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Renders the verdict of a clean replay audit.
pub fn audit_report(
    outcome: &SimOutcome,
    summary: &AuditSummary,
    trace_path: Option<&str>,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== nodeshare audit: {} ===\n\n",
        outcome.scheduler
    ));
    out.push_str(&format!(
        "replayed {} events: {} starts ({} shared), {} terminations ({} killed), {} requeues\n",
        summary.events,
        summary.starts,
        summary.shared_starts,
        summary.finished,
        summary.killed,
        summary.requeues,
    ));
    out.push_str(&format!(
        "busy core-seconds:   replay {:.1}  outcome {:.1}\n\
         shared core-seconds: replay {:.1}  outcome {:.1}\n",
        summary.busy_core_seconds,
        outcome.busy_core_seconds,
        summary.shared_core_seconds,
        outcome.shared_core_seconds,
    ));
    out.push_str(
        "\nall invariants hold: node-second conservation, SMT capacity, \
         share eligibility and pair compatibility, walltime enforcement, \
         submit-before-start ordering, backfill queue-order justification, \
         record/trace agreement, completion consistency\n",
    );
    if let Some(path) = trace_path {
        out.push_str(&format!("decision trace written to {path}\n"));
    }
    out
}

/// Renders per-job records as CSV for downstream analysis.
pub fn records_csv(outcome: &SimOutcome, catalog: &AppCatalog) -> String {
    let mut t = Table::new(vec![
        "job", "app", "user", "nodes", "submit", "start", "finish", "wait", "dilation", "shared",
        "killed", "restarts",
    ]);
    for r in &outcome.records {
        t.row(vec![
            r.id.0.to_string(),
            catalog
                .get(r.app)
                .map(|a| a.name.clone())
                .unwrap_or_else(|| r.app.to_string()),
            r.user.to_string(),
            r.nodes.to_string(),
            format!("{:.1}", r.submit),
            format!("{:.1}", r.start),
            format!("{:.1}", r.finish),
            format!("{:.1}", r.wait()),
            format!("{:.4}", r.dilation()),
            r.shared_alloc.to_string(),
            r.killed.to_string(),
            r.restarts.to_string(),
        ]);
    }
    t.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodeshare_cluster::{ClusterSpec, NodeSpec};
    use nodeshare_core::{Backfill, Pairing, PairingPolicy};
    use nodeshare_engine::{run, SimConfig};
    use nodeshare_perf::{CoRunTruth, ContentionModel, Predictor};
    use nodeshare_workload::WorkloadSpec;

    #[test]
    fn report_renders_all_sections() {
        let catalog = AppCatalog::trinity();
        let model = ContentionModel::calibrated();
        let truth = CoRunTruth::build(&catalog, &model);
        let spec = ClusterSpec::new(16, NodeSpec::trinity_like());
        let mut wl = WorkloadSpec::evaluation(&catalog, 3);
        wl.n_jobs = 40;
        wl.sizes = nodeshare_workload::SizeDist::Uniform { min: 1, max: 8 };
        let workload = wl.generate(&catalog);
        let pairing = Pairing::new(
            PairingPolicy::default_threshold(),
            Predictor::class_based(&catalog, &model),
        );
        let out = run(
            &workload,
            &truth,
            &mut Backfill::co(pairing),
            &SimConfig::new(spec),
        );
        let report = render(&out, &spec, &catalog);
        assert!(report.contains("co-backfill"));
        assert!(report.contains("computational efficiency"));
        assert!(report.contains("per-application outcomes"));
        assert!(report.contains("miniFE") || report.contains("AMG"));

        let csv = records_csv(&out, &catalog);
        assert_eq!(csv.lines().count(), 41, "header + 40 jobs");
        assert!(csv.starts_with("job,app,user"));
    }
}
