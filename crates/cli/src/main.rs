//! The `nodeshare` binary: thin wrapper over [`nodeshare_cli::run_cli`].

fn main() {
    match nodeshare_cli::run_cli(std::env::args().skip(1)) {
        Ok(text) => println!("{text}"),
        Err(e) => {
            eprintln!("nodeshare: {e}");
            std::process::exit(1);
        }
    }
}
