#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! The `nodeshare` binary: thin wrapper over [`nodeshare_cli::run_cli`].

fn main() {
    match nodeshare_cli::run_cli(std::env::args().skip(1)) {
        Ok(text) => println!("{text}"),
        Err(e) => {
            nodeshare_obs::error!("cli", "nodeshare failed"; error = e);
            std::process::exit(1);
        }
    }
}
