#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! # nodeshare-cli
//!
//! The `nodeshare` command-line tool: simulate campaigns, generate and
//! replay SWF workloads, and inspect the co-run structure — all of it
//! driving the library crates, nothing bespoke.
//!
//! ```text
//! nodeshare simulate --jobs 500 --seed 42 --strategy co-backfill
//! nodeshare simulate --swf trace.swf --conf slurm.conf --strategy easy
//! nodeshare simulate --telemetry run.jsonl --log-level debug
//! nodeshare metrics --jobs 200 --strategy co-backfill
//! nodeshare workload --jobs 1000 --seed 1 --out campaign.swf
//! nodeshare pairs
//! nodeshare apps
//! ```

pub mod args;
pub mod report;

use args::{ArgError, Invocation};
use nodeshare_cluster::ClusterSpec;
use nodeshare_core::{PairingPolicy, PredictorKind, StrategyConfig, StrategyKind};
use nodeshare_engine::{FailureModel, SimConfig};
use nodeshare_perf::{AppCatalog, CoRunTruth, ContentionModel, PairMatrix, Resource};
use nodeshare_slurm::SlurmConf;
use nodeshare_workload::{
    ctrace, source::collect_source, swf, ArrivalProcess, JobSource, Preset, Workload, WorkloadStats,
};

/// Top-level CLI error.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments.
    Args(ArgError),
    /// I/O failure (file given on the command line).
    Io(String, std::io::Error),
    /// Anything else with a user-facing message.
    Other(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Io(path, e) => write!(f, "{path}: {e}"),
            CliError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

/// Adapter making `Box<dyn Scheduler>` usable where an `S: Scheduler` is
/// needed (the learning wrapper is generic).
struct BoxedScheduler(Box<dyn nodeshare_engine::Scheduler>);

impl nodeshare_engine::Scheduler for BoxedScheduler {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn schedule(
        &mut self,
        ctx: &nodeshare_engine::SchedContext<'_>,
    ) -> Vec<nodeshare_engine::Decision> {
        self.0.schedule(ctx)
    }
    fn explain(
        &self,
        ctx: &nodeshare_engine::SchedContext<'_>,
        decision: &nodeshare_engine::Decision,
    ) -> nodeshare_engine::StartReason {
        self.0.explain(ctx, decision)
    }
    fn explain_all(
        &self,
        ctx: &nodeshare_engine::SchedContext<'_>,
        decisions: &[nodeshare_engine::Decision],
    ) -> Vec<nodeshare_engine::StartReason> {
        self.0.explain_all(ctx, decisions)
    }
}

/// Usage text.
pub const USAGE: &str = "\
nodeshare — node-sharing batch-system simulator

USAGE:
  nodeshare simulate [options]     run one campaign and print a report
  nodeshare metrics [options]      run one campaign and print its Prometheus
                                   metrics exposition instead of the report
  nodeshare audit [options]        run a campaign under the replay auditor
  nodeshare report TRACE.json      derive observability artifacts from a
                                   decision trace (see `audit --trace`)
  nodeshare workload [options]     generate a synthetic campaign as SWF
  nodeshare pairs                  print the co-run pair matrix
  nodeshare apps                   print the mini-app characterization
  nodeshare lint [--root DIR]      run the determinism & hygiene lint
                                   (rules D1-D5, see DESIGN.md); exits
                                   nonzero when findings exist
  nodeshare help                   this text

AUDIT OPTIONS (all SIMULATE options except --telemetry, plus):
  --trace FILE       dump the decision trace as JSON

REPORT OPTIONS:
  --in FILE          the decision-trace JSON (or pass it positionally)
  --perfetto FILE    Perfetto/Chrome trace output (default FILE.perfetto.json,
                     load at https://ui.perfetto.dev)
  --md FILE          markdown summary output     (default FILE.report.md)
  --cores N          machine core count, enables the utilization line
  --title T          report heading

TELEMETRY OPTIONS (simulate and metrics):
  --telemetry FILE   write sim-time JSONL samples to FILE and the
                     Prometheus exposition to FILE.prom
  --sample-interval S  sampling period in simulated seconds (default 300)
  --log-level SPEC   structured-log filter, e.g. `debug` or
                     `warn,engine=debug` (overrides NODESHARE_LOG)

SIMULATE OPTIONS:
  --strategy S       fcfs | first-fit | easy | conservative | adaptive |
                     co-first-fit | co-backfill | co-backfill-only
                     (default co-backfill)
  --pairing P        never | any | threshold          (default threshold)
  --predictor P      oracle | nway | class | oblivious (default class)
  --conf FILE        slurm.conf-style machine description
  --nodes N          cluster size when no --conf        (default 128)
  --swf FILE         replay an SWF trace instead of generating
  --source FILE      stream jobs from a workload trace instead of
                     generating or materializing: SWF or cluster-trace
                     CSV, pulled chunk by chunk so the file never has
                     to fit in memory
  --source-format F  swf | alibaba | google  (default: inferred from the
                     extension — .swf -> swf, .csv -> alibaba)
  --materialize      load --source fully into memory up front (restores
                     the workload-stats section of the report)
  --lean             keep counters and occupancy integrals only, no
                     per-job records: bounded memory for million-job
                     streamed campaigns (simulate/metrics only;
                     incompatible with --csv)
  --jobs N           synthetic campaign size            (default 500)
  --seed S           workload seed                      (default 42)
  --preset P         evaluation | saturated | capability | capacity |
                     memory-heavy | spike               (default saturated)
  --rate R           Poisson arrivals per second (overrides the preset)
  --share-fraction F fraction of jobs opting into sharing (default 1.0)
  --malleable-fraction F  fraction of jobs carrying a width-malleability
                     contract the adaptive strategy may reshape (default 0)
  --mtbf-hours H     inject node failures with this per-node MTBF
  --checkpoint-mins M  salvage work at this checkpoint interval
  --duration-match T only pair jobs with walltime overlap ratio >= T
  --learning         learn per-user estimate corrections (Tsafrir-style)
  --csv FILE         also write per-job records as CSV

WORKLOAD OPTIONS:
  --jobs N --seed S --rate R --share-fraction F --out FILE (default stdout)
";

/// Runs the CLI and returns the text to print.
pub fn run_cli<I, S>(argv: I) -> Result<String, CliError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    // `report` takes its input positionally (`nodeshare report t.json`);
    // rewrite that one token to `--in t.json` for the flag parser.
    let mut argv: Vec<String> = argv.into_iter().map(Into::into).collect();
    if argv.first().map(String::as_str) == Some("report")
        && argv.get(1).is_some_and(|a| !a.starts_with("--"))
    {
        argv.splice(1..1, ["--in".to_string()]);
    }
    let inv = Invocation::parse(argv)?;
    match inv.command.as_str() {
        "simulate" => simulate(&inv),
        "metrics" => metrics_cmd(&inv),
        "audit" => audit_cmd(&inv),
        "report" => report_cmd(&inv),
        "workload" => workload_cmd(&inv),
        "pairs" => pairs(&inv),
        "apps" => apps(&inv),
        "lint" => lint_cmd(&inv),
        "help" | "--help" => Ok(USAGE.to_string()),
        other => Err(CliError::Other(format!(
            "unknown subcommand {other:?}; try `nodeshare help`"
        ))),
    }
}

fn parse_strategy(inv: &Invocation) -> Result<StrategyConfig, CliError> {
    let kind = match inv.get("strategy").unwrap_or("co-backfill") {
        "fcfs" => StrategyKind::Fcfs,
        "first-fit" => StrategyKind::FirstFit,
        "easy" | "easy-backfill" => StrategyKind::EasyBackfill,
        "conservative" => StrategyKind::Conservative,
        "adaptive" => StrategyKind::Adaptive,
        "co-first-fit" => StrategyKind::CoFirstFit,
        "co-backfill" => StrategyKind::CoBackfill,
        "co-backfill-only" => StrategyKind::CoBackfillOnly,
        other => return Err(CliError::Other(format!("unknown strategy {other:?}"))),
    };
    let pairing = match inv.get("pairing").unwrap_or("threshold") {
        "never" => PairingPolicy::Never,
        "any" => PairingPolicy::Any,
        "threshold" => PairingPolicy::default_threshold(),
        other => return Err(CliError::Other(format!("unknown pairing {other:?}"))),
    };
    let predictor = match inv.get("predictor").unwrap_or("class") {
        "oracle" => PredictorKind::Oracle,
        "nway" => PredictorKind::NWayOracle,
        "class" => PredictorKind::ClassBased,
        "oblivious" => PredictorKind::Oblivious,
        other => return Err(CliError::Other(format!("unknown predictor {other:?}"))),
    };
    if kind.shares() {
        Ok(StrategyConfig {
            kind,
            pairing,
            predictor,
        })
    } else {
        Ok(StrategyConfig::exclusive(kind))
    }
}

fn load_cluster(inv: &Invocation) -> Result<ClusterSpec, CliError> {
    match inv.get("conf") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| CliError::Io(path.to_string(), e))?;
            let conf = SlurmConf::parse(&text).map_err(|e| CliError::Other(e.to_string()))?;
            Ok(conf.cluster)
        }
        None => {
            let nodes: u32 = inv.num("nodes", 128)?;
            if nodes == 0 {
                return Err(CliError::Other("--nodes must be positive".into()));
            }
            Ok(ClusterSpec::new(
                nodes,
                nodeshare_cluster::NodeSpec::trinity_like(),
            ))
        }
    }
}

/// The trace dialect behind `--source`.
#[derive(Clone, Copy)]
enum SourceKind {
    Swf,
    Trace(ctrace::TraceFormat),
}

/// Resolves `--source-format`, falling back to the file extension
/// (`.swf` → SWF, `.csv` → Alibaba batch; Google digests share `.csv`
/// and must be named explicitly).
fn source_kind(inv: &Invocation, path: &str) -> Result<SourceKind, CliError> {
    if let Some(f) = inv.get("source-format") {
        if f.eq_ignore_ascii_case("swf") {
            return Ok(SourceKind::Swf);
        }
        return ctrace::TraceFormat::parse(f)
            .map(SourceKind::Trace)
            .ok_or_else(|| {
                CliError::Other(format!(
                    "unknown source format {f:?} (swf | alibaba | google)"
                ))
            });
    }
    let ext = std::path::Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("")
        .to_ascii_lowercase();
    match ext.as_str() {
        "swf" => Ok(SourceKind::Swf),
        "csv" => Ok(SourceKind::Trace(ctrace::TraceFormat::AlibabaBatch)),
        _ => Err(CliError::Other(format!(
            "cannot infer the trace dialect of {path:?}; \
             pass --source-format swf|alibaba|google"
        ))),
    }
}

/// Opens `--source` as a streaming [`JobSource`]. The box borrows the
/// catalog, so it lives within the calling command's frame.
fn open_source<'c>(
    inv: &Invocation,
    path: &str,
    catalog: &'c AppCatalog,
    cluster: &ClusterSpec,
) -> Result<Box<dyn JobSource + 'c>, CliError> {
    let kind = source_kind(inv, path)?;
    let file = std::fs::File::open(path).map_err(|e| CliError::Io(path.to_string(), e))?;
    let reader = std::io::BufReader::new(file);
    Ok(match kind {
        SourceKind::Swf => Box::new(swf::SwfSource::new(
            reader,
            catalog,
            swf::SwfImportOptions {
                cores_per_node: cluster.node.cores(),
                ..Default::default()
            },
        )),
        SourceKind::Trace(format) => Box::new(ctrace::CTraceSource::new(
            reader,
            format,
            catalog,
            ctrace::CTraceOptions {
                cores_per_node: cluster.node.cores(),
                node_mem_mib: cluster.node.mem_mib.try_into().unwrap_or(u32::MAX),
                ..Default::default()
            },
        )),
    })
}

fn build_workload(
    inv: &Invocation,
    catalog: &AppCatalog,
    cluster: &ClusterSpec,
) -> Result<Workload, CliError> {
    if inv.has("swf") && inv.has("source") {
        return Err(CliError::Other(
            "--swf and --source are mutually exclusive (both name a trace file)".into(),
        ));
    }
    if let Some(path) = inv.get("source") {
        // Only the `--materialize` paths reach here; streamed runs feed
        // the engine directly and never build a Workload.
        let mut source = open_source(inv, path, catalog, cluster)?;
        let workload =
            collect_source(source.as_mut()).map_err(|e| CliError::Other(format!("{path}: {e}")))?;
        if workload.is_empty() {
            return Err(CliError::Other(format!("{path}: no usable jobs")));
        }
        return Ok(workload);
    }
    if let Some(path) = inv.get("swf") {
        let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(path.to_string(), e))?;
        let records = swf::parse(&text).map_err(|e| CliError::Other(e.to_string()))?;
        let opts = swf::SwfImportOptions {
            cores_per_node: cluster.node.cores(),
            ..Default::default()
        };
        let (workload, skipped) = swf::to_workload(&records, catalog, &opts);
        if workload.is_empty() {
            return Err(CliError::Other(format!(
                "{path}: no usable jobs ({skipped} skipped)"
            )));
        }
        Ok(workload)
    } else {
        let preset_name = inv.get("preset").unwrap_or("saturated");
        let preset = Preset::parse(preset_name)
            .ok_or_else(|| CliError::Other(format!("unknown preset {preset_name:?}")))?;
        let mut spec = preset.spec(catalog, inv.num("seed", 42u64)?);
        spec.n_jobs = inv.num("jobs", 500usize)?;
        if inv.has("rate") {
            spec.arrival = ArrivalProcess::Poisson {
                rate: inv.num("rate", 0.0080f64)?,
            };
        }
        spec.share_fraction = inv.num("share-fraction", 1.0f64)?;
        spec.malleable_fraction = inv.num("malleable-fraction", 0.0f64)?;
        Ok(spec.generate(catalog))
    }
}

/// Options shared by `simulate` and `audit`.
const SIM_OPTIONS: &[&str] = &[
    "strategy",
    "pairing",
    "predictor",
    "conf",
    "nodes",
    "swf",
    "source",
    "source-format",
    "materialize",
    "lean",
    "jobs",
    "seed",
    "rate",
    "preset",
    "share-fraction",
    "malleable-fraction",
    "mtbf-hours",
    "checkpoint-mins",
    "duration-match",
    "learning",
    "csv",
];

/// Options accepted by the commands that can attach a telemetry layer
/// (`simulate` and `metrics`; `audit` takes only `log-level`).
const TELEMETRY_OPTIONS: &[&str] = &["telemetry", "sample-interval", "log-level"];

/// Applies `--log-level` to the global structured logger.
fn apply_log_level(inv: &Invocation) -> Result<(), CliError> {
    if let Some(spec) = inv.get("log-level") {
        if spec.is_empty() {
            return Err(CliError::Other(
                "--log-level needs a filter spec, e.g. `debug` or `warn,engine=debug`".into(),
            ));
        }
        nodeshare_obs::logger::set_filter(nodeshare_obs::Filter::parse(spec));
    }
    Ok(())
}

/// Builds the telemetry layer requested on the command line, validating
/// the sampling interval. `force` makes one even without `--telemetry`
/// (the `metrics` subcommand always samples).
fn build_telemetry(
    inv: &Invocation,
    force: bool,
) -> Result<Option<nodeshare_engine::SimTelemetry>, CliError> {
    if !force && !inv.has("telemetry") {
        if inv.has("sample-interval") {
            return Err(CliError::Other(
                "--sample-interval requires --telemetry".into(),
            ));
        }
        return Ok(None);
    }
    let interval: f64 = inv.num("sample-interval", 300.0)?;
    if !interval.is_finite() || interval <= 0.0 {
        return Err(CliError::Other(
            "--sample-interval must be a positive number of seconds".into(),
        ));
    }
    Ok(Some(nodeshare_engine::SimTelemetry::new(interval)))
}

/// Writes the JSONL sample stream to `path` and the Prometheus
/// exposition next to it, returning a one-line note for the report.
fn write_telemetry(
    telemetry: &nodeshare_engine::SimTelemetry,
    path: &str,
) -> Result<String, CliError> {
    if path.is_empty() {
        return Err(CliError::Other("--telemetry needs a file path".into()));
    }
    std::fs::write(path, telemetry.jsonl()).map_err(|e| CliError::Io(path.to_string(), e))?;
    let prom = format!("{path}.prom");
    std::fs::write(&prom, telemetry.prometheus()).map_err(|e| CliError::Io(prom.clone(), e))?;
    Ok(format!(
        "telemetry: {} samples -> {path}; exposition -> {prom}",
        telemetry.samples().len()
    ))
}

/// Everything one campaign run needs except the workload itself —
/// streamed runs stop here and feed the engine from a [`JobSource`].
struct Env {
    catalog: AppCatalog,
    truth: CoRunTruth,
    cluster: ClusterSpec,
    config: SimConfig,
    sched: Box<dyn nodeshare_engine::Scheduler>,
}

/// Everything one materialized campaign run needs.
struct Prepared {
    env: Env,
    workload: Workload,
}

fn prepare(inv: &Invocation) -> Result<Prepared, CliError> {
    let env = prepare_env(inv)?;
    let workload = build_workload(inv, &env.catalog, &env.cluster)?;
    Ok(Prepared { env, workload })
}

fn prepare_env(inv: &Invocation) -> Result<Env, CliError> {
    let catalog = AppCatalog::trinity();
    let model = ContentionModel::calibrated();
    let truth = CoRunTruth::build(&catalog, &model);
    let cluster = load_cluster(inv)?;
    let strategy = parse_strategy(inv)?;

    let mut config = SimConfig::new(cluster);
    if inv.has("lean") {
        if inv.has("csv") {
            return Err(CliError::Other(
                "--lean keeps no per-job records, so --csv has nothing to write".into(),
            ));
        }
        config.retain_detail = false;
        // Lean runs cannot be replay-audited (the auditor needs the
        // records); drop the implicit debug-build audit too.
        config.audit = false;
    }
    let mtbf_h: f64 = inv.num("mtbf-hours", 0.0)?;
    if mtbf_h > 0.0 {
        config.failures = Some(FailureModel {
            mtbf_per_node: mtbf_h * 3_600.0,
            repair_time: 1_800.0,
            seed: inv.num("seed", 42u64)? ^ 0xfa11,
        });
    }
    let ckpt_min: f64 = inv.num("checkpoint-mins", 0.0)?;
    if ckpt_min > 0.0 {
        config.checkpoint_interval = Some(ckpt_min * 60.0);
    }

    // Build the scheduler, layering optional refinements.
    let mut sched: Box<dyn nodeshare_engine::Scheduler> = if strategy.kind.shares() {
        let mut pairing = nodeshare_core::Pairing::new(
            strategy.pairing,
            strategy.predictor.build(&catalog, &model),
        );
        let theta: f64 = inv.num("duration-match", 0.0)?;
        if theta > 0.0 {
            pairing = pairing.with_duration_match(theta);
        }
        match strategy.kind {
            StrategyKind::CoFirstFit => Box::new(nodeshare_core::FirstFit::sharing(pairing)),
            StrategyKind::CoBackfillOnly => {
                Box::new(nodeshare_core::Backfill::co_backfill_only(pairing))
            }
            _ => Box::new(nodeshare_core::Backfill::co(pairing)),
        }
    } else {
        strategy.build(&catalog, &model)
    };
    if inv.has("learning") {
        // Wrap whatever we built; the learner is policy-agnostic.
        sched = Box::new(nodeshare_core::EstimateLearning::new(
            BoxedScheduler(sched),
            0.9,
            3,
        ));
    }
    Ok(Env {
        catalog,
        truth,
        cluster,
        config,
        sched,
    })
}

/// The compact per-run summary a lean campaign gets instead of the full
/// per-job report.
fn lean_summary(out: &nodeshare_engine::SimOutcome) -> String {
    format!(
        "lean run (per-job records not retained)\n\
         completed jobs:    {}\n\
         rejected jobs:     {}\n\
         makespan:          {:.0} s\n\
         peak queue depth:  {:.0}\n\
         busy core-seconds: {:.0} ({:.0} shared)",
        out.completed_jobs,
        out.rejected.len(),
        out.end_time,
        out.peak_queue_depth,
        out.busy_core_seconds,
        out.shared_core_seconds,
    )
}

fn simulate(inv: &Invocation) -> Result<String, CliError> {
    let known: Vec<&str> = [SIM_OPTIONS, TELEMETRY_OPTIONS].concat();
    inv.check_known(&known)?;
    apply_log_level(inv)?;
    let telemetry = build_telemetry(inv, false)?;
    // `--source` without `--materialize` streams the trace through the
    // engine chunk by chunk; everything else goes the materialized way.
    let streamed_path = inv.get("source").filter(|_| !inv.has("materialize"));
    // detlint: allow(D2, wall time feeds the human-facing timing banner only, never the compared artifacts)
    let started = std::time::Instant::now();
    let (env, out, workload_section) = if let Some(path) = streamed_path {
        let mut env = prepare_env(inv)?;
        let mut source = open_source(inv, path, &env.catalog, &env.cluster)?;
        let out = match telemetry.as_ref() {
            Some(t) => nodeshare_engine::run_streamed_with_telemetry(
                source.as_mut(),
                &env.truth,
                env.sched.as_mut(),
                &env.config,
                t,
            ),
            None => nodeshare_engine::run_streamed(
                source.as_mut(),
                &env.truth,
                env.sched.as_mut(),
                &env.config,
            ),
        };
        drop(source);
        let section = format!("workload: streamed from {path}");
        (env, out, section)
    } else {
        let mut p = prepare(inv)?;
        let out = match telemetry.as_ref() {
            Some(t) => nodeshare_engine::run_with_telemetry(
                &p.workload,
                &p.env.truth,
                p.env.sched.as_mut(),
                &p.env.config,
                t,
            ),
            None => nodeshare_engine::run(
                &p.workload,
                &p.env.truth,
                p.env.sched.as_mut(),
                &p.env.config,
            ),
        };
        let section = format!(
            "workload:\n{}",
            WorkloadStats::of(&p.workload).report(Some(&p.env.catalog))
        );
        (p.env, out, section)
    };
    let wall = started.elapsed().as_secs_f64();
    if !out.complete() {
        return Err(CliError::Other(format!(
            "{} jobs could never be scheduled on this cluster (first: {:?})",
            out.unscheduled.len(),
            out.unscheduled.first()
        )));
    }
    if let Some(path) = inv.get("csv") {
        std::fs::write(path, report::records_csv(&out, &env.catalog))
            .map_err(|e| CliError::Io(path.to_string(), e))?;
    }
    let mut tail = String::new();
    if let (Some(t), Some(path)) = (telemetry.as_ref(), inv.get("telemetry")) {
        tail = format!("\n{}", write_telemetry(t, path)?);
    }
    let body = if env.config.retain_detail {
        report::render(&out, &env.cluster, &env.catalog)
    } else {
        lean_summary(&out)
    };
    Ok(format!(
        "{workload_section}\n{body}\nsimulated {} events in {:.3} s wall time ({:.0} events/s){tail}",
        out.events_processed,
        wall,
        out.events_processed as f64 / wall.max(1e-9),
    ))
}

/// `nodeshare metrics`: run the campaign with telemetry always on and
/// print the Prometheus exposition instead of the human report.
fn metrics_cmd(inv: &Invocation) -> Result<String, CliError> {
    let known: Vec<&str> = [SIM_OPTIONS, TELEMETRY_OPTIONS].concat();
    inv.check_known(&known)?;
    apply_log_level(inv)?;
    let telemetry = build_telemetry(inv, true)?.expect("forced telemetry");
    let streamed_path = inv.get("source").filter(|_| !inv.has("materialize"));
    let (env, out) = if let Some(path) = streamed_path {
        let mut env = prepare_env(inv)?;
        let mut source = open_source(inv, path, &env.catalog, &env.cluster)?;
        let out = nodeshare_engine::run_streamed_with_telemetry(
            source.as_mut(),
            &env.truth,
            env.sched.as_mut(),
            &env.config,
            &telemetry,
        );
        drop(source);
        (env, out)
    } else {
        let mut p = prepare(inv)?;
        let out = nodeshare_engine::run_with_telemetry(
            &p.workload,
            &p.env.truth,
            p.env.sched.as_mut(),
            &p.env.config,
            &telemetry,
        );
        (p.env, out)
    };
    if !out.complete() {
        return Err(CliError::Other(format!(
            "{} jobs could never be scheduled on this cluster (first: {:?})",
            out.unscheduled.len(),
            out.unscheduled.first()
        )));
    }
    if let Some(path) = inv.get("csv") {
        std::fs::write(path, report::records_csv(&out, &env.catalog))
            .map_err(|e| CliError::Io(path.to_string(), e))?;
    }
    if let Some(path) = inv.get("telemetry") {
        write_telemetry(&telemetry, path)?;
    }
    Ok(telemetry.prometheus())
}

fn audit_cmd(inv: &Invocation) -> Result<String, CliError> {
    let mut known: Vec<&str> = SIM_OPTIONS.to_vec();
    known.push("trace");
    known.push("log-level");
    inv.check_known(&known)?;
    apply_log_level(inv)?;
    if inv.has("lean") {
        return Err(CliError::Other(
            "--lean drops the per-job records the replay auditor verifies; \
             audit runs need full detail"
                .into(),
        ));
    }
    let streamed_path = inv.get("source").filter(|_| !inv.has("materialize"));
    // The auditor runs explicitly below, with the stricter queue-order
    // check on; disable the engine's own implicit audit-and-panic.
    let (env, out, trace) = if let Some(path) = streamed_path {
        let mut env = prepare_env(inv)?;
        env.config.audit = false;
        let mut source = open_source(inv, path, &env.catalog, &env.cluster)?;
        let (out, trace) = nodeshare_engine::run_streamed_traced(
            source.as_mut(),
            &env.truth,
            env.sched.as_mut(),
            &env.config,
        );
        drop(source);
        (env, out, trace)
    } else {
        let mut p = prepare(inv)?;
        p.env.config.audit = false;
        let (out, trace) = nodeshare_engine::run_traced(
            &p.workload,
            &p.env.truth,
            p.env.sched.as_mut(),
            &p.env.config,
        );
        (p.env, out, trace)
    };
    if let Some(path) = inv.get("trace") {
        std::fs::write(path, trace.to_json()).map_err(|e| CliError::Io(path.to_string(), e))?;
    }
    if let Some(path) = inv.get("csv") {
        std::fs::write(path, report::records_csv(&out, &env.catalog))
            .map_err(|e| CliError::Io(path.to_string(), e))?;
    }
    let verdict = nodeshare_engine::Auditor::new(&env.truth, &env.config)
        .with_queue_order_check()
        .audit(&trace, &out);
    match verdict {
        Ok(summary) => Ok(report::audit_report(&out, &summary, inv.get("trace"))),
        Err(violations) => {
            let mut msg = format!(
                "audit of {} FAILED with {} violation(s):",
                out.scheduler,
                violations.len()
            );
            for v in &violations {
                msg.push_str("\n  ");
                msg.push_str(&v.to_string());
            }
            Err(CliError::Other(msg))
        }
    }
}

/// `nodeshare report`: turn a decision-trace JSON file into a Perfetto
/// trace and a markdown summary.
fn report_cmd(inv: &Invocation) -> Result<String, CliError> {
    inv.check_known(&["in", "perfetto", "md", "cores", "title"])?;
    let input = inv.get("in").filter(|p| !p.is_empty()).ok_or_else(|| {
        CliError::Other(
            "report needs a trace file: `nodeshare report trace.json` \
             (produce one with `nodeshare audit --trace trace.json`)"
                .into(),
        )
    })?;
    let text = std::fs::read_to_string(input).map_err(|e| CliError::Io(input.to_string(), e))?;

    let cores: u64 = inv.num("cores", 0)?;
    let opts = nodeshare_report::ReportOptions {
        title: Some(
            inv.get("title")
                .map(str::to_string)
                .unwrap_or_else(|| format!("nodeshare run report: {input}")),
        ),
        total_cores: (cores > 0).then_some(cores),
    };
    let rep = nodeshare_report::Report::from_json(&text, &opts)
        .map_err(|e| CliError::Other(format!("{input}: {e}")))?;

    let perfetto_path = inv
        .get("perfetto")
        .map(str::to_string)
        .unwrap_or_else(|| format!("{input}.perfetto.json"));
    let md_path = inv
        .get("md")
        .map(str::to_string)
        .unwrap_or_else(|| format!("{input}.report.md"));
    std::fs::write(&perfetto_path, &rep.perfetto_json)
        .map_err(|e| CliError::Io(perfetto_path.clone(), e))?;
    std::fs::write(&md_path, &rep.markdown).map_err(|e| CliError::Io(md_path.clone(), e))?;

    Ok(format!(
        "{}\nperfetto trace -> {perfetto_path} (open at https://ui.perfetto.dev)\n\
         markdown summary -> {md_path}\n",
        rep.markdown.trim_end(),
    ))
}

fn workload_cmd(inv: &Invocation) -> Result<String, CliError> {
    inv.check_known(&[
        "jobs",
        "seed",
        "rate",
        "preset",
        "share-fraction",
        "malleable-fraction",
        "out",
    ])?;
    let catalog = AppCatalog::trinity();
    let preset_name = inv.get("preset").unwrap_or("saturated");
    let preset = Preset::parse(preset_name)
        .ok_or_else(|| CliError::Other(format!("unknown preset {preset_name:?}")))?;
    let mut spec = preset.spec(&catalog, inv.num("seed", 42u64)?);
    spec.n_jobs = inv.num("jobs", 1000usize)?;
    if inv.has("rate") {
        spec.arrival = ArrivalProcess::Poisson {
            rate: inv.num("rate", 0.0080f64)?,
        };
    }
    spec.share_fraction = inv.num("share-fraction", 1.0f64)?;
    spec.malleable_fraction = inv.num("malleable-fraction", 0.0f64)?;
    let workload = spec.generate(&catalog);
    let cores = nodeshare_cluster::NodeSpec::trinity_like().cores();
    let text = swf::write(&workload, cores);
    match inv.get("out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| CliError::Io(path.to_string(), e))?;
            Ok(format!(
                "wrote {} jobs to {path}\n{}",
                workload.len(),
                WorkloadStats::of(&workload).report(Some(&catalog))
            ))
        }
        None => Ok(text),
    }
}

fn pairs(inv: &Invocation) -> Result<String, CliError> {
    inv.check_known(&[])?;
    let catalog = AppCatalog::trinity();
    let matrix = PairMatrix::build(&catalog, &ContentionModel::calibrated());
    let mut out = String::from("combined co-run throughput (row + column on one node):\n\n");
    out.push_str(&format!("{:>10}", ""));
    for b in catalog.iter() {
        out.push_str(&format!("{:>10}", b.name));
    }
    out.push('\n');
    for a in catalog.iter() {
        out.push_str(&format!("{:>10}", a.name));
        for b in catalog.iter() {
            out.push_str(&format!("{:>10.2}", matrix.combined_throughput(a.id, b.id)));
        }
        out.push('\n');
    }
    Ok(out)
}

fn apps(inv: &Invocation) -> Result<String, CliError> {
    inv.check_known(&[])?;
    let catalog = AppCatalog::trinity();
    let model = ContentionModel::calibrated();
    let mut t = nodeshare_metrics::Table::new(vec![
        "app", "class", "issue", "membw", "llc", "net", "mem/node", "smt-self",
    ]);
    for app in catalog.iter() {
        t.row(vec![
            app.name.clone(),
            app.class.label().to_string(),
            format!("{:.2}", app.demand.get(Resource::IssueSlots)),
            format!("{:.2}", app.demand.get(Resource::MemBandwidth)),
            format!("{:.2}", app.demand.get(Resource::LlcCapacity)),
            format!("{:.2}", app.demand.get(Resource::Network)),
            format!("{} GiB", app.mem_per_node_mib / 1024),
            format!("{:.2}x", model.smt_self_speedup(&app.demand)),
        ]);
    }
    Ok(t.render())
}

/// `nodeshare lint`: the determinism & hygiene gate (DESIGN.md,
/// "Determinism contract"), same engine as `cargo run -p detlint`.
/// Clean → the report text; findings → an error, so the binary exits
/// nonzero and the command composes into shell gates.
fn lint_cmd(inv: &Invocation) -> Result<String, CliError> {
    inv.check_known(&["root"])?;
    let start = match inv.get("root") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::current_dir().map_err(|e| CliError::Io(".".into(), e))?,
    };
    let root = detlint::find_root(&start).ok_or_else(|| {
        CliError::Other(format!(
            "no detlint.toml found at or above {}",
            start.display()
        ))
    })?;
    let cfg = detlint::load_config(&root).map_err(CliError::Other)?;
    let report = detlint::scan_workspace(&root, &cfg).map_err(CliError::Other)?;
    let rendered = detlint::render_report(&report).trim_end().to_string();
    if report.findings.is_empty() {
        Ok(rendered)
    } else {
        Err(CliError::Other(rendered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_and_unknown_commands() {
        assert!(run_cli(["help"]).unwrap().contains("USAGE"));
        assert!(run_cli(["frobnicate"]).is_err());
        assert!(run_cli(Vec::<String>::new()).is_err());
    }

    #[test]
    fn lint_runs_clean_on_this_workspace() {
        let out = run_cli(["lint", "--root", env!("CARGO_MANIFEST_DIR")]).unwrap();
        assert!(out.contains("detlint: clean"), "{out}");
        assert!(out.contains("D1/D2/D3/D4/D5"), "{out}");
        // A start dir with no detlint.toml above it is a clean error.
        assert!(run_cli(["lint", "--root", "/"]).is_err());
    }

    #[test]
    fn simulate_small_campaign_end_to_end() {
        let out = run_cli([
            "simulate",
            "--jobs",
            "60",
            "--seed",
            "7",
            "--nodes",
            "32",
            "--rate",
            "0.02",
            "--strategy",
            "co-backfill",
        ])
        .unwrap();
        assert!(out.contains("nodeshare report: co-backfill"));
        assert!(out.contains("computational efficiency"));
        assert!(out.contains("jobs 60"));
        assert!(out.contains("events/s"), "summary reports throughput");
    }

    #[test]
    fn simulate_rejects_bad_options() {
        assert!(run_cli(["simulate", "--strategy", "magic"]).is_err());
        assert!(run_cli(["simulate", "--pairing", "sometimes"]).is_err());
        assert!(run_cli(["simulate", "--predictor", "psychic"]).is_err());
        assert!(run_cli(["simulate", "--bogus", "1"]).is_err());
        assert!(run_cli(["simulate", "--nodes", "0"]).is_err());
        assert!(run_cli(["simulate", "--jobs", "NaNcy"]).is_err());
    }

    #[test]
    fn exclusive_strategies_ignore_pairing_flags() {
        let out = run_cli([
            "simulate",
            "--jobs",
            "30",
            "--nodes",
            "32",
            "--strategy",
            "easy",
            "--pairing",
            "any",
        ])
        .unwrap();
        assert!(out.contains("easy-backfill"));
        assert!(out.contains("shared node-time 0.0%"));
    }

    #[test]
    fn workload_roundtrips_through_simulate() {
        let dir = std::env::temp_dir().join("nodeshare_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.swf");
        let path_str = path.to_str().unwrap();
        let out = run_cli(["workload", "--jobs", "40", "--seed", "3", "--out", path_str]).unwrap();
        assert!(out.contains("wrote 40 jobs"));
        let out = run_cli([
            "simulate",
            "--swf",
            path_str,
            "--nodes",
            "64",
            "--strategy",
            "first-fit",
        ])
        .unwrap();
        assert!(out.contains("first-fit"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn streamed_source_matches_materialized_byte_for_byte() {
        let dir = std::env::temp_dir().join("nodeshare_cli_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let swf_path = dir.join("campaign.swf");
        let swf_str = swf_path.to_str().unwrap();
        run_cli(["workload", "--jobs", "60", "--seed", "9", "--out", swf_str]).unwrap();
        let streamed_csv = dir.join("streamed.csv");
        let materialized_csv = dir.join("materialized.csv");
        let swf_csv = dir.join("swf.csv");
        let base = ["--nodes", "64", "--strategy", "easy"];
        let out = run_cli(
            [
                "simulate",
                "--source",
                swf_str,
                "--csv",
                streamed_csv.to_str().unwrap(),
            ]
            .into_iter()
            .chain(base)
            .map(str::to_string)
            .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(out.contains(&format!("streamed from {swf_str}")));
        run_cli(
            [
                "simulate",
                "--source",
                swf_str,
                "--materialize",
                "--csv",
                materialized_csv.to_str().unwrap(),
            ]
            .into_iter()
            .chain(base)
            .map(str::to_string)
            .collect::<Vec<_>>(),
        )
        .unwrap();
        run_cli(
            [
                "simulate",
                "--swf",
                swf_str,
                "--csv",
                swf_csv.to_str().unwrap(),
            ]
            .into_iter()
            .chain(base)
            .map(str::to_string)
            .collect::<Vec<_>>(),
        )
        .unwrap();
        let streamed = std::fs::read_to_string(&streamed_csv).unwrap();
        let materialized = std::fs::read_to_string(&materialized_csv).unwrap();
        let via_swf = std::fs::read_to_string(&swf_csv).unwrap();
        assert_eq!(streamed, materialized, "streamed != materialized records");
        assert_eq!(streamed, via_swf, "--source swf != legacy --swf records");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lean_simulate_prints_counts_not_records() {
        let out = run_cli([
            "simulate", "--jobs", "50", "--seed", "7", "--nodes", "32", "--rate", "0.02", "--lean",
        ])
        .unwrap();
        assert!(out.contains("lean run"), "got: {out}");
        assert!(out.contains("completed jobs:    50"), "got: {out}");
        assert!(out.contains("events/s"));
        assert!(
            !out.contains("computational efficiency"),
            "lean runs keep no records, so there is no per-job report"
        );
    }

    #[test]
    fn lean_and_source_flags_validate() {
        // No records -> nothing for --csv to write.
        assert!(run_cli(["simulate", "--jobs", "10", "--lean", "--csv", "/tmp/x.csv"]).is_err());
        // The auditor replays per-job records; lean has none.
        assert!(run_cli(["audit", "--jobs", "10", "--lean"]).is_err());
        // Two trace files is ambiguous.
        assert!(run_cli(["simulate", "--swf", "a.swf", "--source", "b.swf"]).is_err());
        // Unknown dialect name, and an extension nothing can be inferred from.
        assert!(run_cli(["simulate", "--source", "t.csv", "--source-format", "borg"]).is_err());
        assert!(run_cli(["simulate", "--source", "trace.dat"]).is_err());
    }

    #[test]
    fn audit_streams_a_source_trace() {
        let dir = std::env::temp_dir().join("nodeshare_cli_audit_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let swf_path = dir.join("campaign.swf");
        let swf_str = swf_path.to_str().unwrap();
        run_cli(["workload", "--jobs", "40", "--seed", "4", "--out", swf_str]).unwrap();
        let out = run_cli([
            "audit",
            "--source",
            swf_str,
            "--nodes",
            "64",
            "--strategy",
            "co-backfill",
        ])
        .unwrap();
        assert!(out.contains("all invariants hold"), "got: {out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pairs_and_apps_render() {
        let p = run_cli(["pairs"]).unwrap();
        assert!(p.contains("miniDFT"));
        let a = run_cli(["apps"]).unwrap();
        assert!(a.contains("smt-self"));
        // Extra flags are rejected.
        assert!(run_cli(["pairs", "--x", "1"]).is_err());
    }

    #[test]
    fn audit_subcommand_verifies_a_campaign() {
        let dir = std::env::temp_dir().join("nodeshare_cli_audit_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.json");
        let trace_str = trace.to_str().unwrap();
        let out = run_cli([
            "audit",
            "--jobs",
            "50",
            "--seed",
            "5",
            "--nodes",
            "32",
            "--rate",
            "0.02",
            "--strategy",
            "co-backfill",
            "--trace",
            trace_str,
        ])
        .unwrap();
        assert!(out.contains("nodeshare audit: co-backfill"));
        assert!(out.contains("all invariants hold"));
        assert!(out.contains(trace_str));
        let json = std::fs::read_to_string(&trace).unwrap();
        assert!(json.starts_with("{\"events\":["));
        assert!(json.contains("\"type\":\"started\""));
        std::fs::remove_file(trace).ok();

        // Exclusive strategies audit cleanly too, with zero shared starts.
        let out = run_cli([
            "audit",
            "--jobs",
            "30",
            "--nodes",
            "32",
            "--strategy",
            "fcfs",
        ])
        .unwrap();
        assert!(out.contains("(0 shared)"));
    }

    #[test]
    fn report_subcommand_turns_a_trace_into_artifacts() {
        let dir = std::env::temp_dir().join("nodeshare_cli_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.json");
        let trace_str = trace.to_str().unwrap();
        run_cli([
            "audit",
            "--jobs",
            "40",
            "--seed",
            "5",
            "--nodes",
            "32",
            "--rate",
            "0.02",
            "--strategy",
            "co-backfill",
            "--trace",
            trace_str,
        ])
        .unwrap();

        // Positional input form, default output paths.
        let out = run_cli(["report", trace_str, "--cores", "1024"]).unwrap();
        assert!(out.contains("## Queue waits"), "{out}");
        assert!(out.contains("utilization over makespan (1024 cores)"));
        assert!(out.contains("ui.perfetto.dev"));
        let perfetto = std::fs::read_to_string(format!("{trace_str}.perfetto.json")).unwrap();
        assert!(perfetto.starts_with("{\"traceEvents\":["));
        assert!(perfetto.contains("\"ph\":\"X\""));
        let md = std::fs::read_to_string(format!("{trace_str}.report.md")).unwrap();
        assert!(md.contains("## Start attribution"));

        // Explicit flags override the defaults.
        let p2 = dir.join("out.perfetto.json");
        let m2 = dir.join("out.md");
        run_cli([
            "report",
            "--in",
            trace_str,
            "--perfetto",
            p2.to_str().unwrap(),
            "--md",
            m2.to_str().unwrap(),
            "--title",
            "my cell",
        ])
        .unwrap();
        assert!(std::fs::read_to_string(&m2)
            .unwrap()
            .starts_with("# my cell"));
        assert!(p2.exists());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_subcommand_validates_input() {
        // No input file.
        assert!(run_cli(["report"]).is_err());
        // Missing file is an I/O error.
        assert!(matches!(
            run_cli(["report", "/nonexistent/trace.json"]),
            Err(CliError::Io(..))
        ));
        // Malformed trace JSON is a clean error, not a panic.
        let dir = std::env::temp_dir().join("nodeshare_cli_report_bad_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{\"not\":\"a trace\"}").unwrap();
        let err = run_cli(["report", bad.to_str().unwrap()]).unwrap_err();
        assert!(err.to_string().contains("events"), "{err}");
        // Unknown flags are rejected.
        assert!(run_cli(["report", "--in", "x", "--bogus", "1"]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn telemetry_flag_writes_jsonl_and_prometheus() {
        let dir = std::env::temp_dir().join("nodeshare_cli_telemetry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("samples.jsonl");
        let path_str = path.to_str().unwrap();
        let out = run_cli([
            "simulate",
            "--jobs",
            "60",
            "--seed",
            "7",
            "--nodes",
            "32",
            "--rate",
            "0.02",
            "--telemetry",
            path_str,
            "--sample-interval",
            "200",
        ])
        .unwrap();
        assert!(out.contains("telemetry:"), "report should note the files");
        let jsonl = std::fs::read_to_string(&path).unwrap();
        assert!(
            jsonl.lines().count() >= 20,
            "expected a dense stream, got {} lines",
            jsonl.lines().count()
        );
        assert!(jsonl.lines().all(|l| l.starts_with("{\"t\":")));
        let prom_path = format!("{path_str}.prom");
        let prom = std::fs::read_to_string(&prom_path).unwrap();
        assert!(prom.contains("# TYPE sched_decisions_total counter"));
        assert!(prom.contains("# TYPE sim_nodes_occupied gauge"));
        std::fs::remove_file(path).ok();
        std::fs::remove_file(prom_path).ok();
    }

    #[test]
    fn metrics_subcommand_prints_exposition() {
        let out = run_cli([
            "metrics", "--jobs", "40", "--seed", "3", "--nodes", "32", "--rate", "0.02",
        ])
        .unwrap();
        assert!(out.contains("# TYPE sched_decisions_total counter"));
        assert!(out.contains("# TYPE sim_queue_depth gauge"));
        assert!(out.contains("# TYPE sched_backfill_scan_depth histogram"));
        assert!(out.contains("sim_strategy_info{strategy=\"co-backfill\"} 1"));
    }

    #[test]
    fn telemetry_options_are_validated() {
        // Non-positive or malformed sampling intervals are rejected.
        let err = run_cli([
            "simulate",
            "--telemetry",
            "/tmp/x",
            "--sample-interval",
            "0",
        ]);
        assert!(err.is_err());
        let err = run_cli([
            "simulate",
            "--telemetry",
            "/tmp/x",
            "--sample-interval",
            "soon",
        ]);
        assert!(err.is_err());
        // --sample-interval without --telemetry is an error, not a no-op.
        assert!(run_cli(["simulate", "--jobs", "5", "--sample-interval", "60"]).is_err());
        // audit does not take the telemetry flags.
        assert!(run_cli(["audit", "--jobs", "5", "--telemetry", "/tmp/x"]).is_err());
        // An empty log-level spec is rejected before it can silence output.
        assert!(run_cli(["simulate", "--jobs", "5", "--log-level", "--seed", "1"]).is_err());
    }

    #[test]
    fn missing_files_error_cleanly() {
        let err = run_cli(["simulate", "--swf", "/nonexistent/trace.swf"]).unwrap_err();
        assert!(matches!(err, CliError::Io(..)));
        let err = run_cli(["simulate", "--conf", "/nonexistent/slurm.conf"]).unwrap_err();
        assert!(matches!(err, CliError::Io(..)));
    }
}

#[cfg(test)]
mod refinement_tests {
    use super::*;

    #[test]
    fn learning_and_duration_match_flags_work() {
        let out = run_cli([
            "simulate",
            "--jobs",
            "50",
            "--nodes",
            "32",
            "--rate",
            "0.03",
            "--strategy",
            "co-backfill",
            "--duration-match",
            "0.5",
            "--learning",
        ])
        .unwrap();
        assert!(out.contains("co-backfill"));
        let out = run_cli([
            "simulate",
            "--jobs",
            "30",
            "--nodes",
            "32",
            "--strategy",
            "co-first-fit",
            "--duration-match",
            "0.3",
        ])
        .unwrap();
        assert!(out.contains("co-first-fit"));
    }
}
