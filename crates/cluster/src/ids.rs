//! Strongly-typed identifiers shared across the nodeshare workspace.
//!
//! These are defined in the `cluster` crate (the dependency-graph leaf) so
//! that every other crate can refer to the same job/node identity without
//! circular dependencies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a batch job, unique within one simulation / batch system.
///
/// Job ids are assigned monotonically at submission time, so ordering by
/// `JobId` is submission order — several scheduling policies rely on this.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl JobId {
    /// Returns the raw numeric id.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

impl fmt::Debug for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JobId({})", self.0)
    }
}

/// Identifier of a compute node within a cluster (dense, `0..node_count`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the raw numeric id, usable as a dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{:04}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

/// A hardware-thread lane on a node.
///
/// With SMT-2 (the configuration studied in the paper) each core exposes two
/// hardware threads. Lane `0` on a node means "the first hardware thread of
/// every core on that node", lane `1` the second, and so on. Node sharing by
/// hyper-thread oversubscription places one job per lane.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lane(pub u8);

impl Lane {
    /// Lane 0: the lane used by exclusive allocations on SMT-1 machines.
    pub const PRIMARY: Lane = Lane(0);

    /// Returns the raw lane index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Lane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ht{}", self.0)
    }
}

impl fmt::Debug for Lane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lane({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn job_id_orders_by_submission() {
        let a = JobId(1);
        let b = JobId(2);
        assert!(a < b);
        assert_eq!(a.as_u64(), 1);
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(JobId(7).to_string(), "job7");
        assert_eq!(NodeId(3).to_string(), "n0003");
        assert_eq!(Lane(1).to_string(), "ht1");
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let set: HashSet<JobId> = (0..10).map(JobId).collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn node_id_index_roundtrip() {
        assert_eq!(NodeId(42).index(), 42);
        assert_eq!(Lane::PRIMARY.index(), 0);
    }
}
