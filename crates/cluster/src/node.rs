//! Per-node occupancy: lanes, memory, and administrative state.
//!
//! The sharing mechanism studied in the paper is *hyper-thread
//! oversubscription*: a node is either allocated exclusively (one job owns
//! every hardware thread) or shared by up to `smt` jobs, each owning one
//! hardware-thread *lane* — i.e. one hardware thread on every core of the
//! node. Lane-granular occupancy is therefore the native allocation unit of
//! this model; jobs that request fewer cores than a node offers still own a
//! whole lane, exactly as SLURM's whole-node allocations do on the paper's
//! testbed.

use crate::ids::{JobId, Lane, NodeId};
use crate::spec::NodeSpec;
use serde::{Deserialize, Serialize};

/// Administrative availability of a node, orthogonal to occupancy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdminState {
    /// Node accepts new allocations.
    Up,
    /// Node finishes running jobs but accepts no new allocations.
    Drained,
    /// Node is unavailable (failed or powered off); it holds no jobs.
    Down,
}

/// Occupancy classification of a node, derived from its lane assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Occupancy {
    /// No job on the node.
    Idle,
    /// One job owns every lane.
    Exclusive(JobId),
    /// One or more jobs each own some lanes, with at least one lane free
    /// or at least two distinct owners.
    Shared {
        /// Distinct resident jobs.
        occupants: u8,
        /// Lanes with no owner.
        free_lanes: u8,
    },
}

/// Errors from node-level occupancy operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeError {
    /// The node is drained or down.
    Unavailable(NodeId, AdminState),
    /// Requested lane is already owned by another job.
    LaneBusy(NodeId, Lane, JobId),
    /// Exclusive allocation requested on a non-idle node.
    NotIdle(NodeId),
    /// The job has no lanes on this node.
    JobNotPresent(NodeId, JobId),
    /// The job already owns a lane on this node.
    AlreadyPresent(NodeId, JobId),
    /// Not enough free memory for the request.
    InsufficientMemory {
        /// Node that rejected the request.
        node: NodeId,
        /// MiB requested.
        requested: u64,
        /// MiB free at request time.
        free: u64,
    },
    /// Lane index out of range for this node's SMT width.
    NoSuchLane(NodeId, Lane),
    /// A node that still hosts jobs cannot be marked down.
    StillOccupied(NodeId),
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::Unavailable(n, s) => write!(f, "{n} is {s:?}"),
            NodeError::LaneBusy(n, l, j) => write!(f, "{n} {l} already owned by {j}"),
            NodeError::NotIdle(n) => write!(f, "{n} is not idle"),
            NodeError::JobNotPresent(n, j) => write!(f, "{j} is not on {n}"),
            NodeError::AlreadyPresent(n, j) => write!(f, "{j} is already on {n}"),
            NodeError::InsufficientMemory {
                node,
                requested,
                free,
            } => write!(f, "{node}: requested {requested} MiB, {free} MiB free"),
            NodeError::NoSuchLane(n, l) => write!(f, "{n} has no {l}"),
            NodeError::StillOccupied(n) => write!(f, "{n} still hosts jobs"),
        }
    }
}

impl std::error::Error for NodeError {}

/// A compute node: lane ownership plus memory accounting.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    spec: NodeSpec,
    admin: AdminState,
    /// `lanes[l]` is the job owning hardware-thread lane `l`, if any.
    lanes: Vec<Option<JobId>>,
    /// Memory charged per resident job, MiB. Small (≤ smt entries), so a
    /// vector beats a hash map here.
    mem_by_job: Vec<(JobId, u64)>,
}

impl Node {
    /// Creates an idle, up node of the given shape.
    pub fn new(id: NodeId, spec: NodeSpec) -> Self {
        Node {
            id,
            spec,
            admin: AdminState::Up,
            lanes: vec![None; spec.smt as usize],
            mem_by_job: Vec::new(),
        }
    }

    /// The node's identifier.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's hardware shape.
    #[inline]
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// Administrative state.
    #[inline]
    pub fn admin_state(&self) -> AdminState {
        self.admin
    }

    /// Memory currently charged on the node, MiB.
    pub fn mem_used(&self) -> u64 {
        self.mem_by_job.iter().map(|&(_, m)| m).sum()
    }

    /// Free memory, MiB.
    pub fn mem_free(&self) -> u64 {
        self.spec.mem_mib - self.mem_used()
    }

    /// Jobs resident on the node, in lane order, deduplicated.
    pub fn occupants(&self) -> Vec<JobId> {
        let mut out: Vec<JobId> = Vec::with_capacity(self.lanes.len());
        for owner in self.lanes.iter().flatten() {
            if !out.contains(owner) {
                out.push(*owner);
            }
        }
        out
    }

    /// Lane owners in lane order, *without* deduplication or allocation —
    /// an exclusive job appears once per lane it owns. The hot paths
    /// (engine validation, free-time scans) only need "every owner" or a
    /// max over owners, where duplicates are harmless; use
    /// [`Node::occupants`] when distinct residents matter.
    #[inline]
    pub fn lane_owners(&self) -> impl Iterator<Item = JobId> + '_ {
        self.lanes.iter().copied().flatten()
    }

    /// Number of distinct resident jobs, without allocating.
    pub fn occupant_count(&self) -> usize {
        let mut count = 0;
        for (i, owner) in self.lanes.iter().enumerate() {
            if let Some(j) = owner {
                if !self.lanes[..i].contains(&Some(*j)) {
                    count += 1;
                }
            }
        }
        count
    }

    /// The job owning the given lane, if any.
    pub fn lane_owner(&self, lane: Lane) -> Option<JobId> {
        self.lanes.get(lane.index()).copied().flatten()
    }

    /// Lanes owned by `job`.
    pub fn lanes_of(&self, job: JobId) -> Vec<Lane> {
        self.lanes
            .iter()
            .enumerate()
            .filter(|(_, o)| **o == Some(job))
            .map(|(i, _)| Lane(i as u8))
            .collect()
    }

    /// First free lane, if any.
    pub fn free_lane(&self) -> Option<Lane> {
        self.lanes
            .iter()
            .position(Option::is_none)
            .map(|i| Lane(i as u8))
    }

    /// Number of free lanes.
    pub fn free_lane_count(&self) -> u8 {
        self.lanes.iter().filter(|o| o.is_none()).count() as u8
    }

    /// True when no job occupies any lane.
    pub fn is_idle(&self) -> bool {
        self.lanes.iter().all(Option::is_none)
    }

    /// Derived occupancy classification.
    pub fn occupancy(&self) -> Occupancy {
        let occupants = self.occupants();
        match occupants.len() {
            0 => Occupancy::Idle,
            1 if self.free_lane_count() == 0 => Occupancy::Exclusive(occupants[0]),
            n => Occupancy::Shared {
                occupants: n as u8,
                free_lanes: self.free_lane_count(),
            },
        }
    }

    /// For a node shared by exactly two jobs, the co-runner of `job`.
    ///
    /// Returns `None` when the job runs alone (or is not present). When
    /// SMT width exceeds 2 and several co-runners exist, the first one in
    /// lane order is returned; the SMT-2 case the paper studies has at most
    /// one.
    pub fn co_runner_of(&self, job: JobId) -> Option<JobId> {
        self.lanes
            .iter()
            .flatten()
            .find(|&&owner| owner != job)
            .copied()
    }

    /// Checks that a new allocation is admissible without changing state.
    fn check_available(&self) -> Result<(), NodeError> {
        match self.admin {
            AdminState::Up => Ok(()),
            s => Err(NodeError::Unavailable(self.id, s)),
        }
    }

    fn check_memory(&self, mem_mib: u64) -> Result<(), NodeError> {
        let free = self.mem_free();
        if mem_mib > free {
            Err(NodeError::InsufficientMemory {
                node: self.id,
                requested: mem_mib,
                free,
            })
        } else {
            Ok(())
        }
    }

    /// Gives every lane of an idle node to `job`, charging `mem_mib`.
    pub fn occupy_exclusive(&mut self, job: JobId, mem_mib: u64) -> Result<(), NodeError> {
        self.check_available()?;
        if !self.is_idle() {
            return Err(NodeError::NotIdle(self.id));
        }
        self.check_memory(mem_mib)?;
        self.lanes.fill(Some(job));
        self.mem_by_job.push((job, mem_mib));
        Ok(())
    }

    /// Gives one lane to `job`, charging `mem_mib`.
    ///
    /// Fails if the lane is owned, the job is already resident (a job never
    /// shares a node with itself in this model), or memory is short.
    pub fn occupy_lane(&mut self, job: JobId, lane: Lane, mem_mib: u64) -> Result<(), NodeError> {
        self.check_available()?;
        let idx = lane.index();
        if idx >= self.lanes.len() {
            return Err(NodeError::NoSuchLane(self.id, lane));
        }
        if let Some(owner) = self.lanes[idx] {
            return Err(NodeError::LaneBusy(self.id, lane, owner));
        }
        if self.lanes.contains(&Some(job)) {
            return Err(NodeError::AlreadyPresent(self.id, job));
        }
        self.check_memory(mem_mib)?;
        self.lanes[idx] = Some(job);
        self.mem_by_job.push((job, mem_mib));
        Ok(())
    }

    /// Removes `job` from the node, freeing its lanes and memory.
    ///
    /// Returns the lanes freed.
    pub fn release(&mut self, job: JobId) -> Result<Vec<Lane>, NodeError> {
        let freed = self.lanes_of(job);
        if freed.is_empty() {
            return Err(NodeError::JobNotPresent(self.id, job));
        }
        for lane in &freed {
            self.lanes[lane.index()] = None;
        }
        self.mem_by_job.retain(|&(j, _)| j != job);
        Ok(freed)
    }

    /// Marks the node drained (running jobs finish, no new allocations).
    pub fn drain(&mut self) {
        if self.admin == AdminState::Up {
            self.admin = AdminState::Drained;
        }
    }

    /// Returns a drained or down node to service.
    pub fn resume(&mut self) {
        self.admin = AdminState::Up;
    }

    /// Marks the node down. Fails while jobs are still resident; callers
    /// must evict (release) jobs first so accounting stays consistent.
    pub fn set_down(&mut self) -> Result<(), NodeError> {
        if !self.is_idle() {
            return Err(NodeError::StillOccupied(self.id));
        }
        self.admin = AdminState::Down;
        Ok(())
    }

    /// Physical cores in use: all of them if any lane is owned (a resident
    /// job runs one hardware thread on every core), zero otherwise.
    pub fn busy_cores(&self) -> u32 {
        if self.is_idle() {
            0
        } else {
            self.spec.cores()
        }
    }

    /// Hardware threads in use (`owned lanes × cores`).
    pub fn busy_hw_threads(&self) -> u32 {
        let owned = (self.lanes.len() - self.free_lane_count() as usize) as u32;
        owned * self.spec.cores()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        Node::new(NodeId(0), NodeSpec::tiny())
    }

    #[test]
    fn exclusive_occupies_all_lanes() {
        let mut n = node();
        n.occupy_exclusive(JobId(1), 1024).unwrap();
        assert_eq!(n.occupancy(), Occupancy::Exclusive(JobId(1)));
        assert_eq!(n.free_lane(), None);
        assert_eq!(n.occupants(), vec![JobId(1)]);
        assert_eq!(n.mem_used(), 1024);
        assert_eq!(n.busy_cores(), 4);
        assert_eq!(n.busy_hw_threads(), 8);
    }

    #[test]
    fn exclusive_requires_idle() {
        let mut n = node();
        n.occupy_lane(JobId(1), Lane(0), 0).unwrap();
        assert_eq!(
            n.occupy_exclusive(JobId(2), 0),
            Err(NodeError::NotIdle(NodeId(0)))
        );
    }

    #[test]
    fn two_jobs_share_via_lanes() {
        let mut n = node();
        n.occupy_lane(JobId(1), Lane(0), 100).unwrap();
        n.occupy_lane(JobId(2), Lane(1), 200).unwrap();
        assert_eq!(
            n.occupancy(),
            Occupancy::Shared {
                occupants: 2,
                free_lanes: 0
            }
        );
        assert_eq!(n.co_runner_of(JobId(1)), Some(JobId(2)));
        assert_eq!(n.co_runner_of(JobId(2)), Some(JobId(1)));
        assert_eq!(n.mem_used(), 300);
        assert_eq!(n.busy_hw_threads(), 8);
        assert_eq!(n.busy_cores(), 4);
    }

    #[test]
    fn lane_conflicts_are_rejected() {
        let mut n = node();
        n.occupy_lane(JobId(1), Lane(0), 0).unwrap();
        assert_eq!(
            n.occupy_lane(JobId(2), Lane(0), 0),
            Err(NodeError::LaneBusy(NodeId(0), Lane(0), JobId(1)))
        );
        // A job cannot co-run with itself.
        assert_eq!(
            n.occupy_lane(JobId(1), Lane(1), 0),
            Err(NodeError::AlreadyPresent(NodeId(0), JobId(1)))
        );
        // Out-of-range lane.
        assert_eq!(
            n.occupy_lane(JobId(2), Lane(5), 0),
            Err(NodeError::NoSuchLane(NodeId(0), Lane(5)))
        );
    }

    #[test]
    fn memory_is_enforced_and_released() {
        let mut n = node();
        let cap = NodeSpec::tiny().mem_mib;
        n.occupy_lane(JobId(1), Lane(0), cap).unwrap();
        let err = n.occupy_lane(JobId(2), Lane(1), 1).unwrap_err();
        assert!(matches!(err, NodeError::InsufficientMemory { .. }));
        n.release(JobId(1)).unwrap();
        assert_eq!(n.mem_free(), cap);
        assert!(n.is_idle());
    }

    #[test]
    fn release_returns_freed_lanes() {
        let mut n = node();
        n.occupy_exclusive(JobId(1), 0).unwrap();
        let freed = n.release(JobId(1)).unwrap();
        assert_eq!(freed, vec![Lane(0), Lane(1)]);
        assert!(n.is_idle());
        assert_eq!(
            n.release(JobId(1)),
            Err(NodeError::JobNotPresent(NodeId(0), JobId(1)))
        );
    }

    #[test]
    fn drained_node_rejects_new_work_but_keeps_running_jobs() {
        let mut n = node();
        n.occupy_lane(JobId(1), Lane(0), 0).unwrap();
        n.drain();
        assert_eq!(
            n.occupy_lane(JobId(2), Lane(1), 0),
            Err(NodeError::Unavailable(NodeId(0), AdminState::Drained))
        );
        assert_eq!(n.occupants(), vec![JobId(1)]);
        n.resume();
        n.occupy_lane(JobId(2), Lane(1), 0).unwrap();
    }

    #[test]
    fn down_requires_empty_node() {
        let mut n = node();
        n.occupy_lane(JobId(1), Lane(0), 0).unwrap();
        assert_eq!(n.set_down(), Err(NodeError::StillOccupied(NodeId(0))));
        n.release(JobId(1)).unwrap();
        n.set_down().unwrap();
        assert_eq!(n.admin_state(), AdminState::Down);
    }

    #[test]
    fn occupancy_one_job_one_lane_is_shared_with_free_lane() {
        let mut n = node();
        n.occupy_lane(JobId(3), Lane(1), 0).unwrap();
        assert_eq!(
            n.occupancy(),
            Occupancy::Shared {
                occupants: 1,
                free_lanes: 1
            }
        );
        assert_eq!(n.free_lane(), Some(Lane(0)));
        assert_eq!(n.co_runner_of(JobId(3)), None);
    }
}
