//! The cluster aggregate: nodes, live allocations, and free-capacity
//! indices kept in sync on every mutation.

use crate::alloc::{Allocation, Placement, ShareMode};
use crate::ids::{JobId, Lane, NodeId};
use crate::node::{AdminState, Node, NodeError};
use crate::spec::ClusterSpec;
use std::collections::{BTreeSet, HashMap};

/// Errors from cluster-level allocation operations.
///
/// Cluster operations are *atomic*: on error, no node state has changed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// A node-level check failed.
    Node(NodeError),
    /// The job already holds an allocation.
    DuplicateJob(JobId),
    /// The job holds no allocation.
    UnknownJob(JobId),
    /// An allocation request listed no nodes.
    EmptyNodeList,
    /// The same node appeared twice in one request.
    DuplicateNode(NodeId),
    /// A node id outside the cluster.
    NoSuchNode(NodeId),
}

impl From<NodeError> for AllocError {
    fn from(e: NodeError) -> Self {
        AllocError::Node(e)
    }
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::Node(e) => write!(f, "{e}"),
            AllocError::DuplicateJob(j) => write!(f, "{j} already holds an allocation"),
            AllocError::UnknownJob(j) => write!(f, "{j} holds no allocation"),
            AllocError::EmptyNodeList => write!(f, "empty node list"),
            AllocError::DuplicateNode(n) => write!(f, "{n} listed twice"),
            AllocError::NoSuchNode(n) => write!(f, "{n} does not exist"),
        }
    }
}

impl std::error::Error for AllocError {}

/// One consistent view of cluster occupancy at an instant (see
/// [`Cluster::occupancy_snapshot`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OccupancySnapshot {
    /// Physical cores busy (a node's cores count fully once any job
    /// resides on it).
    pub busy_cores: u64,
    /// Nodes hosting two or more jobs.
    pub shared_nodes: usize,
    /// Occupied nodes with their residents, in node-id order.
    pub per_node: Vec<(NodeId, Vec<JobId>)>,
}

/// Cumulative operation counters for one [`Cluster`].
///
/// Plain integers bumped on the allocation paths — cheap enough to be
/// always on, and read out by the telemetry layer without the cluster
/// crate depending on it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Successful exclusive allocations.
    pub exclusive_allocs: u64,
    /// Successful shared (lane) allocations.
    pub shared_allocs: u64,
    /// Successful releases.
    pub releases: u64,
    /// Allocation requests rejected with an [`AllocError`].
    pub failed_allocs: u64,
}

/// Cached occupancy classification of one node, diffed on every index
/// refresh so the cluster-wide counters stay O(1) to read.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct NodeClass {
    /// At least one resident job (regardless of admin state).
    occupied: bool,
    /// Two or more distinct resident jobs.
    shared: bool,
    /// Free-lane bucket the node currently sits in (0 = none).
    bucket: u8,
}

/// A cluster of homogeneous nodes with lane-granular allocation tracking.
///
/// Several indices are maintained incrementally so schedulers can
/// enumerate capacity without scanning every node:
///
/// * **idle** — up nodes with no resident job (candidates for exclusive
///   allocation);
/// * **partial** — up nodes with at least one resident job *and* at least
///   one free lane (candidates for co-allocation);
/// * **free-lane buckets** — the partial set split by free-lane count, so
///   SMT>2 lane searches can ask for "nodes with ≥ n free lanes" directly;
/// * **occupancy counters** — occupied/shared node counts, making
///   [`Cluster::occupancy_counts`] O(1) (the per-event occupancy series
///   recorded by the engine reads these instead of walking every node).
///
/// Every successful mutation bumps a [version counter](Cluster::version);
/// together with the process-unique [`Cluster::instance_id`], `(instance,
/// version)` identifies one exact occupancy state, which lets schedulers
/// cache derived planning state and invalidate it by events instead of
/// recomputing it every pass.
#[derive(Debug)]
pub struct Cluster {
    spec: ClusterSpec,
    nodes: Vec<Node>,
    // detlint: allow(D1, job-keyed lookup table; the unordered allocations() iterator feeds only order-insensitive tests)
    allocations: HashMap<JobId, Allocation>,
    idle: BTreeSet<NodeId>,
    partial: BTreeSet<NodeId>,
    /// `lane_buckets[f]` = partial nodes with exactly `f` free lanes.
    lane_buckets: Vec<BTreeSet<NodeId>>,
    class: Vec<NodeClass>,
    occupied_nodes: usize,
    shared_nodes: usize,
    version: u64,
    instance: u64,
    stats: AllocStats,
}

/// Cloning starts a new mutation history: the clone gets a fresh
/// [`Cluster::instance_id`] so `(instance, version)` stays a unique key
/// even when a clone and its original diverge.
impl Clone for Cluster {
    fn clone(&self) -> Self {
        Cluster {
            spec: self.spec,
            nodes: self.nodes.clone(),
            allocations: self.allocations.clone(),
            idle: self.idle.clone(),
            partial: self.partial.clone(),
            lane_buckets: self.lane_buckets.clone(),
            class: self.class.clone(),
            occupied_nodes: self.occupied_nodes,
            shared_nodes: self.shared_nodes,
            version: self.version,
            instance: next_instance_id(),
            stats: self.stats,
        }
    }
}

fn next_instance_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Cluster {
    /// Builds an all-idle cluster from a validated spec.
    ///
    /// # Panics
    /// Panics if the spec is invalid; validate specs at the configuration
    /// boundary.
    pub fn new(spec: ClusterSpec) -> Self {
        // detlint: allow(D5, constructor contract: an invalid spec is a setup programming error)
        spec.validate().expect("invalid cluster spec");
        let nodes: Vec<Node> = (0..spec.node_count)
            .map(|i| Node::new(NodeId(i), spec.node))
            .collect();
        let idle = nodes.iter().map(Node::id).collect();
        let class = vec![NodeClass::default(); nodes.len()];
        Cluster {
            spec,
            nodes,
            // detlint: allow(D1, lookup-only allocation table, see the field note)
            allocations: HashMap::new(),
            idle,
            partial: BTreeSet::new(),
            lane_buckets: vec![BTreeSet::new(); spec.node.smt as usize + 1],
            class,
            occupied_nodes: 0,
            shared_nodes: 0,
            version: 0,
            instance: next_instance_id(),
            stats: AllocStats::default(),
        }
    }

    /// Cumulative allocate/release operation counters.
    #[inline]
    pub fn alloc_stats(&self) -> AllocStats {
        self.stats
    }

    /// The static spec this cluster was built from.
    #[inline]
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable view of one node.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index())
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Up-and-idle nodes, in id order.
    pub fn idle_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.idle.iter().copied()
    }

    /// Number of up-and-idle nodes.
    #[inline]
    pub fn idle_count(&self) -> usize {
        self.idle.len()
    }

    /// Up nodes that host at least one job and still have a free lane —
    /// the co-allocation candidates.
    pub fn partial_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.partial.iter().copied()
    }

    /// Number of co-allocation candidate nodes.
    #[inline]
    pub fn partial_count(&self) -> usize {
        self.partial.len()
    }

    /// Partial nodes with at least `min_free` free lanes, in id order —
    /// the lane-bucket index, so an SMT>2 search for "room for n more
    /// lanes" does not touch nodes that cannot qualify.
    pub fn partial_nodes_with_free_lanes(&self, min_free: u8) -> impl Iterator<Item = NodeId> + '_ {
        let lo = (min_free as usize).max(1).min(self.lane_buckets.len());
        let mut ids: Vec<NodeId> = self.lane_buckets[lo..]
            .iter()
            .flat_map(|b| b.iter().copied())
            .collect();
        ids.sort_unstable();
        ids.into_iter()
    }

    /// Number of partial nodes with exactly `free` free lanes.
    pub fn lane_bucket_count(&self, free: u8) -> usize {
        self.lane_buckets
            .get(free as usize)
            .map_or(0, BTreeSet::len)
    }

    /// Monotone state-change counter: bumped on every successful mutation
    /// (allocate, release, drain, resume, set-down). Equal versions on the
    /// same [`Cluster::instance_id`] mean identical occupancy.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Process-unique id of this cluster object's mutation history (a
    /// clone gets a fresh one). Cache keys must pair this with
    /// [`Cluster::version`].
    #[inline]
    pub fn instance_id(&self) -> u64 {
        self.instance
    }

    /// The `(instance, version)` invalidation stamp as one value — the
    /// cache key schedulers use to detect occupancy changes. Equal stamps
    /// guarantee identical occupancy (and, because every start and
    /// release mutates the cluster, that no job started or stopped in
    /// between); any allocation, release, drain, resume, or node-down
    /// event yields a fresh stamp.
    #[inline]
    pub fn stamp(&self) -> (u64, u64) {
        (self.instance, self.version)
    }

    /// O(1) occupancy counters: `(busy physical cores, nodes hosting two
    /// or more jobs)` — the same numbers
    /// [`Cluster::occupancy_snapshot`] derives by walking every node.
    #[inline]
    pub fn occupancy_counts(&self) -> (u64, usize) {
        (
            self.occupied_nodes as u64 * self.spec.node.cores() as u64,
            self.shared_nodes,
        )
    }

    /// The live allocation of a job, if any.
    pub fn allocation(&self, job: JobId) -> Option<&Allocation> {
        self.allocations.get(&job)
    }

    /// All live allocations (unordered).
    pub fn allocations(&self) -> impl Iterator<Item = &Allocation> {
        self.allocations.values()
    }

    /// Number of live allocations.
    #[inline]
    pub fn allocation_count(&self) -> usize {
        self.allocations.len()
    }

    fn check_node_ids(&self, nodes: &[NodeId]) -> Result<(), AllocError> {
        if nodes.is_empty() {
            return Err(AllocError::EmptyNodeList);
        }
        let mut seen = BTreeSet::new();
        for &n in nodes {
            if n.index() >= self.nodes.len() {
                return Err(AllocError::NoSuchNode(n));
            }
            if !seen.insert(n) {
                return Err(AllocError::DuplicateNode(n));
            }
        }
        Ok(())
    }

    fn refresh_index(&mut self, id: NodeId) {
        let node = &self.nodes[id.index()];
        let up = node.admin_state() == AdminState::Up;
        let idle = node.is_idle();
        let free_lanes = node.free_lane_count();
        let new = NodeClass {
            occupied: !idle,
            shared: node.occupant_count() >= 2,
            bucket: if up && !idle && free_lanes > 0 {
                free_lanes
            } else {
                0
            },
        };
        if up && idle {
            self.idle.insert(id);
        } else {
            self.idle.remove(&id);
        }
        if new.bucket > 0 {
            self.partial.insert(id);
        } else {
            self.partial.remove(&id);
        }
        let old = std::mem::replace(&mut self.class[id.index()], new);
        if old.occupied != new.occupied {
            if new.occupied {
                self.occupied_nodes += 1;
            } else {
                self.occupied_nodes -= 1;
            }
        }
        if old.shared != new.shared {
            if new.shared {
                self.shared_nodes += 1;
            } else {
                self.shared_nodes -= 1;
            }
        }
        if old.bucket != new.bucket {
            if old.bucket > 0 {
                self.lane_buckets[old.bucket as usize].remove(&id);
            }
            if new.bucket > 0 {
                self.lane_buckets[new.bucket as usize].insert(id);
            }
        }
    }

    /// Grants `job` exclusive ownership of the listed nodes.
    ///
    /// Atomic: either every node is granted or none is.
    pub fn allocate_exclusive(
        &mut self,
        job: JobId,
        nodes: &[NodeId],
        mem_per_node: u64,
    ) -> Result<&Allocation, AllocError> {
        match self.do_allocate_exclusive(job, nodes, mem_per_node) {
            Ok(()) => {
                self.stats.exclusive_allocs += 1;
                self.version += 1;
                Ok(&self.allocations[&job])
            }
            Err(e) => {
                self.stats.failed_allocs += 1;
                Err(e)
            }
        }
    }

    fn do_allocate_exclusive(
        &mut self,
        job: JobId,
        nodes: &[NodeId],
        mem_per_node: u64,
    ) -> Result<(), AllocError> {
        self.check_node_ids(nodes)?;
        if self.allocations.contains_key(&job) {
            return Err(AllocError::DuplicateJob(job));
        }
        // Validate everything before touching state (atomicity).
        for &id in nodes {
            let n = &self.nodes[id.index()];
            if n.admin_state() != AdminState::Up {
                return Err(NodeError::Unavailable(id, n.admin_state()).into());
            }
            if !n.is_idle() {
                return Err(NodeError::NotIdle(id).into());
            }
            if mem_per_node > n.mem_free() {
                return Err(NodeError::InsufficientMemory {
                    node: id,
                    requested: mem_per_node,
                    free: n.mem_free(),
                }
                .into());
            }
        }
        let mut placements = Vec::with_capacity(nodes.len());
        for &id in nodes {
            self.nodes[id.index()]
                .occupy_exclusive(job, mem_per_node)
                // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
                .expect("validated above");
            placements.push(Placement {
                node: id,
                lanes: (0..self.spec.node.smt).map(Lane).collect(),
            });
            self.refresh_index(id);
        }
        let alloc = Allocation {
            job,
            placements,
            mem_per_node,
            mode: ShareMode::Exclusive,
        };
        self.allocations.insert(job, alloc);
        Ok(())
    }

    /// Grants `job` one free lane on each listed node (co-allocation).
    ///
    /// Each node may be idle (the job becomes its first resident) or
    /// partially occupied by *other* jobs. Atomic.
    pub fn allocate_shared(
        &mut self,
        job: JobId,
        nodes: &[NodeId],
        mem_per_node: u64,
    ) -> Result<&Allocation, AllocError> {
        match self.do_allocate_shared(job, nodes, mem_per_node) {
            Ok(()) => {
                self.stats.shared_allocs += 1;
                self.version += 1;
                Ok(&self.allocations[&job])
            }
            Err(e) => {
                self.stats.failed_allocs += 1;
                Err(e)
            }
        }
    }

    fn do_allocate_shared(
        &mut self,
        job: JobId,
        nodes: &[NodeId],
        mem_per_node: u64,
    ) -> Result<(), AllocError> {
        self.check_node_ids(nodes)?;
        if self.allocations.contains_key(&job) {
            return Err(AllocError::DuplicateJob(job));
        }
        let mut chosen: Vec<(NodeId, Lane)> = Vec::with_capacity(nodes.len());
        for &id in nodes {
            let n = &self.nodes[id.index()];
            if n.admin_state() != AdminState::Up {
                return Err(NodeError::Unavailable(id, n.admin_state()).into());
            }
            if n.occupants().contains(&job) {
                return Err(NodeError::AlreadyPresent(id, job).into());
            }
            let lane = n.free_lane().ok_or(NodeError::LaneBusy(
                id,
                Lane(0),
                n.lane_owner(Lane(0)).unwrap_or(job),
            ))?;
            if mem_per_node > n.mem_free() {
                return Err(NodeError::InsufficientMemory {
                    node: id,
                    requested: mem_per_node,
                    free: n.mem_free(),
                }
                .into());
            }
            chosen.push((id, lane));
        }
        let mut placements = Vec::with_capacity(chosen.len());
        for &(id, lane) in &chosen {
            self.nodes[id.index()]
                .occupy_lane(job, lane, mem_per_node)
                // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
                .expect("validated above");
            placements.push(Placement {
                node: id,
                lanes: vec![lane],
            });
            self.refresh_index(id);
        }
        let alloc = Allocation {
            job,
            placements,
            mem_per_node,
            mode: ShareMode::Shared,
        };
        self.allocations.insert(job, alloc);
        Ok(())
    }

    /// Releases every lane held by `job` and returns its allocation record.
    pub fn release(&mut self, job: JobId) -> Result<Allocation, AllocError> {
        let alloc = self
            .allocations
            .remove(&job)
            .ok_or(AllocError::UnknownJob(job))?;
        for p in &alloc.placements {
            self.nodes[p.node.index()]
                .release(job)
                // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
                .expect("allocation table and node state must agree");
            self.refresh_index(p.node);
        }
        self.stats.releases += 1;
        self.version += 1;
        Ok(alloc)
    }

    /// Jobs co-resident with `job`, as `(node, co-runner)` pairs in node
    /// grant order. Empty for exclusive allocations.
    pub fn co_runners(&self, job: JobId) -> Vec<(NodeId, JobId)> {
        let Some(alloc) = self.allocations.get(&job) else {
            return Vec::new();
        };
        alloc
            .placements
            .iter()
            .filter_map(|p| {
                self.nodes[p.node.index()]
                    .co_runner_of(job)
                    .map(|co| (p.node, co))
            })
            .collect()
    }

    /// Drains a node (no new allocations; running jobs finish).
    pub fn drain(&mut self, id: NodeId) -> Result<(), AllocError> {
        if id.index() >= self.nodes.len() {
            return Err(AllocError::NoSuchNode(id));
        }
        self.nodes[id.index()].drain();
        self.refresh_index(id);
        self.version += 1;
        Ok(())
    }

    /// Returns a drained/down node to service.
    pub fn resume(&mut self, id: NodeId) -> Result<(), AllocError> {
        if id.index() >= self.nodes.len() {
            return Err(AllocError::NoSuchNode(id));
        }
        self.nodes[id.index()].resume();
        self.refresh_index(id);
        self.version += 1;
        Ok(())
    }

    /// Marks an empty node down.
    pub fn set_down(&mut self, id: NodeId) -> Result<(), AllocError> {
        if id.index() >= self.nodes.len() {
            return Err(AllocError::NoSuchNode(id));
        }
        self.nodes[id.index()].set_down()?;
        self.refresh_index(id);
        self.version += 1;
        Ok(())
    }

    /// Physical cores currently busy (a node's cores count as busy when any
    /// job resides on it).
    pub fn busy_cores(&self) -> u64 {
        self.nodes.iter().map(|n| n.busy_cores() as u64).sum()
    }

    /// Hardware threads currently owned by jobs.
    pub fn busy_hw_threads(&self) -> u64 {
        self.nodes.iter().map(|n| n.busy_hw_threads() as u64).sum()
    }

    /// Fraction of physical cores busy, in `[0, 1]`.
    pub fn core_utilization(&self) -> f64 {
        self.busy_cores() as f64 / self.spec.total_cores() as f64
    }

    /// Point-in-time occupancy: every occupied node with its residents,
    /// plus the aggregate counters derived from the same walk. One
    /// consistent snapshot for tracing, auditing, and reporting.
    pub fn occupancy_snapshot(&self) -> OccupancySnapshot {
        let mut per_node = Vec::new();
        let mut shared_nodes = 0;
        for node in &self.nodes {
            let occupants = node.occupants();
            if occupants.len() >= 2 {
                shared_nodes += 1;
            }
            if !occupants.is_empty() {
                per_node.push((node.id(), occupants));
            }
        }
        OccupancySnapshot {
            busy_cores: per_node.len() as u64 * self.spec.node.cores() as u64,
            shared_nodes,
            per_node,
        }
    }

    /// Debug-only consistency check: allocation table and node lane state
    /// must describe the same world, and the indices must be exact.
    ///
    /// Intended for tests and property checks; linear in cluster size.
    pub fn check_invariants(&self) -> Result<(), String> {
        for alloc in self.allocations.values() {
            for p in &alloc.placements {
                let node = self
                    .node(p.node)
                    .ok_or_else(|| format!("allocation references missing {}", p.node))?;
                let held = node.lanes_of(alloc.job);
                if held != p.lanes {
                    return Err(format!(
                        "{} on {}: allocation says lanes {:?}, node says {:?}",
                        alloc.job, p.node, p.lanes, held
                    ));
                }
            }
        }
        for node in &self.nodes {
            for occupant in node.occupants() {
                let alloc = self
                    .allocations
                    .get(&occupant)
                    .ok_or_else(|| format!("{} on {} has no allocation", occupant, node.id()))?;
                if !alloc.nodes().any(|n| n == node.id()) {
                    return Err(format!(
                        "{} resident on {} but allocation omits it",
                        occupant,
                        node.id()
                    ));
                }
            }
            let id = node.id();
            let up = node.admin_state() == AdminState::Up;
            let want_idle = up && node.is_idle();
            let want_partial = up && !node.is_idle() && node.free_lane_count() > 0;
            if self.idle.contains(&id) != want_idle {
                return Err(format!("idle index wrong for {id}"));
            }
            if self.partial.contains(&id) != want_partial {
                return Err(format!("partial index wrong for {id}"));
            }
            let want_bucket = if want_partial {
                node.free_lane_count()
            } else {
                0
            };
            if self.class[id.index()].bucket != want_bucket {
                return Err(format!("lane bucket wrong for {id}"));
            }
            for (f, bucket) in self.lane_buckets.iter().enumerate() {
                if bucket.contains(&id) != (want_bucket as usize == f && f > 0) {
                    return Err(format!("lane bucket {f} membership wrong for {id}"));
                }
            }
        }
        let snap = self.occupancy_snapshot();
        let (busy, shared) = self.occupancy_counts();
        if busy != snap.busy_cores || shared != snap.shared_nodes {
            return Err(format!(
                "occupancy counters ({busy}, {shared}) disagree with snapshot ({}, {})",
                snap.busy_cores, snap.shared_nodes
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NodeSpec;

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec::test_small())
    }

    #[test]
    fn fresh_cluster_is_all_idle() {
        let c = cluster();
        assert_eq!(c.idle_count(), 4);
        assert_eq!(c.partial_count(), 0);
        assert_eq!(c.busy_cores(), 0);
        c.check_invariants().unwrap();
    }

    #[test]
    fn exclusive_allocation_moves_nodes_out_of_idle() {
        let mut c = cluster();
        c.allocate_exclusive(JobId(1), &[NodeId(0), NodeId(1)], 100)
            .unwrap();
        assert_eq!(c.idle_count(), 2);
        assert_eq!(c.partial_count(), 0); // exclusive nodes have no free lane
        assert_eq!(c.busy_cores(), 8);
        assert_eq!(c.allocation(JobId(1)).unwrap().node_count(), 2);
        c.check_invariants().unwrap();
    }

    #[test]
    fn shared_allocation_creates_partial_nodes_then_fills_them() {
        let mut c = cluster();
        c.allocate_shared(JobId(1), &[NodeId(0), NodeId(1)], 10)
            .unwrap();
        assert_eq!(c.partial_count(), 2);
        assert_eq!(c.idle_count(), 2);
        c.allocate_shared(JobId(2), &[NodeId(0), NodeId(1)], 10)
            .unwrap();
        assert_eq!(c.partial_count(), 0);
        assert_eq!(
            c.co_runners(JobId(1)),
            vec![(NodeId(0), JobId(2)), (NodeId(1), JobId(2))]
        );
        c.check_invariants().unwrap();
    }

    #[test]
    fn release_restores_capacity() {
        let mut c = cluster();
        c.allocate_shared(JobId(1), &[NodeId(0)], 10).unwrap();
        c.allocate_shared(JobId(2), &[NodeId(0)], 10).unwrap();
        let a = c.release(JobId(1)).unwrap();
        assert_eq!(a.job, JobId(1));
        assert_eq!(c.partial_count(), 1);
        c.release(JobId(2)).unwrap();
        assert_eq!(c.idle_count(), 4);
        assert_eq!(c.allocation_count(), 0);
        c.check_invariants().unwrap();
    }

    #[test]
    fn allocation_is_atomic_on_failure() {
        let mut c = cluster();
        c.allocate_exclusive(JobId(1), &[NodeId(2)], 0).unwrap();
        // Second request includes the busy node: nothing must change.
        let err = c
            .allocate_exclusive(JobId(2), &[NodeId(0), NodeId(2)], 0)
            .unwrap_err();
        assert_eq!(err, AllocError::Node(NodeError::NotIdle(NodeId(2))));
        assert!(c.allocation(JobId(2)).is_none());
        assert_eq!(c.idle_count(), 3);
        c.check_invariants().unwrap();
    }

    #[test]
    fn request_validation() {
        let mut c = cluster();
        assert_eq!(
            c.allocate_exclusive(JobId(1), &[], 0).unwrap_err(),
            AllocError::EmptyNodeList
        );
        assert_eq!(
            c.allocate_exclusive(JobId(1), &[NodeId(0), NodeId(0)], 0)
                .unwrap_err(),
            AllocError::DuplicateNode(NodeId(0))
        );
        assert_eq!(
            c.allocate_exclusive(JobId(1), &[NodeId(99)], 0)
                .unwrap_err(),
            AllocError::NoSuchNode(NodeId(99))
        );
        c.allocate_exclusive(JobId(1), &[NodeId(0)], 0).unwrap();
        assert_eq!(
            c.allocate_exclusive(JobId(1), &[NodeId(1)], 0).unwrap_err(),
            AllocError::DuplicateJob(JobId(1))
        );
        assert_eq!(
            c.release(JobId(7)).unwrap_err(),
            AllocError::UnknownJob(JobId(7))
        );
    }

    #[test]
    fn drained_nodes_leave_the_indices() {
        let mut c = cluster();
        c.drain(NodeId(0)).unwrap();
        assert_eq!(c.idle_count(), 3);
        let err = c.allocate_exclusive(JobId(1), &[NodeId(0)], 0).unwrap_err();
        assert!(matches!(err, AllocError::Node(NodeError::Unavailable(..))));
        c.resume(NodeId(0)).unwrap();
        assert_eq!(c.idle_count(), 4);
        c.check_invariants().unwrap();
    }

    #[test]
    fn down_node_and_utilization() {
        let mut c = cluster();
        c.set_down(NodeId(3)).unwrap();
        assert_eq!(c.idle_count(), 3);
        c.allocate_exclusive(JobId(1), &[NodeId(0)], 0).unwrap();
        let total = ClusterSpec::test_small().total_cores() as f64;
        assert!((c.core_utilization() - 4.0 / total).abs() < 1e-12);
        c.check_invariants().unwrap();
    }

    #[test]
    fn occupancy_snapshot_agrees_with_counters() {
        let mut c = cluster();
        assert_eq!(c.occupancy_snapshot().per_node, vec![]);
        c.allocate_exclusive(JobId(1), &[NodeId(2)], 0).unwrap();
        c.allocate_shared(JobId(2), &[NodeId(0)], 0).unwrap();
        c.allocate_shared(JobId(3), &[NodeId(0)], 0).unwrap();
        let snap = c.occupancy_snapshot();
        assert_eq!(snap.busy_cores, c.busy_cores());
        assert_eq!(snap.shared_nodes, 1);
        assert_eq!(
            snap.per_node,
            vec![
                (NodeId(0), vec![JobId(2), JobId(3)]),
                (NodeId(2), vec![JobId(1)]),
            ]
        );
    }

    #[test]
    fn alloc_stats_count_operations() {
        let mut c = cluster();
        assert_eq!(c.alloc_stats(), AllocStats::default());
        c.allocate_exclusive(JobId(1), &[NodeId(0)], 0).unwrap();
        c.allocate_shared(JobId(2), &[NodeId(1)], 0).unwrap();
        c.allocate_exclusive(JobId(1), &[NodeId(2)], 0).unwrap_err();
        c.release(JobId(2)).unwrap();
        let s = c.alloc_stats();
        assert_eq!(s.exclusive_allocs, 1);
        assert_eq!(s.shared_allocs, 1);
        assert_eq!(s.failed_allocs, 1);
        assert_eq!(s.releases, 1);
        c.check_invariants().unwrap();
    }

    #[test]
    fn shared_on_idle_node_counts_busy_cores_fully() {
        // A lone shared job still makes the node's cores busy: the node is
        // dedicated hardware from the utilization perspective.
        let mut c = cluster();
        c.allocate_shared(JobId(1), &[NodeId(0)], 0).unwrap();
        assert_eq!(c.busy_cores(), NodeSpec::tiny().cores() as u64);
        assert_eq!(
            c.busy_hw_threads(),
            NodeSpec::tiny().cores() as u64 // one lane
        );
    }
}
