#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! # nodeshare-cluster
//!
//! Machine model for the nodeshare batch-system study: homogeneous clusters
//! of SMT nodes with **lane-granular occupancy**.
//!
//! The paper ("Effects and Benefits of Node Sharing Strategies in HPC Batch
//! Systems", IPDPS 2019) shares nodes by oversubscribing cores through
//! hyper-threading: each of a node's `smt` hardware-thread *lanes* can host
//! one job, so an SMT-2 node runs either one exclusive job or up to two
//! co-allocated jobs. This crate provides:
//!
//! * [`ids`] — shared [`JobId`]/[`NodeId`]/[`Lane`] identifiers,
//! * [`spec`] — static hardware shapes ([`NodeSpec`], [`ClusterSpec`]),
//! * [`node`] — per-node lane/memory/admin state,
//! * [`alloc`] — allocation records ([`Allocation`], [`ShareMode`]),
//! * [`cluster`] — the [`Cluster`] aggregate with atomic allocate/release
//!   and incrementally maintained idle/partial capacity indices.
//!
//! ```
//! use nodeshare_cluster::{Cluster, ClusterSpec, JobId, NodeId};
//!
//! let mut cluster = Cluster::new(ClusterSpec::test_small());
//! cluster.allocate_shared(JobId(1), &[NodeId(0)], 1024).unwrap();
//! cluster.allocate_shared(JobId(2), &[NodeId(0)], 1024).unwrap();
//! assert_eq!(cluster.co_runners(JobId(1)), vec![(NodeId(0), JobId(2))]);
//! ```

pub mod alloc;
pub mod cluster;
pub mod ids;
pub mod node;
pub mod render;
pub mod spec;

pub use alloc::{Allocation, Placement, ShareMode};
pub use cluster::{AllocError, AllocStats, Cluster, OccupancySnapshot};
pub use ids::{JobId, Lane, NodeId};
pub use node::{AdminState, Node, NodeError, Occupancy};
pub use render::{node_glyph, render_occupancy};
pub use spec::{ClusterSpec, NodeSpec};
