//! Allocation records: which nodes and lanes a job holds.

use crate::ids::{JobId, Lane, NodeId};
use serde::{Deserialize, Serialize};

/// One node's worth of an allocation: the node and the lanes held there.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Node the lanes belong to.
    pub node: NodeId,
    /// Lanes held on that node (all lanes for exclusive allocations).
    pub lanes: Vec<Lane>,
}

/// How a job occupies its nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShareMode {
    /// The job owns every hardware thread of each of its nodes — the
    /// "standard node allocation" baseline of the paper.
    Exclusive,
    /// The job owns one hardware-thread lane per node and may co-reside
    /// with other jobs — the paper's node-sharing mechanism.
    Shared,
}

impl ShareMode {
    /// True for [`ShareMode::Shared`].
    #[inline]
    pub const fn is_shared(self) -> bool {
        matches!(self, ShareMode::Shared)
    }
}

/// A live allocation held by a job.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// Owning job.
    pub job: JobId,
    /// Per-node lane holdings, in the order nodes were granted.
    pub placements: Vec<Placement>,
    /// Memory charged on each node, MiB.
    pub mem_per_node: u64,
    /// Exclusive or shared occupancy.
    pub mode: ShareMode,
}

impl Allocation {
    /// Nodes held by the allocation, in grant order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.placements.iter().map(|p| p.node)
    }

    /// Number of nodes held.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.placements.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_accessors() {
        let a = Allocation {
            job: JobId(9),
            placements: vec![
                Placement {
                    node: NodeId(2),
                    lanes: vec![Lane(0)],
                },
                Placement {
                    node: NodeId(5),
                    lanes: vec![Lane(1)],
                },
            ],
            mem_per_node: 512,
            mode: ShareMode::Shared,
        };
        assert_eq!(a.node_count(), 2);
        assert_eq!(a.nodes().collect::<Vec<_>>(), vec![NodeId(2), NodeId(5)]);
        assert!(a.mode.is_shared());
        assert!(!ShareMode::Exclusive.is_shared());
    }
}
