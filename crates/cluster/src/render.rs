//! ASCII occupancy map: one glyph per node, the operator's at-a-glance
//! view of where sharing is happening.

use crate::cluster::Cluster;
use crate::node::{AdminState, Node, Occupancy};

/// Glyph for one node's state.
pub fn node_glyph(node: &Node) -> char {
    match node.admin_state() {
        AdminState::Down => '!',
        AdminState::Drained => 'd',
        AdminState::Up => match node.occupancy() {
            Occupancy::Idle => '.',
            Occupancy::Exclusive(_) => 'X',
            Occupancy::Shared {
                occupants,
                free_lanes,
            } => {
                if occupants >= 2 {
                    '#' // genuinely co-allocated
                } else if free_lanes > 0 {
                    '/' // one lane busy, partner slot open
                } else {
                    'X'
                }
            }
        },
    }
}

/// Renders the cluster as a grid of `width` nodes per row, with a legend.
pub fn render_occupancy(cluster: &Cluster, width: usize) -> String {
    assert!(width > 0, "width must be positive");
    let mut out = String::with_capacity(cluster.node_count() + cluster.node_count() / width + 64);
    for (i, node) in cluster.nodes().iter().enumerate() {
        out.push(node_glyph(node));
        if (i + 1) % width == 0 {
            out.push('\n');
        }
    }
    if cluster.node_count() % width != 0 {
        out.push('\n');
    }
    out.push_str(". idle  / half  # shared  X full  d drained  ! down\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{JobId, NodeId};
    use crate::spec::ClusterSpec;

    #[test]
    fn glyphs_cover_all_states() {
        let mut c = Cluster::new(ClusterSpec::test_small());
        c.allocate_exclusive(JobId(1), &[NodeId(0)], 0).unwrap();
        c.allocate_shared(JobId(2), &[NodeId(1)], 0).unwrap();
        c.allocate_shared(JobId(3), &[NodeId(2)], 0).unwrap();
        c.allocate_shared(JobId(4), &[NodeId(2)], 0).unwrap();
        c.drain(NodeId(3)).unwrap();
        let s = render_occupancy(&c, 4);
        let first_line = s.lines().next().unwrap();
        assert_eq!(first_line, "X/#d");
        assert!(s.contains("idle"));
    }

    #[test]
    fn down_node_glyph() {
        let mut c = Cluster::new(ClusterSpec::test_small());
        c.set_down(NodeId(0)).unwrap();
        assert_eq!(render_occupancy(&c, 4).lines().next().unwrap(), "!...");
    }

    #[test]
    fn wraps_rows_and_handles_remainders() {
        let c = Cluster::new(ClusterSpec::test_small()); // 4 nodes
        let s = render_occupancy(&c, 3);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "...");
        assert_eq!(lines[1], ".");
        assert_eq!(lines.len(), 3); // 2 rows + legend
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        render_occupancy(&Cluster::new(ClusterSpec::test_small()), 0);
    }
}
