//! Static description of a cluster's hardware: node shape and node count.

use serde::{Deserialize, Serialize};

/// Hardware shape of a single compute node.
///
/// The paper's testbed nodes are dual-socket Intel Xeon machines with two
/// hardware threads per core (SMT-2); [`NodeSpec::trinity_like`] mirrors
/// that shape. All nodes in a cluster are homogeneous, matching the
/// partition-of-identical-nodes deployment the study targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Number of CPU sockets per node.
    pub sockets: u8,
    /// Number of physical cores per socket.
    pub cores_per_socket: u16,
    /// Hardware threads per core (SMT width). `2` enables hyper-thread
    /// oversubscription, the sharing mechanism studied in the paper.
    pub smt: u8,
    /// Usable memory per node in MiB.
    pub mem_mib: u64,
}

impl NodeSpec {
    /// A node shaped like the paper's evaluation platform: 2 sockets ×
    /// 16 cores, SMT-2, 128 GiB.
    pub const fn trinity_like() -> Self {
        NodeSpec {
            sockets: 2,
            cores_per_socket: 16,
            smt: 2,
            mem_mib: 128 * 1024,
        }
    }

    /// A small node useful in tests: 1 socket × 4 cores, SMT-2, 16 GiB.
    pub const fn tiny() -> Self {
        NodeSpec {
            sockets: 1,
            cores_per_socket: 4,
            smt: 2,
            mem_mib: 16 * 1024,
        }
    }

    /// Total physical cores on the node.
    #[inline]
    pub const fn cores(&self) -> u32 {
        self.sockets as u32 * self.cores_per_socket as u32
    }

    /// Total hardware threads on the node (`cores × smt`).
    #[inline]
    pub const fn hw_threads(&self) -> u32 {
        self.cores() * self.smt as u32
    }

    /// Number of share lanes: how many jobs can co-reside on the node when
    /// each takes one hardware thread per core.
    #[inline]
    pub const fn lanes(&self) -> u8 {
        self.smt
    }

    /// Validates the spec, returning a human-readable reason on failure.
    pub fn validate(&self) -> Result<(), String> {
        if self.sockets == 0 {
            return Err("node must have at least one socket".into());
        }
        if self.cores_per_socket == 0 {
            return Err("node must have at least one core per socket".into());
        }
        if self.smt == 0 {
            return Err("SMT width must be at least 1".into());
        }
        if self.mem_mib == 0 {
            return Err("node must have memory".into());
        }
        Ok(())
    }
}

impl Default for NodeSpec {
    fn default() -> Self {
        NodeSpec::trinity_like()
    }
}

/// Static description of a whole cluster: `node_count` identical nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of compute nodes.
    pub node_count: u32,
    /// Shape of every node.
    pub node: NodeSpec,
}

impl ClusterSpec {
    /// Creates a spec with `node_count` nodes of the given shape.
    pub const fn new(node_count: u32, node: NodeSpec) -> Self {
        ClusterSpec { node_count, node }
    }

    /// The canonical evaluation cluster used by the experiment harness:
    /// 128 Trinity-like nodes.
    pub const fn evaluation() -> Self {
        ClusterSpec::new(128, NodeSpec::trinity_like())
    }

    /// A 4-node cluster of tiny nodes for unit tests.
    pub const fn test_small() -> Self {
        ClusterSpec::new(4, NodeSpec::tiny())
    }

    /// Total physical cores in the cluster.
    #[inline]
    pub const fn total_cores(&self) -> u64 {
        self.node_count as u64 * self.node.cores() as u64
    }

    /// Total hardware threads in the cluster.
    #[inline]
    pub const fn total_hw_threads(&self) -> u64 {
        self.node_count as u64 * self.node.hw_threads() as u64
    }

    /// Validates the spec.
    pub fn validate(&self) -> Result<(), String> {
        if self.node_count == 0 {
            return Err("cluster must have at least one node".into());
        }
        self.node.validate()
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec::evaluation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trinity_like_counts() {
        let n = NodeSpec::trinity_like();
        assert_eq!(n.cores(), 32);
        assert_eq!(n.hw_threads(), 64);
        assert_eq!(n.lanes(), 2);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn cluster_totals() {
        let c = ClusterSpec::evaluation();
        assert_eq!(c.total_cores(), 128 * 32);
        assert_eq!(c.total_hw_threads(), 128 * 64);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut n = NodeSpec::tiny();
        n.smt = 0;
        assert!(n.validate().is_err());
        n = NodeSpec::tiny();
        n.sockets = 0;
        assert!(n.validate().is_err());
        n = NodeSpec::tiny();
        n.cores_per_socket = 0;
        assert!(n.validate().is_err());
        n = NodeSpec::tiny();
        n.mem_mib = 0;
        assert!(n.validate().is_err());

        let c = ClusterSpec::new(0, NodeSpec::tiny());
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_is_evaluation_cluster() {
        assert_eq!(ClusterSpec::default(), ClusterSpec::evaluation());
    }
}
