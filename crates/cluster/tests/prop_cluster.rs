//! Property tests: the cluster's allocation table, node lane state, and
//! capacity indices stay mutually consistent under arbitrary interleavings
//! of allocate/release/drain/resume operations.

use nodeshare_cluster::{AllocError, Cluster, ClusterSpec, JobId, NodeId, NodeSpec};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    AllocExclusive { job: u64, nodes: Vec<u32>, mem: u64 },
    AllocShared { job: u64, nodes: Vec<u32>, mem: u64 },
    Release { job: u64 },
    Drain { node: u32 },
    Resume { node: u32 },
}

const NODES: u32 = 6;

fn op_strategy() -> impl Strategy<Value = Op> {
    let node = 0..NODES;
    let nodes = prop::collection::vec(0..NODES, 1..4);
    let job = 0u64..12;
    let mem = 0u64..(NodeSpec::tiny().mem_mib + 1024);
    prop_oneof![
        (job.clone(), nodes.clone(), mem.clone())
            .prop_map(|(job, nodes, mem)| Op::AllocExclusive { job, nodes, mem }),
        (job.clone(), nodes, mem).prop_map(|(job, nodes, mem)| Op::AllocShared { job, nodes, mem }),
        job.prop_map(|job| Op::Release { job }),
        node.clone().prop_map(|node| Op::Drain { node }),
        node.prop_map(|node| Op::Resume { node }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// After every operation — success or failure — all invariants hold,
    /// and failures leave state unchanged (atomicity).
    #[test]
    fn invariants_hold_under_arbitrary_ops(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut c = Cluster::new(ClusterSpec::new(NODES, NodeSpec::tiny()));
        for op in ops {
            let before_allocs = c.allocation_count();
            let before_busy = c.busy_hw_threads();
            match op {
                Op::AllocExclusive { job, nodes, mem } => {
                    let ids: Vec<NodeId> = nodes.iter().copied().map(NodeId).collect();
                    if c.allocate_exclusive(JobId(job), &ids, mem).is_err() {
                        prop_assert_eq!(c.allocation_count(), before_allocs);
                        prop_assert_eq!(c.busy_hw_threads(), before_busy);
                    }
                }
                Op::AllocShared { job, nodes, mem } => {
                    let ids: Vec<NodeId> = nodes.iter().copied().map(NodeId).collect();
                    if c.allocate_shared(JobId(job), &ids, mem).is_err() {
                        prop_assert_eq!(c.allocation_count(), before_allocs);
                        prop_assert_eq!(c.busy_hw_threads(), before_busy);
                    }
                }
                Op::Release { job } => {
                    let had = c.allocation(JobId(job)).is_some();
                    let res = c.release(JobId(job));
                    prop_assert_eq!(res.is_ok(), had);
                }
                Op::Drain { node } => { c.drain(NodeId(node)).unwrap(); }
                Op::Resume { node } => { c.resume(NodeId(node)).unwrap(); }
            }
            if let Err(e) = c.check_invariants() {
                return Err(TestCaseError::fail(e));
            }
        }
        // Releasing everything returns the cluster to full idle capacity.
        let jobs: Vec<JobId> = c.allocations().map(|a| a.job).collect();
        for j in jobs {
            c.release(j).unwrap();
        }
        prop_assert_eq!(c.busy_hw_threads(), 0);
        prop_assert_eq!(c.busy_cores(), 0);
        c.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// Memory is conserved: the sum of per-node used memory equals the sum
    /// over live allocations of `mem_per_node × node_count`.
    #[test]
    fn memory_is_conserved(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut c = Cluster::new(ClusterSpec::new(NODES, NodeSpec::tiny()));
        for op in ops {
            match op {
                Op::AllocExclusive { job, nodes, mem } => {
                    let ids: Vec<NodeId> = nodes.iter().copied().map(NodeId).collect();
                    let _ = c.allocate_exclusive(JobId(job), &ids, mem);
                }
                Op::AllocShared { job, nodes, mem } => {
                    let ids: Vec<NodeId> = nodes.iter().copied().map(NodeId).collect();
                    let _ = c.allocate_shared(JobId(job), &ids, mem);
                }
                Op::Release { job } => { let _ = c.release(JobId(job)); }
                Op::Drain { node } => { c.drain(NodeId(node)).unwrap(); }
                Op::Resume { node } => { c.resume(NodeId(node)).unwrap(); }
            }
            let node_view: u64 = c.nodes().iter().map(|n| n.mem_used()).sum();
            let alloc_view: u64 = c
                .allocations()
                .map(|a| a.mem_per_node * a.node_count() as u64)
                .sum();
            prop_assert_eq!(node_view, alloc_view);
        }
    }

    /// A node never hosts more jobs than its SMT width, and never hosts the
    /// same job on two lanes.
    #[test]
    fn smt_bound_is_respected(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut c = Cluster::new(ClusterSpec::new(NODES, NodeSpec::tiny()));
        for op in ops {
            match op {
                Op::AllocExclusive { job, nodes, mem } => {
                    let ids: Vec<NodeId> = nodes.iter().copied().map(NodeId).collect();
                    let _ = c.allocate_exclusive(JobId(job), &ids, mem);
                }
                Op::AllocShared { job, nodes, mem } => {
                    let ids: Vec<NodeId> = nodes.iter().copied().map(NodeId).collect();
                    let _ = c.allocate_shared(JobId(job), &ids, mem);
                }
                Op::Release { job } => { let _ = c.release(JobId(job)); }
                _ => {}
            }
            for n in c.nodes() {
                let occ = n.occupants();
                prop_assert!(occ.len() <= NodeSpec::tiny().smt as usize);
                for j in &occ {
                    // lanes_of is deduplicated occupancy: a shared job holds
                    // exactly one lane per node, an exclusive job all lanes.
                    let lanes = n.lanes_of(*j).len();
                    prop_assert!(lanes == 1 || lanes == NodeSpec::tiny().smt as usize);
                }
            }
        }
    }
}

#[test]
fn shared_then_exclusive_conflict_is_clean() {
    let mut c = Cluster::new(ClusterSpec::test_small());
    c.allocate_shared(JobId(1), &[NodeId(0)], 0).unwrap();
    let err = c.allocate_exclusive(JobId(2), &[NodeId(0)], 0).unwrap_err();
    assert!(matches!(err, AllocError::Node(_)));
    c.check_invariants().unwrap();
}
