#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! # nodeshare-perf
//!
//! Application performance modeling for the node-sharing study: resource
//! demand vectors, a saturating-bottleneck SMT contention model, the
//! NERSC Trinity mini-app catalog, a precomputed pairwise co-run matrix,
//! and scheduler-side slowdown predictors.
//!
//! The paper measured mini-apps on real SMT-2 nodes; this crate replaces
//! the hardware with a calibrated analytical model that preserves the
//! pair structure driving the paper's results (see DESIGN.md):
//! complementary pairs co-run at near-full speed, same-bottleneck pairs
//! split their saturated resource.
//!
//! ```
//! use nodeshare_perf::{AppCatalog, ContentionModel, PairMatrix};
//!
//! let catalog = AppCatalog::trinity();
//! let matrix = PairMatrix::build(&catalog, &ContentionModel::calibrated());
//! let dft = catalog.by_name("miniDFT").unwrap().id;
//! let amg = catalog.by_name("AMG").unwrap().id;
//! // Compute-bound × memory-bound shares well:
//! assert!(matrix.combined_throughput(dft, amg) > 1.4);
//! ```

pub mod calibrate;
pub mod contention;
pub mod pair;
pub mod predict;
pub mod profile;
pub mod resources;
pub mod trinity;
pub mod truth;

pub use calibrate::{fit_demands, CalibrateOptions, CalibrationResult};
pub use contention::{ContentionModel, PairRates};
pub use pair::PairMatrix;
pub use predict::Predictor;
pub use profile::{AppClass, AppId, AppProfile};
pub use resources::{Resource, ResourceVector};
pub use trinity::AppCatalog;
pub use truth::CoRunTruth;
