//! The saturating-bottleneck co-run contention model.
//!
//! Two jobs sharing a node via hyper-thread lanes contend on each modeled
//! resource. For every resource the model grants each job a **max-min
//! fair** share of node capacity: a job demanding no more than its fair
//! share receives its full demand; the remainder goes to the heavier
//! demander. A job's rate on that resource is `granted / demanded`, bent by
//! a per-resource *hardness* exponent (bandwidth is a hard ceiling, cache
//! capacity degrades softly). The job's overall co-run rate is the minimum
//! over resources (bottleneck law) times a constant SMT co-residency tax
//! for the statically partitioned core structures (ROB, load/store queues).
//!
//! This reproduces the qualitative pair structure the paper exploits:
//! complementary pairs (compute × memory) run at near-full speed — the "no
//! overhead" observation — while same-bottleneck pairs split their
//! saturated resource and slow to roughly half speed each.

use crate::resources::{Resource, ResourceVector};
use serde::{Deserialize, Serialize};

/// Co-run rates of a job pair, relative to each job's exclusive rate 1.0.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PairRates {
    /// Rate of the first job (fraction of its exclusive speed).
    pub rate_a: f64,
    /// Rate of the second job.
    pub rate_b: f64,
}

impl PairRates {
    /// Node throughput relative to an exclusive node: `rate_a + rate_b`.
    ///
    /// Values above 1.0 mean sharing beats exclusive allocation on this
    /// node; 2.0 would be perfectly free co-residency.
    #[inline]
    pub fn combined_throughput(&self) -> f64 {
        self.rate_a + self.rate_b
    }

    /// Runtime dilation of job A: `1 / rate_a`.
    #[inline]
    pub fn dilation_a(&self) -> f64 {
        1.0 / self.rate_a
    }

    /// Runtime dilation of job B.
    #[inline]
    pub fn dilation_b(&self) -> f64 {
        1.0 / self.rate_b
    }

    /// The pair with roles swapped.
    #[inline]
    pub fn swapped(&self) -> PairRates {
        PairRates {
            rate_a: self.rate_b,
            rate_b: self.rate_a,
        }
    }
}

/// Tunable parameters of the contention model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ContentionModel {
    /// Per-resource hardness exponent: the per-resource rate factor is
    /// `(granted/demanded)^hardness`. `1.0` = hard proportional ceiling
    /// (bandwidth-like), `< 1.0` = soft degradation (cache-like).
    pub hardness: [f64; Resource::COUNT],
    /// Multiplicative rate tax each job pays whenever a core's second
    /// hardware thread is active (static partitioning of core buffers).
    pub smt_tax: f64,
    /// Floor on any co-run rate; keeps pathological demand vectors from
    /// producing zero progress.
    pub min_rate: f64,
}

impl ContentionModel {
    /// Calibrated default: hard issue/bandwidth/network ceilings, soft LLC,
    /// 5% SMT co-residency tax.
    pub const fn calibrated() -> Self {
        ContentionModel {
            // index order: issue, membw, llc, net
            hardness: [1.0, 1.0, 0.45, 1.0],
            smt_tax: 0.95,
            min_rate: 0.05,
        }
    }

    /// Max-min fair split of one unit of capacity between demands `a`, `b`
    /// (used directly by tests; the general path is `water_fill`).
    #[cfg(test)]
    pub(crate) fn fair_share(a: f64, b: f64) -> (f64, f64) {
        let mut grants = [0.0; 2];
        Self::water_fill(&[a, b], &mut grants);
        (grants[0], grants[1])
    }

    /// General max-min fair (water-filling) split of one unit of capacity
    /// among `demands`, writing grants in matching order.
    ///
    /// Light demanders receive their full demand when it fits under the
    /// running fair share; heavy demanders split the remainder equally.
    fn water_fill(demands: &[f64], grants: &mut [f64]) {
        debug_assert_eq!(demands.len(), grants.len());
        let n = demands.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| demands[i].total_cmp(&demands[j]));
        let mut remaining = 1.0f64;
        let mut left = n;
        for &i in &order {
            let fair = remaining / left as f64;
            let grant = demands[i].min(fair);
            grants[i] = grant;
            remaining -= grant;
            left -= 1;
        }
    }

    /// Rates of `n ≥ 1` jobs co-resident on one node (one lane each).
    ///
    /// Generalizes [`ContentionModel::pair_rates`] to wider SMT: every
    /// resource is split max-min fairly among all residents, each job's
    /// rate is its bottleneck share (bent by the per-resource hardness)
    /// times the SMT co-residency tax. A job running alone has rate 1.0 —
    /// no tax without a co-runner.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn co_run_rates(&self, demands: &[&ResourceVector]) -> Vec<f64> {
        assert!(!demands.is_empty(), "need at least one resident");
        let n = demands.len();
        if n == 1 {
            return vec![1.0];
        }
        let mut rates = vec![self.smt_tax; n];
        let mut wants = vec![0.0f64; n];
        let mut grants = vec![0.0f64; n];
        for r in Resource::ALL {
            for (w, d) in wants.iter_mut().zip(demands) {
                *w = d.get(r);
            }
            Self::water_fill(&wants, &mut grants);
            let h = self.hardness[r.index()];
            for ((rate, &g), &w) in rates.iter_mut().zip(&grants).zip(&wants) {
                if w > 0.0 {
                    *rate = rate.min(self.smt_tax * (g / w).powf(h));
                }
            }
        }
        for rate in &mut rates {
            *rate = rate.max(self.min_rate);
        }
        rates
    }

    /// Rates of two jobs co-resident on one node (one lane each).
    pub fn pair_rates(&self, a: &ResourceVector, b: &ResourceVector) -> PairRates {
        let rates = self.co_run_rates(&[a, b]);
        PairRates {
            rate_a: rates[0],
            rate_b: rates[1],
        }
    }

    /// Rate of a job running alone with one lane: 1.0 by definition (the
    /// exclusive configuration *is* one rank per core; the second
    /// hyper-thread lane idles).
    #[inline]
    pub fn solo_rate(&self) -> f64 {
        1.0
    }

    /// Throughput of an app co-resident with a copy of itself, relative to
    /// one exclusive node — the classical "SMT self speedup" reported in
    /// the T1 characterization.
    pub fn smt_self_speedup(&self, demand: &ResourceVector) -> f64 {
        self.pair_rates(demand, demand).combined_throughput()
    }
}

impl Default for ContentionModel {
    fn default() -> Self {
        ContentionModel::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ContentionModel {
        ContentionModel::calibrated()
    }

    fn compute() -> ResourceVector {
        ResourceVector::new(0.85, 0.20, 0.30, 0.15)
    }

    fn memory() -> ResourceVector {
        ResourceVector::new(0.30, 0.90, 0.55, 0.20)
    }

    #[test]
    fn complementary_pair_has_low_overhead() {
        let r = model().pair_rates(&compute(), &memory());
        // Memory app keeps most of its speed; compute app pays modestly.
        assert!(r.rate_b > 0.80, "memory app rate {}", r.rate_b);
        assert!(r.rate_a > 0.65, "compute app rate {}", r.rate_a);
        assert!(r.combined_throughput() > 1.5);
    }

    #[test]
    fn memory_memory_pair_splits_bandwidth() {
        let r = model().pair_rates(&memory(), &memory());
        assert!((r.rate_a - r.rate_b).abs() < 1e-12, "symmetric pair");
        // 0.9 + 0.9 demand on bandwidth → each gets 0.5 → ~0.55 rate.
        assert!(r.rate_a < 0.60, "rate {}", r.rate_a);
        assert!(r.combined_throughput() < 1.2);
    }

    #[test]
    fn compute_compute_pair_shares_issue_slots() {
        let r = model().pair_rates(&compute(), &compute());
        assert!(r.rate_a < 0.65);
        assert!(r.combined_throughput() > 1.0 && r.combined_throughput() < 1.4);
    }

    #[test]
    fn rates_are_bounded() {
        let hungry = ResourceVector::new(1.0, 1.0, 1.0, 1.0);
        let r = model().pair_rates(&hungry, &hungry);
        assert!(r.rate_a >= model().min_rate);
        assert!(r.rate_a <= 1.0 && r.rate_b <= 1.0);
    }

    #[test]
    fn zero_demand_job_pays_only_the_smt_tax() {
        let idle = ResourceVector::zero();
        let r = model().pair_rates(&idle, &memory());
        assert_eq!(r.rate_a, model().smt_tax);
        // The memory app is unbothered by an idle co-runner beyond the tax.
        assert_eq!(r.rate_b, model().smt_tax);
    }

    #[test]
    fn fair_share_cases() {
        assert_eq!(ContentionModel::fair_share(0.3, 0.4), (0.3, 0.4));
        let (ga, gb) = ContentionModel::fair_share(0.3, 0.9);
        assert_eq!((ga, gb), (0.3, 0.7));
        let (ga, gb) = ContentionModel::fair_share(0.9, 0.3);
        assert_eq!((ga, gb), (0.7, 0.3));
        let (ga, gb) = ContentionModel::fair_share(0.8, 0.8);
        assert_eq!((ga, gb), (0.5, 0.5));
    }

    #[test]
    fn swap_symmetry() {
        let r = model().pair_rates(&compute(), &memory());
        let s = model().pair_rates(&memory(), &compute());
        assert!((r.rate_a - s.rate_b).abs() < 1e-12);
        assert!((r.rate_b - s.rate_a).abs() < 1e-12);
        assert_eq!(r.swapped(), s);
    }

    #[test]
    fn self_speedup_matches_pair_model() {
        let m = model();
        let s = m.smt_self_speedup(&memory());
        let p = m.pair_rates(&memory(), &memory());
        assert!((s - p.combined_throughput()).abs() < 1e-12);
    }

    #[test]
    fn nway_reduces_to_pairs_and_solo() {
        let m = model();
        let solo = m.co_run_rates(&[&memory()]);
        assert_eq!(solo, vec![1.0]);
        let pair = m.pair_rates(&compute(), &memory());
        let nway = m.co_run_rates(&[&compute(), &memory()]);
        assert_eq!(nway, vec![pair.rate_a, pair.rate_b]);
    }

    #[test]
    fn three_memory_apps_split_bandwidth_three_ways() {
        let m = model();
        let mem = memory();
        let rates = m.co_run_rates(&[&mem, &mem, &mem]);
        // 3 × 0.9 bandwidth demand → each granted 1/3 → rate ≈ tax/2.7.
        let expected = m.smt_tax * (1.0 / 3.0) / 0.9;
        for r in rates {
            assert!((r - expected).abs() < 1e-12, "rate {r} vs {expected}");
        }
    }

    #[test]
    fn adding_a_resident_never_speeds_anyone_up() {
        let m = model();
        let (c, mem) = (compute(), memory());
        let two = m.co_run_rates(&[&c, &mem]);
        let three = m.co_run_rates(&[&c, &mem, &mem]);
        assert!(three[0] <= two[0] + 1e-12);
        assert!(three[1] <= two[1] + 1e-12);
    }

    #[test]
    fn light_fourth_resident_is_cheap() {
        let m = model();
        let idle = ResourceVector::new(0.05, 0.05, 0.05, 0.05);
        let (c, mem) = (compute(), memory());
        let base = m.co_run_rates(&[&c, &mem]);
        let with_idle = m.co_run_rates(&[&c, &mem, &idle]);
        // The light job barely moves the incumbents.
        assert!((with_idle[0] - base[0]).abs() < 0.08);
        assert!((with_idle[1] - base[1]).abs() < 0.08);
        // And it runs nearly tax-free itself.
        assert!(with_idle[2] > 0.9 * m.smt_tax);
    }

    #[test]
    #[should_panic(expected = "at least one resident")]
    fn nway_rejects_empty() {
        model().co_run_rates(&[]);
    }

    #[test]
    fn dilation_is_reciprocal_rate() {
        let r = PairRates {
            rate_a: 0.5,
            rate_b: 0.8,
        };
        assert!((r.dilation_a() - 2.0).abs() < 1e-12);
        assert!((r.dilation_b() - 1.25).abs() < 1e-12);
    }
}
