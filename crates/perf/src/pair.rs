//! Precomputed pairwise co-run rate matrix over an application catalog.
//!
//! The simulation engine consults this matrix on every allocation change,
//! so rates are computed once per catalog and stored densely.

use crate::contention::{ContentionModel, PairRates};
use crate::profile::AppId;
use crate::trinity::AppCatalog;
use serde::{Deserialize, Serialize};

/// Dense `n × n` matrix of co-run rates: `rate(a, b)` is the rate of app
/// `a` when co-resident with app `b` (1.0 = exclusive speed).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PairMatrix {
    n: usize,
    /// Row-major: `rates[a * n + b]` = rate of `a` next to `b`.
    rates: Vec<f64>,
}

impl PairMatrix {
    /// A matrix where every co-run rate is the same constant — the shape
    /// of app-agnostic sharing mechanisms like gang time-slicing.
    pub fn uniform(n: usize, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        PairMatrix {
            n,
            rates: vec![rate; n * n],
        }
    }

    /// Computes the matrix for a catalog under a contention model.
    pub fn build(catalog: &AppCatalog, model: &ContentionModel) -> Self {
        let n = catalog.len();
        let mut rates = vec![1.0; n * n];
        for a in catalog.iter() {
            for b in catalog.iter() {
                let pr = model.pair_rates(&a.demand, &b.demand);
                rates[a.id.index() * n + b.id.index()] = pr.rate_a;
            }
        }
        PairMatrix { n, rates }
    }

    /// Number of apps covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for an empty matrix.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Rate of app `a` when co-resident with app `b`.
    ///
    /// # Panics
    /// Panics on ids outside the catalog the matrix was built from.
    #[inline]
    pub fn rate(&self, a: AppId, b: AppId) -> f64 {
        self.rates[a.index() * self.n + b.index()]
    }

    /// Both rates of the ordered pair `(a, b)`.
    #[inline]
    pub fn pair(&self, a: AppId, b: AppId) -> PairRates {
        PairRates {
            rate_a: self.rate(a, b),
            rate_b: self.rate(b, a),
        }
    }

    /// Combined node throughput of the pair relative to exclusive use.
    #[inline]
    pub fn combined_throughput(&self, a: AppId, b: AppId) -> f64 {
        self.rate(a, b) + self.rate(b, a)
    }

    /// The partner maximizing combined throughput with `a`, among `candidates`.
    pub fn best_partner<'c>(
        &self,
        a: AppId,
        candidates: impl IntoIterator<Item = &'c AppId>,
    ) -> Option<(AppId, f64)> {
        candidates
            .into_iter()
            .map(|&b| (b, self.combined_throughput(a, b)))
            .max_by(|x, y| x.1.total_cmp(&y.1))
    }

    /// Mean combined throughput over all ordered pairs — a scalar summary
    /// of how much co-scheduling headroom a catalog offers.
    pub fn mean_combined_throughput(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let mut sum = 0.0;
        for a in 0..self.n {
            for b in 0..self.n {
                sum += self.rates[a * self.n + b] + self.rates[b * self.n + a];
            }
        }
        sum / (self.n * self.n) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> (AppCatalog, PairMatrix) {
        let c = AppCatalog::trinity();
        let m = PairMatrix::build(&c, &ContentionModel::calibrated());
        (c, m)
    }

    #[test]
    fn matrix_matches_direct_model() {
        let (c, m) = matrix();
        let model = ContentionModel::calibrated();
        for a in c.iter() {
            for b in c.iter() {
                let direct = model.pair_rates(&a.demand, &b.demand);
                assert!((m.rate(a.id, b.id) - direct.rate_a).abs() < 1e-12);
                assert!((m.pair(a.id, b.id).rate_b - direct.rate_b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn complementary_beats_same_class() {
        let (c, m) = matrix();
        let dft = c.by_name("miniDFT").unwrap().id; // compute-bound
        let amg = c.by_name("AMG").unwrap().id; // memory-bound
        let fe = c.by_name("miniFE").unwrap().id; // memory-bound
        assert!(m.combined_throughput(dft, amg) > m.combined_throughput(fe, amg));
        assert!(m.combined_throughput(dft, amg) > 1.4);
        assert!(m.combined_throughput(fe, amg) < 1.25);
    }

    #[test]
    fn best_partner_for_memory_app_is_computeish() {
        let (c, m) = matrix();
        let amg = c.by_name("AMG").unwrap().id;
        let ids: Vec<AppId> = c.ids().filter(|&i| i != amg).collect();
        let (best, thr) = m.best_partner(amg, &ids).unwrap();
        let best_class = c.profile(best).class;
        assert_eq!(best_class, crate::profile::AppClass::ComputeBound);
        assert!(thr > 1.5);
    }

    #[test]
    fn mean_combined_throughput_in_sharing_band() {
        let (_, m) = matrix();
        let mean = m.mean_combined_throughput();
        // The catalog offers real but not free sharing headroom.
        assert!(mean > 1.1 && mean < 1.7, "mean {mean}");
    }

    #[test]
    fn rates_bounded_by_one() {
        let (c, m) = matrix();
        for a in c.ids() {
            for b in c.ids() {
                let r = m.rate(a, b);
                assert!(r > 0.0 && r <= 1.0);
            }
        }
    }

    #[test]
    fn empty_candidates_yield_none() {
        let (_, m) = matrix();
        assert!(m.best_partner(AppId(0), &[]).is_none());
        assert!(!m.is_empty());
        assert_eq!(m.len(), 8);
    }
}
