//! Node-level shared resources and per-application demand vectors.
//!
//! Demands are *normalized*: `1.0` means "all of the node's capacity of
//! that resource". They are measured (in the paper: profiled; here:
//! calibrated, see [`crate::trinity`]) with the application running alone
//! on one hardware-thread lane per core — the standard 1-rank-per-core HPC
//! configuration that exclusive allocations use.

use serde::{Deserialize, Serialize};

/// A shared node resource that co-running jobs contend on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resource {
    /// Core pipeline issue slots. A single hardware thread rarely fills a
    /// core's issue width; the slack is what the second SMT lane can use.
    IssueSlots,
    /// Main-memory bandwidth — the classic saturated resource for
    /// memory-bound mini-apps.
    MemBandwidth,
    /// Last-level cache capacity. Contention here degrades softly (rising
    /// miss rate), not as a hard ceiling.
    LlcCapacity,
    /// Network-interface bandwidth for communication-heavy apps.
    Network,
}

impl Resource {
    /// All resources, in vector index order.
    pub const ALL: [Resource; 4] = [
        Resource::IssueSlots,
        Resource::MemBandwidth,
        Resource::LlcCapacity,
        Resource::Network,
    ];

    /// Number of modeled resources.
    pub const COUNT: usize = 4;

    /// Dense index of the resource inside a [`ResourceVector`].
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Resource::IssueSlots => 0,
            Resource::MemBandwidth => 1,
            Resource::LlcCapacity => 2,
            Resource::Network => 3,
        }
    }

    /// Short label used in tables.
    pub const fn label(self) -> &'static str {
        match self {
            Resource::IssueSlots => "issue",
            Resource::MemBandwidth => "membw",
            Resource::LlcCapacity => "llc",
            Resource::Network => "net",
        }
    }
}

/// Per-resource demand of one application, normalized to node capacity.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResourceVector(pub [f64; Resource::COUNT]);

impl ResourceVector {
    /// Builds a vector from named demands.
    pub const fn new(issue: f64, membw: f64, llc: f64, net: f64) -> Self {
        ResourceVector([issue, membw, llc, net])
    }

    /// A zero-demand vector.
    pub const fn zero() -> Self {
        ResourceVector([0.0; Resource::COUNT])
    }

    /// Demand for one resource.
    #[inline]
    pub fn get(&self, r: Resource) -> f64 {
        self.0[r.index()]
    }

    /// Mutable demand for one resource.
    #[inline]
    pub fn set(&mut self, r: Resource, v: f64) {
        self.0[r.index()] = v;
    }

    /// Element-wise sum (combined demand of co-runners).
    pub fn saturating_add(&self, other: &ResourceVector) -> ResourceVector {
        let mut out = [0.0; Resource::COUNT];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *o = a + b;
        }
        ResourceVector(out)
    }

    /// The resource with the highest demand — the app's own bottleneck.
    pub fn dominant(&self) -> Resource {
        let mut best = Resource::IssueSlots;
        let mut best_v = f64::NEG_INFINITY;
        for r in Resource::ALL {
            let v = self.get(r);
            if v > best_v {
                best_v = v;
                best = r;
            }
        }
        best
    }

    /// True when every demand lies in `[0, 1]`.
    pub fn is_valid(&self) -> bool {
        self.0.iter().all(|d| (0.0..=1.0).contains(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_all_agree() {
        for (i, r) in Resource::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn get_set_roundtrip() {
        let mut v = ResourceVector::zero();
        v.set(Resource::MemBandwidth, 0.8);
        assert_eq!(v.get(Resource::MemBandwidth), 0.8);
        assert_eq!(v.get(Resource::IssueSlots), 0.0);
    }

    #[test]
    fn add_is_elementwise() {
        let a = ResourceVector::new(0.1, 0.2, 0.3, 0.4);
        let b = ResourceVector::new(0.4, 0.3, 0.2, 0.1);
        let s = a.saturating_add(&b);
        assert_eq!(s.0, [0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn dominant_picks_largest() {
        let v = ResourceVector::new(0.3, 0.9, 0.5, 0.1);
        assert_eq!(v.dominant(), Resource::MemBandwidth);
        assert_eq!(ResourceVector::zero().dominant(), Resource::IssueSlots);
    }

    #[test]
    fn validity_bounds() {
        assert!(ResourceVector::new(0.0, 1.0, 0.5, 0.3).is_valid());
        assert!(!ResourceVector::new(-0.1, 0.5, 0.5, 0.5).is_valid());
        assert!(!ResourceVector::new(0.1, 1.5, 0.5, 0.5).is_valid());
    }

    #[test]
    fn labels_are_short_and_unique() {
        let labels: Vec<_> = Resource::ALL.iter().map(|r| r.label()).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels, dedup);
    }
}
