//! Application performance profiles.

use crate::resources::ResourceVector;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an application profile within a catalog.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AppId(pub u8);

impl AppId {
    /// Dense index into a catalog.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

impl fmt::Debug for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AppId({})", self.0)
    }
}

/// Coarse classification of an application's bottleneck, used by
/// class-based slowdown predictors and in the T1 characterization table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppClass {
    /// Pipeline/FLOP limited; leaves memory bandwidth idle.
    ComputeBound,
    /// Memory-bandwidth limited; leaves issue slots idle.
    MemoryBound,
    /// No single dominant resource.
    Balanced,
    /// Communication-heavy; network is a first-order concern.
    CommBound,
}

impl AppClass {
    /// Short label for tables.
    pub const fn label(self) -> &'static str {
        match self {
            AppClass::ComputeBound => "compute",
            AppClass::MemoryBound => "memory",
            AppClass::Balanced => "balanced",
            AppClass::CommBound => "comm",
        }
    }
}

/// A profiled application: its identity, resource demands, and memory
/// footprint.
///
/// `demand` is measured with the app running alone at one rank per core
/// (one hardware-thread lane), the configuration exclusive allocations use.
/// The app's *exclusive rate* is 1.0 by definition; all co-run rates are
/// relative to it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Catalog identifier.
    pub id: AppId,
    /// Human-readable name (e.g. `"miniFE"`).
    pub name: String,
    /// Coarse bottleneck class.
    pub class: AppClass,
    /// Normalized per-node resource demands at lane-solo execution.
    pub demand: ResourceVector,
    /// Memory footprint per node, MiB. Sharing requires both jobs' demands
    /// to fit in node memory.
    pub mem_per_node_mib: u64,
}

impl AppProfile {
    /// Validates profile ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("profile needs a name".into());
        }
        if !self.demand.is_valid() {
            return Err(format!("{}: demands must lie in [0,1]", self.name));
        }
        if self.mem_per_node_mib == 0 {
            return Err(format!("{}: memory footprint must be positive", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> AppProfile {
        AppProfile {
            id: AppId(0),
            name: "toy".into(),
            class: AppClass::Balanced,
            demand: ResourceVector::new(0.5, 0.5, 0.5, 0.2),
            mem_per_node_mib: 1024,
        }
    }

    #[test]
    fn valid_profile_passes() {
        assert!(profile().validate().is_ok());
    }

    #[test]
    fn invalid_profiles_fail() {
        let mut p = profile();
        p.name.clear();
        assert!(p.validate().is_err());

        let mut p = profile();
        p.demand = ResourceVector::new(1.2, 0.0, 0.0, 0.0);
        assert!(p.validate().is_err());

        let mut p = profile();
        p.mem_per_node_mib = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn class_labels() {
        assert_eq!(AppClass::ComputeBound.label(), "compute");
        assert_eq!(AppClass::MemoryBound.label(), "memory");
        assert_eq!(AppClass::Balanced.label(), "balanced");
        assert_eq!(AppClass::CommBound.label(), "comm");
    }

    #[test]
    fn app_id_display() {
        assert_eq!(AppId(3).to_string(), "app3");
        assert_eq!(AppId(3).index(), 3);
    }
}
