//! Ground-truth co-run rates for the simulation engine: pairwise lookups
//! served from a precomputed matrix, wider co-residency (SMT-4 and
//! beyond) evaluated through the n-way contention model on demand.

use crate::contention::ContentionModel;
use crate::pair::PairMatrix;
use crate::profile::AppId;
use crate::resources::ResourceVector;
use crate::trinity::AppCatalog;
use serde::{Deserialize, Serialize};

/// How co-resident jobs actually interact.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
enum Backing {
    /// SMT lane sharing priced by the contention model (the paper's
    /// mechanism): rates depend on *which* apps share.
    Smt {
        /// Contention model.
        model: ContentionModel,
        /// Demand vector per app id.
        demands: Vec<ResourceVector>,
    },
    /// Gang time-slicing (SLURM `OverSubscribe=FORCE` with gang
    /// scheduling): `n` co-residents each get `1/n` of the node minus a
    /// context-switch overhead — app-agnostic, throughput-neutral.
    TimeSlice {
        /// Fractional throughput lost to context switching and cache
        /// repopulation per slice.
        overhead: f64,
    },
}

/// The engine's oracle: what co-running actually does to each job.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoRunTruth {
    backing: Backing,
    pair: PairMatrix,
}

impl CoRunTruth {
    /// Builds the truth for a catalog under a contention model.
    pub fn build(catalog: &AppCatalog, model: &ContentionModel) -> Self {
        CoRunTruth {
            backing: Backing::Smt {
                model: *model,
                demands: catalog.iter().map(|a| a.demand).collect(),
            },
            pair: PairMatrix::build(catalog, model),
        }
    }

    /// Builds a gang time-slicing truth: any pair co-runs at
    /// `(1 − overhead) / 2` regardless of application identity.
    pub fn time_slicing(catalog: &AppCatalog, overhead: f64) -> Self {
        assert!((0.0..1.0).contains(&overhead), "overhead must be in [0, 1)");
        CoRunTruth {
            backing: Backing::TimeSlice { overhead },
            pair: PairMatrix::uniform(catalog.len(), (1.0 - overhead) / 2.0),
        }
    }

    /// The precomputed pairwise matrix (scheduler predictors and pairwise
    /// analyses use this directly).
    #[inline]
    pub fn pair_matrix(&self) -> &PairMatrix {
        &self.pair
    }

    /// The underlying contention model for SMT truths; `None` for
    /// time-slicing truths.
    #[inline]
    pub fn model(&self) -> Option<&ContentionModel> {
        match &self.backing {
            Backing::Smt { model, .. } => Some(model),
            Backing::TimeSlice { .. } => None,
        }
    }

    /// Number of applications covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.pair.len()
    }

    /// True when no applications are covered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pair.is_empty()
    }

    /// Rate of `app` when co-resident on one node with `corunners`
    /// (one hardware-thread lane each). Alone → 1.0; one co-runner →
    /// matrix lookup; more → n-way evaluation.
    pub fn rate_with(&self, app: AppId, corunners: &[AppId]) -> f64 {
        match corunners {
            [] => 1.0,
            [b] => self.pair.rate(app, *b),
            _ => match &self.backing {
                Backing::Smt { model, demands } => {
                    let mut stack: Vec<&ResourceVector> = Vec::with_capacity(corunners.len() + 1);
                    stack.push(&demands[app.index()]);
                    for b in corunners {
                        stack.push(&demands[b.index()]);
                    }
                    model.co_run_rates(&stack)[0]
                }
                Backing::TimeSlice { overhead } => (1.0 - overhead) / (corunners.len() + 1) as f64,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> (AppCatalog, CoRunTruth) {
        let c = AppCatalog::trinity();
        let t = CoRunTruth::build(&c, &ContentionModel::calibrated());
        (c, t)
    }

    #[test]
    fn solo_and_pair_match_the_matrix() {
        let (c, t) = truth();
        for a in c.ids() {
            assert_eq!(t.rate_with(a, &[]), 1.0);
            for b in c.ids() {
                assert_eq!(t.rate_with(a, &[b]), t.pair_matrix().rate(a, b));
            }
        }
        assert_eq!(t.len(), 8);
        assert!(!t.is_empty());
    }

    #[test]
    fn three_way_matches_direct_model_evaluation() {
        let (c, t) = truth();
        let model = ContentionModel::calibrated();
        let (a, b, d) = (
            c.profile(AppId(0)),
            c.profile(AppId(4)),
            c.profile(AppId(5)),
        );
        let direct = model.co_run_rates(&[&a.demand, &b.demand, &d.demand]);
        let via_truth = t.rate_with(a.id, &[b.id, d.id]);
        assert!((via_truth - direct[0]).abs() < 1e-12);
    }

    #[test]
    fn time_slicing_is_app_agnostic() {
        let c = AppCatalog::trinity();
        let t = CoRunTruth::time_slicing(&c, 0.05);
        assert!(t.model().is_none());
        for a in c.ids() {
            assert_eq!(t.rate_with(a, &[]), 1.0);
            for b in c.ids() {
                assert!((t.rate_with(a, &[b]) - 0.475).abs() < 1e-12);
            }
            // Three-way slicing: a third of the node each, minus overhead.
            let r = t.rate_with(a, &[AppId(0), AppId(1)]);
            assert!((r - 0.95 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "overhead must be")]
    fn time_slicing_rejects_full_overhead() {
        CoRunTruth::time_slicing(&AppCatalog::trinity(), 1.0);
    }

    #[test]
    fn wider_coresidency_is_never_faster() {
        let (c, t) = truth();
        for a in c.ids() {
            for b in c.ids() {
                for d in c.ids() {
                    assert!(
                        t.rate_with(a, &[b, d]) <= t.rate_with(a, &[b]) + 1e-12,
                        "{a} with [{b},{d}]"
                    );
                }
            }
        }
    }
}
