//! Profile calibration: recover per-application demand vectors from an
//! *observed* pairwise co-run rate matrix.
//!
//! The paper profiles mini-apps on real hardware. A site adopting node
//! sharing has the inverse problem: it can measure pairwise co-run rates
//! (run every pair once, time them) but wants demand vectors so the
//! contention model can *predict unmeasured combinations* (new apps,
//! n-way sharing on wider SMT). This module fits demand vectors by
//! cyclic coordinate descent with a golden-ratio-free plain grid+refine
//! line search — deterministic, dependency-free, and fast for catalog
//! sizes (seconds for tens of apps).
//!
//! Identifiability caveat: several demand vectors can induce the same
//! rate matrix (e.g. any resource nobody saturates is unconstrained), so
//! the quality measure is *reproduction error* (RMSE of rates), not
//! parameter recovery.

use crate::contention::ContentionModel;
use crate::resources::{Resource, ResourceVector};
use serde::{Deserialize, Serialize};

/// Options for the fitting loop.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CalibrateOptions {
    /// Maximum full coordinate-descent sweeps.
    pub max_sweeps: u32,
    /// Stop when a full sweep improves RMSE by less than this.
    pub tolerance: f64,
    /// Grid points per line search (refined once around the best point).
    pub grid: u32,
}

impl Default for CalibrateOptions {
    fn default() -> Self {
        CalibrateOptions {
            max_sweeps: 60,
            tolerance: 1e-7,
            grid: 21,
        }
    }
}

/// Result of a calibration run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CalibrationResult {
    /// Fitted demand vector per application (index order of the input).
    pub demands: Vec<ResourceVector>,
    /// Root-mean-square error between observed and reproduced rates.
    pub rmse: f64,
    /// Sweeps performed.
    pub sweeps: u32,
}

/// Fits demand vectors for `n` applications to an observed rate matrix.
///
/// `observed(a, b)` must return the measured rate of app `a` co-resident
/// with app `b` (1.0 = exclusive speed), for all `a, b < n`.
///
/// # Panics
/// Panics when `n == 0` or options are degenerate.
pub fn fit_demands(
    n: usize,
    observed: impl Fn(usize, usize) -> f64,
    model: &ContentionModel,
    opts: &CalibrateOptions,
) -> CalibrationResult {
    assert!(n > 0, "need at least one application");
    assert!(opts.grid >= 3, "grid too small");
    // Cache the observations.
    let obs: Vec<Vec<f64>> = (0..n)
        .map(|a| (0..n).map(|b| observed(a, b)).collect())
        .collect();

    // The bottleneck (min over resources) makes the error surface flat in
    // directions that are not currently binding, so coordinate descent is
    // sensitive to initialization: run from several deterministic starts
    // and keep the best. The starts bias different resources toward being
    // the initial bottleneck.
    let starts = [
        ResourceVector::new(0.5, 0.5, 0.5, 0.5),
        ResourceVector::new(0.8, 0.3, 0.3, 0.2),
        ResourceVector::new(0.3, 0.8, 0.4, 0.2),
        ResourceVector::new(0.2, 0.2, 0.2, 0.2),
    ];
    let mut demands = vec![starts[0]; n];

    // Error restricted to the rows and columns that involve `app` —
    // the only terms a change to `app`'s demand can affect.
    let local_error = |demands: &[ResourceVector], app: usize| -> f64 {
        let mut err = 0.0;
        for other in 0..n {
            // One evaluation covers both ordered directions of the pair:
            // rate_a is (app | other), rate_b is (other | app).
            let r = model.pair_rates(&demands[app], &demands[other]);
            let d1 = r.rate_a - obs[app][other];
            let d2 = r.rate_b - obs[other][app];
            err += d1 * d1 + d2 * d2;
        }
        err
    };

    let total_error = |demands: &[ResourceVector]| -> f64 {
        let mut err = 0.0;
        for a in 0..n {
            for b in 0..n {
                let r = model.pair_rates(&demands[a], &demands[b]);
                let d = r.rate_a - obs[a][b];
                err += d * d;
            }
        }
        err
    };

    let mut best_total = f64::INFINITY;
    let mut best_demands = demands.clone();
    let mut total_sweeps = 0u32;

    for start in &starts {
        demands = vec![*start; n];
        let mut prev = total_error(&demands);
        for sweep in 0..opts.max_sweeps {
            total_sweeps += 1;
            for app in 0..n {
                for res in Resource::ALL {
                    // Coarse grid over [0, 1], then two refinements
                    // around the best point.
                    let mut lo = 0.0f64;
                    let mut hi = 1.0f64;
                    for _refine in 0..3 {
                        let mut best_v = demands[app].get(res);
                        let mut best_e = local_error(&demands, app);
                        for g in 0..opts.grid {
                            let v = lo + (hi - lo) * g as f64 / (opts.grid - 1) as f64;
                            demands[app].set(res, v);
                            let e = local_error(&demands, app);
                            if e < best_e {
                                best_e = e;
                                best_v = v;
                            }
                        }
                        demands[app].set(res, best_v);
                        let step = (hi - lo) / (opts.grid - 1) as f64;
                        lo = (best_v - step).max(0.0);
                        hi = (best_v + step).min(1.0);
                    }
                }
            }
            let e = total_error(&demands);
            // Give descent a few sweeps before trusting a small delta —
            // bottleneck crossings unlock progress late.
            if sweep >= 4 && prev - e < opts.tolerance {
                prev = e;
                break;
            }
            prev = e;
        }
        if prev < best_total {
            best_total = prev;
            best_demands = demands.clone();
        }
    }

    CalibrationResult {
        rmse: (best_total / (n * n) as f64).sqrt(),
        demands: best_demands,
        sweeps: total_sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::PairMatrix;
    use crate::trinity::AppCatalog;

    #[test]
    fn recovers_the_trinity_matrix() {
        let catalog = AppCatalog::trinity();
        let model = ContentionModel::calibrated();
        let truth = PairMatrix::build(&catalog, &model);
        let result = fit_demands(
            catalog.len(),
            |a, b| truth.rate(crate::AppId(a as u8), crate::AppId(b as u8)),
            &model,
            &CalibrateOptions::default(),
        );
        assert!(result.rmse < 0.02, "rmse {}", result.rmse);
        // The fitted demands reproduce held-out structure: the best
        // partner of the most bandwidth-hungry app is compute-leaning.
        let refit = |a: usize, b: usize| {
            model
                .pair_rates(&result.demands[a], &result.demands[b])
                .rate_a
        };
        for a in 0..catalog.len() {
            for b in 0..catalog.len() {
                let t = truth.rate(crate::AppId(a as u8), crate::AppId(b as u8));
                assert!(
                    (refit(a, b) - t).abs() < 0.06,
                    "pair ({a},{b}): {t} vs {}",
                    refit(a, b)
                );
            }
        }
    }

    #[test]
    fn single_app_fits_trivially() {
        let model = ContentionModel::calibrated();
        // An app that self-pairs at exactly the SMT tax: zero demand fits.
        let result = fit_demands(
            1,
            |_, _| model.smt_tax,
            &model,
            &CalibrateOptions::default(),
        );
        assert!(result.rmse < 1e-6);
    }

    #[test]
    fn converges_quickly_on_smooth_targets() {
        let model = ContentionModel::calibrated();
        let result = fit_demands(
            3,
            |a, b| if a == b { 0.6 } else { 0.8 },
            &model,
            &CalibrateOptions::default(),
        );
        assert!(result.sweeps <= 240);
        assert!(result.rmse < 0.1, "rmse {}", result.rmse);
        assert!(result.demands.iter().all(|d| d.is_valid()));
    }

    #[test]
    #[should_panic(expected = "at least one application")]
    fn rejects_empty_input() {
        fit_demands(
            0,
            |_, _| 1.0,
            &ContentionModel::calibrated(),
            &CalibrateOptions::default(),
        );
    }
}
