//! Catalog of NERSC Trinity / NERSC-8 scientific mini-applications.
//!
//! The paper evaluates its strategies with Trinity mini-apps on real
//! hardware. We cannot run the binaries, so each app is represented by a
//! calibrated resource-demand profile reflecting its publicly documented
//! character (miniFE/AMG/MILC are bandwidth-bound, miniDFT/SNAP lean on
//! dense compute, miniGhost is a halo-exchange stencil, …). The calibration
//! targets the qualitative co-run structure the paper reports: pairing
//! complementary apps costs ≈ nothing, pairing same-bottleneck apps splits
//! the bottleneck.

use crate::contention::ContentionModel;
use crate::profile::{AppClass, AppId, AppProfile};
use crate::resources::ResourceVector;
use serde::{Deserialize, Serialize};

/// An immutable collection of application profiles with dense [`AppId`]s.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AppCatalog {
    apps: Vec<AppProfile>,
}

impl AppCatalog {
    /// Builds a catalog from profiles, assigning dense ids in order.
    ///
    /// # Panics
    /// Panics if any profile is invalid or there are more than 255 apps;
    /// catalogs are built at configuration time from static data.
    pub fn new(mut apps: Vec<AppProfile>) -> Self {
        assert!(apps.len() <= u8::MAX as usize, "too many apps");
        for (i, app) in apps.iter_mut().enumerate() {
            app.id = AppId(i as u8);
            // detlint: allow(D5, built-in catalog profiles are static data validated here at load)
            app.validate().expect("invalid app profile");
        }
        AppCatalog { apps }
    }

    /// The eight-app Trinity mini-app catalog used throughout the
    /// evaluation.
    pub fn trinity() -> Self {
        let mk = |name: &str, class, issue, membw, llc, net, mem_gib: u64| AppProfile {
            id: AppId(0), // reassigned by `new`
            name: name.to_string(),
            class,
            demand: ResourceVector::new(issue, membw, llc, net),
            mem_per_node_mib: mem_gib * 1024,
        };
        AppCatalog::new(vec![
            // Finite-element assembly + CG solve: bandwidth-bound.
            mk("miniFE", AppClass::MemoryBound, 0.35, 0.85, 0.50, 0.20, 24),
            // Halo-exchange stencil: bandwidth + network.
            mk("miniGhost", AppClass::CommBound, 0.40, 0.75, 0.45, 0.50, 20),
            // Algebraic multigrid: irregular, bandwidth-bound.
            mk("AMG", AppClass::MemoryBound, 0.30, 0.90, 0.60, 0.35, 28),
            // Unstructured deterministic transport: mixed compute/memory.
            mk("UMT", AppClass::Balanced, 0.60, 0.55, 0.50, 0.25, 32),
            // Sn transport sweeps: issue-heavy.
            mk("SNAP", AppClass::ComputeBound, 0.75, 0.35, 0.40, 0.30, 26),
            // Plane-wave DFT (FFT + dense BLAS): compute-bound, cache
            // resident working set, little bandwidth demand.
            mk(
                "miniDFT",
                AppClass::ComputeBound,
                0.85,
                0.18,
                0.35,
                0.30,
                18,
            ),
            // Gyrokinetic PIC: scatter/gather, mixed.
            mk("GTC", AppClass::Balanced, 0.55, 0.60, 0.55, 0.30, 30),
            // Lattice QCD: bandwidth-bound with heavy communication.
            mk("MILC", AppClass::MemoryBound, 0.45, 0.85, 0.50, 0.40, 22),
        ])
    }

    /// Number of apps.
    #[inline]
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// True when the catalog has no apps.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Profile by id.
    pub fn get(&self, id: AppId) -> Option<&AppProfile> {
        self.apps.get(id.index())
    }

    /// Profile by id, panicking on stale ids (catalogs are append-only, so
    /// an id minted by this catalog always resolves).
    pub fn profile(&self, id: AppId) -> &AppProfile {
        &self.apps[id.index()]
    }

    /// Profile by name.
    pub fn by_name(&self, name: &str) -> Option<&AppProfile> {
        self.apps.iter().find(|a| a.name == name)
    }

    /// All profiles in id order.
    pub fn iter(&self) -> impl Iterator<Item = &AppProfile> {
        self.apps.iter()
    }

    /// All ids in order.
    pub fn ids(&self) -> impl Iterator<Item = AppId> + '_ {
        (0..self.apps.len()).map(|i| AppId(i as u8))
    }

    /// Derived SMT self-speedups for the T1 characterization table.
    pub fn smt_self_speedups(&self, model: &ContentionModel) -> Vec<(AppId, f64)> {
        self.apps
            .iter()
            .map(|a| (a.id, model.smt_self_speedup(&a.demand)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trinity_catalog_is_valid_and_dense() {
        let c = AppCatalog::trinity();
        assert_eq!(c.len(), 8);
        assert!(!c.is_empty());
        for (i, app) in c.iter().enumerate() {
            assert_eq!(app.id, AppId(i as u8));
            assert!(app.validate().is_ok());
        }
    }

    #[test]
    fn lookup_by_name_and_id_agree() {
        let c = AppCatalog::trinity();
        let fe = c.by_name("miniFE").unwrap();
        assert_eq!(c.profile(fe.id).name, "miniFE");
        assert!(c.by_name("nosuchapp").is_none());
        assert!(c.get(AppId(200)).is_none());
    }

    #[test]
    fn classes_cover_the_spectrum() {
        let c = AppCatalog::trinity();
        let has = |cl: AppClass| c.iter().any(|a| a.class == cl);
        assert!(has(AppClass::ComputeBound));
        assert!(has(AppClass::MemoryBound));
        assert!(has(AppClass::Balanced));
        assert!(has(AppClass::CommBound));
    }

    #[test]
    fn memory_bound_apps_demand_bandwidth() {
        let c = AppCatalog::trinity();
        for app in c.iter() {
            match app.class {
                AppClass::MemoryBound => {
                    assert!(app.demand.get(crate::resources::Resource::MemBandwidth) >= 0.8)
                }
                AppClass::ComputeBound => {
                    assert!(app.demand.get(crate::resources::Resource::IssueSlots) >= 0.7)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn smt_self_speedups_are_sane() {
        let c = AppCatalog::trinity();
        for (id, s) in c.smt_self_speedups(&ContentionModel::calibrated()) {
            // SMT running the app against itself never doubles throughput
            // and never drops below the single-lane rate by much.
            assert!(s > 0.9 && s < 2.0, "{}: {s}", c.profile(id).name);
        }
    }

    #[test]
    fn memory_fits_on_a_trinity_node_pairwise() {
        let c = AppCatalog::trinity();
        let cap = nodeshare_cluster_mem_cap();
        for a in c.iter() {
            for b in c.iter() {
                assert!(
                    a.mem_per_node_mib + b.mem_per_node_mib <= cap,
                    "{} + {} exceed node memory",
                    a.name,
                    b.name
                );
            }
        }
    }

    /// Trinity-like node memory; duplicated constant to keep this crate
    /// independent of nodeshare-cluster.
    fn nodeshare_cluster_mem_cap() -> u64 {
        128 * 1024
    }
}
