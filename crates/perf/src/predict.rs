//! Slowdown predictors — what the *scheduler* believes about co-run
//! interference, as opposed to the ground truth the engine simulates.
//!
//! The paper's strategies decide pairings from profiling data gathered
//! ahead of time; real deployments have imperfect knowledge. Separating
//! prediction from truth lets the F7 ablation quantify how much pairing
//! quality the strategies need.

use crate::contention::PairRates;
use crate::profile::{AppClass, AppId};
use crate::trinity::AppCatalog;
use crate::{ContentionModel, PairMatrix};
use serde::{Deserialize, Serialize};

/// Predicted rates for a candidate joining an existing stack of
/// residents on one node.
#[derive(Clone, Debug, PartialEq)]
pub struct StackRates {
    /// Predicted rate of the candidate.
    pub candidate: f64,
    /// Predicted rate of each resident (input order) once the candidate
    /// joins.
    pub residents: Vec<f64>,
}

/// A scheduler-side model of pairwise co-run rates.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Predictor {
    /// Perfect knowledge: the true pair matrix.
    Oracle(PairMatrix),
    /// Perfect knowledge *including n-way stacks*: carries the demand
    /// vectors and contention model so it can price three- and four-way
    /// co-residency exactly — what SMT-4 scheduling needs (see the F11
    /// experiment).
    NWayOracle {
        /// Pairwise cache.
        matrix: PairMatrix,
        /// Demand vector per app id.
        demands: Vec<crate::ResourceVector>,
        /// The model to evaluate stacks with.
        model: crate::ContentionModel,
    },
    /// Class-granular knowledge: one rate per (class, class) pair,
    /// averaged from a matrix. Mirrors "the admin benchmarked app
    /// categories once".
    ClassBased {
        /// Class of each app id.
        classes: Vec<AppClass>,
        /// `rates[ca][cb]` = predicted rate of a `ca` app next to a `cb` app.
        rates: [[f64; 4]; 4],
    },
    /// Assume every pairing runs at a fixed conservative rate.
    Pessimistic {
        /// The assumed rate for any co-resident job.
        rate: f64,
    },
    /// Assume sharing is free (rate 1.0) — the naive baseline whose
    /// failure motivates compatibility-aware pairing.
    Oblivious,
}

fn class_index(c: AppClass) -> usize {
    match c {
        AppClass::ComputeBound => 0,
        AppClass::MemoryBound => 1,
        AppClass::Balanced => 2,
        AppClass::CommBound => 3,
    }
}

impl Predictor {
    /// Builds the oracle predictor from catalog + model.
    pub fn oracle(catalog: &AppCatalog, model: &ContentionModel) -> Self {
        Predictor::Oracle(PairMatrix::build(catalog, model))
    }

    /// Builds the n-way-aware oracle (exact stack pricing).
    pub fn nway_oracle(catalog: &AppCatalog, model: &ContentionModel) -> Self {
        Predictor::NWayOracle {
            matrix: PairMatrix::build(catalog, model),
            demands: catalog.iter().map(|a| a.demand).collect(),
            model: *model,
        }
    }

    /// Builds the class-based predictor by averaging the true matrix over
    /// class pairs.
    pub fn class_based(catalog: &AppCatalog, model: &ContentionModel) -> Self {
        let matrix = PairMatrix::build(catalog, model);
        let classes: Vec<AppClass> = catalog.iter().map(|a| a.class).collect();
        let mut sums = [[0.0f64; 4]; 4];
        let mut counts = [[0u32; 4]; 4];
        for a in catalog.iter() {
            for b in catalog.iter() {
                let (ca, cb) = (class_index(a.class), class_index(b.class));
                sums[ca][cb] += matrix.rate(a.id, b.id);
                counts[ca][cb] += 1;
            }
        }
        let mut rates = [[1.0f64; 4]; 4];
        for (row_s, (row_c, row_r)) in sums.iter().zip(counts.iter().zip(rates.iter_mut())) {
            for (s, (c, r)) in row_s.iter().zip(row_c.iter().zip(row_r.iter_mut())) {
                if *c > 0 {
                    *r = s / *c as f64;
                }
            }
        }
        Predictor::ClassBased { classes, rates }
    }

    /// Predicted rates for the ordered pair `(a, b)`.
    pub fn rates(&self, a: AppId, b: AppId) -> PairRates {
        match self {
            Predictor::Oracle(m) | Predictor::NWayOracle { matrix: m, .. } => m.pair(a, b),
            Predictor::ClassBased { classes, rates } => {
                let ca = class_index(classes[a.index()]);
                let cb = class_index(classes[b.index()]);
                PairRates {
                    rate_a: rates[ca][cb],
                    rate_b: rates[cb][ca],
                }
            }
            Predictor::Pessimistic { rate } => PairRates {
                rate_a: *rate,
                rate_b: *rate,
            },
            Predictor::Oblivious => PairRates {
                rate_a: 1.0,
                rate_b: 1.0,
            },
        }
    }

    /// Predicted combined node throughput of the pair.
    pub fn combined(&self, a: AppId, b: AppId) -> f64 {
        self.rates(a, b).combined_throughput()
    }

    /// Predicted rates when `candidate` joins `residents` on one node.
    ///
    /// [`Predictor::NWayOracle`] evaluates the stack exactly; every other
    /// predictor approximates with the *worst pairwise* prediction (the
    /// best a pairwise-profiled deployment can do — optimistic for stacks
    /// of three or more, which is the F11 failure mode).
    pub fn stack_rates(&self, candidate: AppId, residents: &[AppId]) -> StackRates {
        if residents.is_empty() {
            return StackRates {
                candidate: 1.0,
                residents: Vec::new(),
            };
        }
        if let Predictor::NWayOracle { demands, model, .. } = self {
            let mut stack: Vec<&crate::ResourceVector> = Vec::with_capacity(residents.len() + 1);
            stack.push(&demands[candidate.index()]);
            for r in residents {
                stack.push(&demands[r.index()]);
            }
            let rates = model.co_run_rates(&stack);
            return StackRates {
                candidate: rates[0],
                residents: rates[1..].to_vec(),
            };
        }
        // Pairwise approximation.
        let mut cand = 1.0f64;
        let mut res = Vec::with_capacity(residents.len());
        for &r in residents {
            let pr = self.rates(candidate, r);
            cand = cand.min(pr.rate_a);
            res.push(pr.rate_b);
        }
        StackRates {
            candidate: cand,
            residents: res,
        }
    }

    /// Number of app ids this predictor can price, when the predictor is
    /// backed by per-app data. `None` for the constant predictors
    /// ([`Predictor::Pessimistic`] / [`Predictor::Oblivious`]), which
    /// accept any app id. Dense lookup tables built over a predictor size
    /// themselves with this.
    pub fn n_apps(&self) -> Option<usize> {
        match self {
            Predictor::Oracle(m) | Predictor::NWayOracle { matrix: m, .. } => Some(m.len()),
            Predictor::ClassBased { classes, .. } => Some(classes.len()),
            Predictor::Pessimistic { .. } | Predictor::Oblivious => None,
        }
    }

    /// The worst rate app `a` could suffer next to any app in `0..n` —
    /// used by co-allocation-aware backfill to inflate runtime bounds so
    /// the reservation guarantee survives sharing.
    pub fn worst_rate(&self, a: AppId, n_apps: usize) -> f64 {
        match self {
            Predictor::Oracle(m) | Predictor::NWayOracle { matrix: m, .. } => (0..n_apps)
                .map(|b| m.rate(a, AppId(b as u8)))
                .fold(1.0, f64::min),
            Predictor::ClassBased { classes, rates } => {
                let ca = class_index(classes[a.index()]);
                classes
                    .iter()
                    .take(n_apps)
                    .map(|&cb| rates[ca][class_index(cb)])
                    .fold(1.0, f64::min)
            }
            Predictor::Pessimistic { rate } => *rate,
            Predictor::Oblivious => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AppCatalog, ContentionModel) {
        (AppCatalog::trinity(), ContentionModel::calibrated())
    }

    #[test]
    fn oracle_matches_matrix() {
        let (c, m) = setup();
        let truth = PairMatrix::build(&c, &m);
        let p = Predictor::oracle(&c, &m);
        for a in c.ids() {
            for b in c.ids() {
                assert_eq!(p.rates(a, b).rate_a, truth.rate(a, b));
            }
        }
    }

    #[test]
    fn class_based_orders_pairs_like_the_truth() {
        let (c, m) = setup();
        let p = Predictor::class_based(&c, &m);
        let dft = c.by_name("miniDFT").unwrap().id; // compute
        let amg = c.by_name("AMG").unwrap().id; // memory
        let fe = c.by_name("miniFE").unwrap().id; // memory
        assert!(p.combined(dft, amg) > p.combined(fe, amg));
    }

    #[test]
    fn pessimistic_and_oblivious_are_constant() {
        let (c, _) = setup();
        let pess = Predictor::Pessimistic { rate: 0.5 };
        let obl = Predictor::Oblivious;
        for a in c.ids() {
            for b in c.ids() {
                assert_eq!(pess.rates(a, b).rate_a, 0.5);
                assert_eq!(obl.combined(a, b), 2.0);
            }
        }
        assert_eq!(pess.worst_rate(AppId(0), c.len()), 0.5);
        assert_eq!(obl.worst_rate(AppId(0), c.len()), 1.0);
    }

    #[test]
    fn worst_rate_is_a_lower_bound_for_oracle() {
        let (c, m) = setup();
        let p = Predictor::oracle(&c, &m);
        for a in c.ids() {
            let w = p.worst_rate(a, c.len());
            for b in c.ids() {
                assert!(p.rates(a, b).rate_a >= w - 1e-12);
            }
            assert!(w > 0.0 && w <= 1.0);
        }
    }

    #[test]
    fn stack_rates_pairwise_approximation_and_exact_nway() {
        let (c, m) = setup();
        let pairwise = Predictor::oracle(&c, &m);
        let nway = Predictor::nway_oracle(&c, &m);
        let (a, b, d) = (AppId(0), AppId(4), AppId(5));

        // Empty stack: full speed, no residents.
        let empty = pairwise.stack_rates(a, &[]);
        assert_eq!(empty.candidate, 1.0);
        assert!(empty.residents.is_empty());

        // Single resident: both predictors equal the pair matrix.
        let p1 = pairwise.stack_rates(a, &[b]);
        let n1 = nway.stack_rates(a, &[b]);
        assert_eq!(p1.candidate, pairwise.rates(a, b).rate_a);
        assert_eq!(p1.candidate, n1.candidate);
        assert_eq!(p1.residents, n1.residents);

        // Two residents: the pairwise approximation is optimistic —
        // never below the exact n-way evaluation.
        let p2 = pairwise.stack_rates(a, &[b, d]);
        let n2 = nway.stack_rates(a, &[b, d]);
        assert!(
            p2.candidate >= n2.candidate - 1e-12,
            "pairwise {} vs nway {}",
            p2.candidate,
            n2.candidate
        );
        for (approx, exact) in p2.residents.iter().zip(&n2.residents) {
            assert!(approx >= &(exact - 1e-12));
        }
        // And the n-way oracle matches the model directly.
        let model = ContentionModel::calibrated();
        let direct = model.co_run_rates(&[
            &c.profile(a).demand,
            &c.profile(b).demand,
            &c.profile(d).demand,
        ]);
        assert!((n2.candidate - direct[0]).abs() < 1e-12);
        assert!((n2.residents[0] - direct[1]).abs() < 1e-12);
        assert!((n2.residents[1] - direct[2]).abs() < 1e-12);
    }

    #[test]
    fn class_based_worst_rate_bounds_class_predictions() {
        let (c, m) = setup();
        let p = Predictor::class_based(&c, &m);
        for a in c.ids() {
            let w = p.worst_rate(a, c.len());
            for b in c.ids() {
                assert!(p.rates(a, b).rate_a >= w - 1e-12);
            }
        }
    }
}
