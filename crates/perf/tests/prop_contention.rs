//! Property tests for the contention model: rates stay in bounds, the
//! model is symmetric in roles, and adding demand never speeds a pair up.

use nodeshare_perf::{ContentionModel, Resource, ResourceVector};
use proptest::prelude::*;

fn demand() -> impl Strategy<Value = ResourceVector> {
    (0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0)
        .prop_map(|(i, m, l, n)| ResourceVector::new(i, m, l, n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every co-run rate lies in (0, 1].
    #[test]
    fn rates_are_in_unit_interval(a in demand(), b in demand()) {
        let m = ContentionModel::calibrated();
        let r = m.pair_rates(&a, &b);
        prop_assert!(r.rate_a > 0.0 && r.rate_a <= 1.0);
        prop_assert!(r.rate_b > 0.0 && r.rate_b <= 1.0);
    }

    /// Swapping the argument order swaps the rates exactly.
    #[test]
    fn role_symmetry(a in demand(), b in demand()) {
        let m = ContentionModel::calibrated();
        let r = m.pair_rates(&a, &b);
        let s = m.pair_rates(&b, &a);
        prop_assert_eq!(r.swapped(), s);
    }

    /// A hungrier co-runner never helps: increasing B's demand on any
    /// resource cannot increase A's rate.
    #[test]
    fn monotone_in_corunner_demand(
        a in demand(),
        b in demand(),
        r_idx in 0usize..4,
        bump in 0.0f64..=0.5,
    ) {
        let m = ContentionModel::calibrated();
        let resource = Resource::ALL[r_idx];
        let mut b2 = b;
        b2.set(resource, (b.get(resource) + bump).min(1.0));
        let before = m.pair_rates(&a, &b).rate_a;
        let after = m.pair_rates(&a, &b2).rate_a;
        prop_assert!(after <= before + 1e-12, "rate rose {before} -> {after}");
    }

    /// Combined throughput never exceeds 2× exclusive and is positive.
    #[test]
    fn combined_throughput_bounds(a in demand(), b in demand()) {
        let m = ContentionModel::calibrated();
        let t = m.pair_rates(&a, &b).combined_throughput();
        prop_assert!(t > 0.0 && t <= 2.0);
    }

    /// Pairing against a zero-demand co-runner costs exactly the SMT tax.
    #[test]
    fn idle_corunner_costs_only_the_tax(a in demand()) {
        let m = ContentionModel::calibrated();
        let r = m.pair_rates(&a, &ResourceVector::zero());
        prop_assert!((r.rate_a - m.smt_tax).abs() < 1e-12);
    }
}
