//! Lightweight span timers: measure a scope's wall-clock duration and
//! feed it into a [`Histogram`] on drop.

use crate::registry::Histogram;
use std::time::Instant;

/// An RAII guard that observes its own lifetime (in seconds) into a
/// histogram when dropped. Create one with [`SpanTimer::new`] or the
/// [`crate::span!`] macro.
#[derive(Debug)]
pub struct SpanTimer {
    hist: Histogram,
    start: Instant,
}

impl SpanTimer {
    /// Starts timing into `hist`.
    pub fn new(hist: &Histogram) -> SpanTimer {
        SpanTimer {
            hist: hist.clone(),
            start: Instant::now(),
        }
    }

    /// Seconds elapsed so far (mainly for tests).
    pub fn elapsed(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.hist.observe(self.start.elapsed().as_secs_f64());
    }
}

/// Times the rest of the enclosing scope into a histogram handle:
///
/// ```
/// let registry = nodeshare_obs::MetricsRegistry::new();
/// let hist = registry.histogram("scan_seconds", "scan time", &[1e-6, 1e-3, 1.0]);
/// {
///     let _span = nodeshare_obs::span!(hist);
///     // ... timed work ...
/// }
/// assert_eq!(hist.count(), 1);
/// ```
#[macro_export]
macro_rules! span {
    ($hist:expr) => {
        $crate::span::SpanTimer::new(&$hist)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn span_observes_on_drop() {
        let r = MetricsRegistry::new();
        let h = r.histogram("work_seconds", "work", &[0.5, 1.0]);
        {
            let _s = SpanTimer::new(&h);
            assert_eq!(h.count(), 0, "observation happens at drop, not start");
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 0.0);
        {
            let _s = crate::span!(h);
        }
        assert_eq!(h.count(), 2);
    }
}
