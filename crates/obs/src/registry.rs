//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms with cheap atomic updates.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-backed and
//! `Clone`; updating one is a single atomic operation, so instruments can
//! live on hot paths. Registration is idempotent: asking for the same
//! `(name, labels)` twice returns a handle to the same underlying cell,
//! and re-registering a name with a different metric kind panics (that is
//! a programming error, not a runtime condition).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Kind of a metric family (drives the Prometheus `# TYPE` line).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value that can go up and down.
    Gauge,
    /// Fixed-bucket distribution with sum and count.
    Histogram,
}

impl MetricKind {
    /// Prometheus type keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A monotonically increasing counter (integer-valued).
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (always valid to update;
    /// never exported). Useful as a no-op default.
    pub fn detached() -> Counter {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a point-in-time `f64` that can move in both directions.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Gauge {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Interior of a histogram: cumulative-style fixed buckets.
#[derive(Debug)]
pub(crate) struct HistogramCell {
    /// Finite ascending upper bounds; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// Per-bucket counts, `bounds.len() + 1` entries (last = `+Inf`).
    buckets: Vec<AtomicU64>,
    /// Sum of observed values, as `f64` bits (CAS loop on update).
    sum_bits: AtomicU64,
    /// Number of observations.
    count: AtomicU64,
}

/// A fixed-bucket histogram of `f64` observations.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCell>);

impl Histogram {
    /// A histogram with the given finite ascending bucket upper bounds,
    /// not attached to any registry.
    ///
    /// # Panics
    /// Panics when `bounds` is empty, non-finite, or not strictly
    /// ascending.
    pub fn detached(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram(Arc::new(HistogramCell {
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            bounds: bounds.to_vec(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let c = &self.0;
        let idx = c.bounds.partition_point(|&b| b < v);
        c.buckets[idx].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = c.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match c
                .sum_bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// The finite upper bounds this histogram was built with.
    pub fn bounds(&self) -> &[f64] {
        &self.0.bounds
    }

    /// Per-bucket (non-cumulative) counts; the last entry is the `+Inf`
    /// bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) from the bucket
    /// counts, interpolating linearly inside the bucket that holds the
    /// target rank — the same estimator Prometheus' `histogram_quantile`
    /// uses. The first bucket interpolates from an implicit lower edge
    /// of `0`; ranks landing in the `+Inf` bucket clamp to the last
    /// finite bound. Returns `NaN` when the histogram is empty.
    ///
    /// # Panics
    /// Panics when `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return f64::NAN;
        }
        let rank = q * total as f64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen as f64 + c as f64 >= rank {
                let bounds = self.bounds();
                if i == bounds.len() {
                    // +Inf bucket: no finite upper edge to interpolate
                    // toward; clamp to the largest finite bound.
                    return bounds[bounds.len() - 1];
                }
                let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
                let upper = bounds[i];
                let into = ((rank - seen as f64) / c as f64).clamp(0.0, 1.0);
                return lower + (upper - lower) * into;
            }
            seen += c;
        }
        // Unreachable for total > 0, but keep a sane fallback.
        self.bounds()[self.bounds().len() - 1]
    }
}

/// `count` bucket bounds growing geometrically from `start` by `factor`.
///
/// # Panics
/// Panics for non-positive `start`, `factor <= 1`, or `count == 0`.
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(
        start > 0.0 && factor > 1.0 && count > 0,
        "degenerate buckets"
    );
    let mut bounds = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        bounds.push(b);
        b *= factor;
    }
    bounds
}

/// The value cell behind one registered series.
#[derive(Clone, Debug)]
pub(crate) enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// One labeled series of a family.
#[derive(Debug)]
pub(crate) struct Series {
    /// Sorted `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
    pub instrument: Instrument,
}

/// A named metric family: kind, help text, and its labeled series.
#[derive(Debug)]
pub(crate) struct Family {
    pub name: String,
    pub help: String,
    pub kind: MetricKind,
    pub series: Vec<Series>,
}

/// A registry of metric families.
///
/// Cheap to share behind an `Arc`; registration takes a lock, updates via
/// the returned handles do not.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    // detlint: allow(D3, family list shared with workers; rendered in stable registration order)
    pub(crate) families: Mutex<Vec<Family>>,
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    l
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name {name:?}"
        );
        let labels = sorted_labels(labels);
        // detlint: allow(D5, lock poisoning implies a prior panic; propagating it is the least surprising failure)
        let mut families = self.families.lock().expect("registry poisoned");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric {name} re-registered as {:?}, was {:?}",
                    kind,
                    f.kind
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                // detlint: allow(D5, pushed on the preceding line)
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(s) = family.series.iter().find(|s| s.labels == labels) {
            return s.instrument.clone();
        }
        let instrument = make();
        family.series.push(Series {
            labels,
            instrument: instrument.clone(),
        });
        family.series.sort_by(|a, b| a.labels.cmp(&b.labels));
        instrument
    }

    /// Registers (or finds) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or finds) a labeled counter.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, MetricKind::Counter, || {
            Instrument::Counter(Counter::detached())
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or finds) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or finds) a labeled gauge.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, MetricKind::Gauge, || {
            Instrument::Gauge(Gauge::detached())
        }) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or finds) an unlabeled histogram with the given finite
    /// ascending bucket bounds.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Registers (or finds) a labeled histogram.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        match self.register(name, help, labels, MetricKind::Histogram, || {
            Instrument::Histogram(Histogram::detached(bounds))
        }) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Number of registered families.
    pub fn family_count(&self) -> usize {
        // detlint: allow(D5, lock poisoning implies a prior panic; propagating it is the least surprising failure)
        self.families.lock().expect("registry poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count() {
        let r = MetricsRegistry::new();
        let c = r.counter("jobs_total", "jobs");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Idempotent registration returns the same cell.
        let again = r.counter("jobs_total", "jobs");
        again.inc();
        assert_eq!(c.get(), 6);
        assert_eq!(r.family_count(), 1);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let r = MetricsRegistry::new();
        let a = r.counter_with("starts_total", "starts", &[("mode", "shared")]);
        let b = r.counter_with("starts_total", "starts", &[("mode", "exclusive")]);
        a.inc();
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 1);
        assert_eq!(r.family_count(), 1);
        // Label order does not matter.
        let a2 = r.counter_with("starts_total", "starts", &[("mode", "shared")]);
        assert_eq!(a2.get(), 2);
    }

    #[test]
    fn gauges_move_both_ways() {
        let r = MetricsRegistry::new();
        let g = r.gauge("queue_depth", "depth");
        g.set(3.0);
        assert_eq!(g.get(), 3.0);
        g.set(1.5);
        assert_eq!(g.get(), 1.5);
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let r = MetricsRegistry::new();
        let h = r.histogram("latency", "l", &[0.1, 1.0, 10.0]);
        for v in [0.05, 0.5, 0.5, 5.0, 50.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 56.05).abs() < 1e-9);
        assert_eq!(h.bucket_counts(), vec![1, 2, 1, 1]);
        // Boundary values land in the bucket whose bound they equal (le).
        h.observe(0.1);
        assert_eq!(h.bucket_counts()[0], 2);
    }

    #[test]
    fn quantiles_on_uniform_distribution() {
        // 1000 uniform samples over (0, 10] against ten equal buckets:
        // the interpolated quantiles should sit within one bucket width
        // of the exact order statistics.
        let bounds: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let h = Histogram::detached(&bounds);
        for i in 0..1000 {
            h.observe((i as f64 + 0.5) / 100.0);
        }
        for (q, expect) in [(0.5, 5.0), (0.95, 9.5), (0.99, 9.9)] {
            let got = h.quantile(q);
            assert!(
                (got - expect).abs() <= 1.0,
                "q{q}: got {got}, expected ~{expect}"
            );
        }
        // Quantiles are monotone in q.
        assert!(h.quantile(0.5) <= h.quantile(0.95));
        assert!(h.quantile(0.95) <= h.quantile(0.99));
    }

    #[test]
    fn quantiles_interpolate_within_a_bucket() {
        // All mass in the (1, 2] bucket: q interpolates linearly across
        // that bucket, so p50 is its midpoint.
        let h = Histogram::detached(&[1.0, 2.0, 3.0]);
        for _ in 0..4 {
            h.observe(1.5);
        }
        assert!((h.quantile(0.5) - 1.5).abs() < 1e-9, "{}", h.quantile(0.5));
        assert!((h.quantile(1.0) - 2.0).abs() < 1e-9);
        // First bucket interpolates from an implicit lower edge of 0.
        let low = Histogram::detached(&[4.0, 8.0]);
        low.observe(1.0);
        low.observe(2.0);
        assert!(
            (low.quantile(0.5) - 2.0).abs() < 1e-9,
            "{}",
            low.quantile(0.5)
        );
    }

    #[test]
    fn quantiles_handle_edge_cases() {
        let h = Histogram::detached(&[1.0, 10.0]);
        assert!(h.quantile(0.5).is_nan(), "empty histogram has no quantile");
        // Mass beyond the last finite bound clamps to it.
        h.observe(100.0);
        assert_eq!(h.quantile(0.99), 10.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_range_is_checked() {
        Histogram::detached(&[1.0]).quantile(1.5);
    }

    #[test]
    fn exponential_bucket_helper() {
        let b = exponential_buckets(1e-6, 10.0, 4);
        assert_eq!(b.len(), 4);
        assert!((b[3] - 1e-3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_conflicts_panic() {
        let r = MetricsRegistry::new();
        r.counter("x_total", "x");
        r.gauge("x_total", "x");
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn bad_bounds_panic() {
        Histogram::detached(&[1.0, 1.0]);
    }
}
