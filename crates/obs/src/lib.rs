#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! # nodeshare-obs
//!
//! Dependency-free runtime telemetry for the nodeshare workspace:
//!
//! * [`registry`] — a [`MetricsRegistry`] of named counters, gauges, and
//!   fixed-bucket histograms with cheap atomic updates and label support,
//! * [`logger`] — a leveled structured logger (`error`..`trace`,
//!   `key=value` fields) with per-target filtering via `NODESHARE_LOG`
//!   and writer injection for tests,
//! * [`span`] — RAII span timers feeding wall-clock histograms
//!   (`span!(hist)`),
//! * [`prometheus`] — text-exposition rendering (`# HELP`/`# TYPE`,
//!   labels, cumulative histogram buckets).
//!
//! The crate intentionally has **no dependencies** — the build
//! environment is offline (see the workspace `vendor/` stand-ins), so the
//! usual `log`/`tracing`/`prometheus` crates are hand-rolled here in the
//! exact shape this workspace needs. Everything is `Send + Sync`;
//! instruments are `Arc`-backed clones, so a registry can be shared
//! across Rayon replications.

pub mod logger;
pub mod prometheus;
pub mod registry;
pub mod span;

pub use logger::{Filter, Level};
pub use registry::{exponential_buckets, Counter, Gauge, Histogram, MetricKind, MetricsRegistry};
pub use span::SpanTimer;

/// Renders `registry` in the Prometheus text exposition format.
pub fn render_prometheus(registry: &MetricsRegistry) -> String {
    prometheus::render(registry)
}
