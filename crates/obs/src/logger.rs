//! A leveled, structured (key=value) logger with per-target filtering.
//!
//! The filter is configured from the `NODESHARE_LOG` environment variable
//! on first use, in the familiar comma-separated form:
//!
//! ```text
//! NODESHARE_LOG=info                  # default level for every target
//! NODESHARE_LOG=warn,engine=debug     # per-target override (prefix match)
//! NODESHARE_LOG=debug,core::util=trace
//! ```
//!
//! Records go to stderr by default; tests (and embedders) may inject any
//! `Write + Send` sink with [`set_writer`]. The level gate is a single
//! relaxed atomic load, so disabled log calls cost one branch.

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed; output is unusable.
    Error = 1,
    /// Something surprising that does not invalidate the run.
    Warn = 2,
    /// High-level lifecycle messages (default).
    Info = 3,
    /// Per-decision diagnostics.
    Debug = 4,
    /// Per-event firehose.
    Trace = 5,
}

impl Level {
    /// Parses a level name (case-insensitive). `off` disables everything.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    /// Fixed-width upper-case name for record rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

/// A parsed `NODESHARE_LOG`-style filter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Filter {
    /// Level applied when no target directive matches. `None` = off.
    default: Option<Level>,
    /// `(target prefix, level)` directives; the longest matching prefix
    /// wins.
    targets: Vec<(String, Option<Level>)>,
}

impl Filter {
    /// The out-of-the-box filter: `info` for every target.
    pub fn default_info() -> Filter {
        Filter {
            default: Some(Level::Info),
            targets: Vec::new(),
        }
    }

    /// Parses a spec like `warn,engine=debug,core::util=trace`. Unknown
    /// level names are treated as `off` for that directive; an empty spec
    /// yields the default (`info`).
    pub fn parse(spec: &str) -> Filter {
        let mut filter = Filter::default_info();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            match part.split_once('=') {
                Some((target, level)) => {
                    let lv = if level.trim().eq_ignore_ascii_case("off") {
                        None
                    } else {
                        Level::parse(level)
                    };
                    filter.targets.push((target.trim().to_string(), lv));
                }
                None => {
                    filter.default = if part.eq_ignore_ascii_case("off") {
                        None
                    } else {
                        Level::parse(part).or(filter.default)
                    };
                }
            }
        }
        // Longest prefix first so lookup can take the first match.
        filter.targets.sort_by_key(|t| std::cmp::Reverse(t.0.len()));
        filter
    }

    /// The level in force for `target`.
    pub fn level_for(&self, target: &str) -> Option<Level> {
        for (prefix, level) in &self.targets {
            if target.starts_with(prefix.as_str()) {
                return *level;
            }
        }
        self.default
    }

    /// The most verbose level any target can reach (the fast gate).
    fn max_level(&self) -> u8 {
        self.targets
            .iter()
            .filter_map(|(_, l)| *l)
            .chain(self.default)
            .map(|l| l as u8)
            .max()
            .unwrap_or(0)
    }
}

struct LoggerState {
    filter: Filter,
    writer: Box<dyn Write + Send>,
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(u8::MAX); // unset sentinel
                                                     // detlint: allow(D3, process-wide logger state; diagnostics only, never in compared artifacts)
static STATE: OnceLock<Mutex<LoggerState>> = OnceLock::new();

// detlint: allow(D3, accessor for the process-wide logger state above)
fn state() -> &'static Mutex<LoggerState> {
    STATE.get_or_init(|| {
        let filter = match std::env::var("NODESHARE_LOG") {
            Ok(spec) if !spec.is_empty() => Filter::parse(&spec),
            _ => Filter::default_info(),
        };
        MAX_LEVEL.store(filter.max_level(), Ordering::Relaxed);
        // detlint: allow(D3, logger state construction, see the static note)
        Mutex::new(LoggerState {
            filter,
            writer: Box::new(std::io::stderr()),
        })
    })
}

/// Replaces the whole filter (e.g. from a `--log-level` flag).
pub fn set_filter(filter: Filter) {
    // detlint: allow(D5, lock poisoning implies a prior panic; propagating it is the least surprising failure)
    let mut s = state().lock().expect("logger poisoned");
    MAX_LEVEL.store(filter.max_level(), Ordering::Relaxed);
    s.filter = filter;
}

/// Sets a uniform maximum level for every target.
pub fn set_max_level(level: Level) {
    set_filter(Filter {
        default: Some(level),
        targets: Vec::new(),
    });
}

/// Redirects log output (tests inject a capture buffer here). Returns the
/// previous writer so callers can restore it.
pub fn set_writer(writer: Box<dyn Write + Send>) -> Box<dyn Write + Send> {
    // detlint: allow(D5, lock poisoning implies a prior panic; propagating it is the least surprising failure)
    let mut s = state().lock().expect("logger poisoned");
    std::mem::replace(&mut s.writer, writer)
}

/// Whether a record at `level` for `target` would be emitted. One atomic
/// load on the common (disabled) path.
#[inline]
pub fn enabled(level: Level, target: &str) -> bool {
    let max = MAX_LEVEL.load(Ordering::Relaxed);
    if max == u8::MAX {
        // Logger not initialized yet: initialize from the environment,
        // then re-check.
        let _ = state();
        return enabled(level, target);
    }
    if level as u8 > max {
        return false;
    }
    state()
        .lock()
        // detlint: allow(D5, lock poisoning implies a prior panic; propagating it is the least surprising failure)
        .expect("logger poisoned")
        .filter
        .level_for(target)
        .is_some_and(|l| level <= l)
}

/// Quotes a field value when it contains characters that would break the
/// `key=value` structure.
fn field_value(v: &str) -> String {
    if v.is_empty() || v.contains([' ', '"', '=']) {
        format!("{v:?}")
    } else {
        v.to_string()
    }
}

/// Writes one record. Callers go through the [`crate::log!`]-family
/// macros, which check [`enabled`] first.
pub fn write_record(level: Level, target: &str, msg: &str, fields: &[(&str, String)]) {
    let mut line = format!("[{:<5} {}] {}", level.as_str(), target, msg);
    for (k, v) in fields {
        line.push(' ');
        line.push_str(k);
        line.push('=');
        line.push_str(&field_value(v));
    }
    line.push('\n');
    // detlint: allow(D5, lock poisoning implies a prior panic; propagating it is the least surprising failure)
    let mut s = state().lock().expect("logger poisoned");
    let _ = s.writer.write_all(line.as_bytes());
    let _ = s.writer.flush();
}

/// Logs a structured record at an explicit level.
///
/// ```
/// nodeshare_obs::log!(nodeshare_obs::Level::Info, "engine::sim", "job started";
///     job = 17, nodes = 4);
/// ```
#[macro_export]
macro_rules! log {
    ($lvl:expr, $target:expr, $msg:expr $(; $($k:ident = $v:expr),* $(,)?)?) => {{
        let lvl = $lvl;
        let target: &str = $target;
        if $crate::logger::enabled(lvl, target) {
            $crate::logger::write_record(
                lvl,
                target,
                &::std::format!("{}", $msg),
                &[$($((::std::stringify!($k), ::std::format!("{}", $v))),*)?],
            );
        }
    }};
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($target:expr, $msg:expr $(; $($k:ident = $v:expr),* $(,)?)?) => {
        $crate::log!($crate::Level::Error, $target, $msg $(; $($k = $v),*)?)
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($target:expr, $msg:expr $(; $($k:ident = $v:expr),* $(,)?)?) => {
        $crate::log!($crate::Level::Warn, $target, $msg $(; $($k = $v),*)?)
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($target:expr, $msg:expr $(; $($k:ident = $v:expr),* $(,)?)?) => {
        $crate::log!($crate::Level::Info, $target, $msg $(; $($k = $v),*)?)
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($target:expr, $msg:expr $(; $($k:ident = $v:expr),* $(,)?)?) => {
        $crate::log!($crate::Level::Debug, $target, $msg $(; $($k = $v),*)?)
    };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($target:expr, $msg:expr $(; $($k:ident = $v:expr),* $(,)?)?) => {
        $crate::log!($crate::Level::Trace, $target, $msg $(; $($k = $v),*)?)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// Shared capture buffer usable as a log writer.
    #[derive(Clone, Default)]
    struct Capture(Arc<StdMutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl Capture {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    /// The logger is process-global; tests that reconfigure it must not
    /// interleave.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: StdMutex<()> = StdMutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn filter_parsing_and_prefix_match() {
        let f = Filter::parse("warn,engine=debug,engine::sim=trace,core=off");
        assert_eq!(f.level_for("workload"), Some(Level::Warn));
        assert_eq!(f.level_for("engine"), Some(Level::Debug));
        assert_eq!(f.level_for("engine::events"), Some(Level::Debug));
        assert_eq!(f.level_for("engine::sim"), Some(Level::Trace));
        assert_eq!(f.level_for("core::util"), None);
        assert_eq!(Filter::parse("").level_for("x"), Some(Level::Info));
        assert_eq!(Filter::parse("off").level_for("x"), None);
        assert_eq!(Filter::parse("bogus").level_for("x"), Some(Level::Info));
    }

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse(" warn "), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Error < Level::Trace);
    }

    #[test]
    fn records_are_structured_and_filtered() {
        let _guard = serial();
        let cap = Capture::default();
        let prev = set_writer(Box::new(cap.clone()));
        set_filter(Filter::parse("info,noisy=off"));

        crate::info!("test::target", "job started"; job = 17, nodes = 4);
        crate::debug!("test::target", "filtered out"; detail = 1);
        crate::info!("noisy", "also filtered");
        crate::warn!("test::target", "value gets quoted"; msg = "two words");

        let text = cap.text();
        assert!(text.contains("[INFO  test::target] job started job=17 nodes=4"));
        assert!(!text.contains("filtered"));
        assert!(text.contains("msg=\"two words\""));

        set_max_level(Level::Info);
        let _ = set_writer(prev);
    }

    #[test]
    fn enabled_gate_respects_per_target_levels() {
        let _guard = serial();
        set_filter(Filter::parse("error,deep::inside=trace"));
        assert!(enabled(Level::Error, "anywhere"));
        assert!(!enabled(Level::Info, "anywhere"));
        assert!(enabled(Level::Trace, "deep::inside::module"));
        set_max_level(Level::Info);
    }
}
