//! Prometheus text-exposition rendering for a [`MetricsRegistry`].
//!
//! The output follows the text format v0.0.4: one `# HELP` and `# TYPE`
//! line per family, families in name order, series in label order, and
//! histograms expanded into cumulative `_bucket{le=...}` samples plus
//! `_sum` and `_count`. Label values are escaped (`\\`, `\"`, `\n`).

use crate::registry::{Instrument, MetricsRegistry};

/// Escapes a label value for the exposition format.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a HELP text (only backslash and newline per the spec).
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Formats an `f64` the way Prometheus expects: integral values without a
/// trailing `.0`, non-finite values as `+Inf`/`-Inf`/`NaN`.
pub(crate) fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        return "NaN".to_string();
    }
    if v.is_infinite() {
        return if v > 0.0 { "+Inf" } else { "-Inf" }.to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    format!("{{{}}}", parts.join(","))
}

/// Renders the whole registry in the Prometheus text exposition format.
pub fn render(registry: &MetricsRegistry) -> String {
    // detlint: allow(D5, lock poisoning implies a prior panic; propagating it is the least surprising failure)
    let families = registry.families.lock().expect("registry poisoned");
    let mut names: Vec<usize> = (0..families.len()).collect();
    names.sort_by(|&a, &b| families[a].name.cmp(&families[b].name));

    let mut out = String::new();
    for idx in names {
        let f = &families[idx];
        out.push_str(&format!("# HELP {} {}\n", f.name, escape_help(&f.help)));
        out.push_str(&format!("# TYPE {} {}\n", f.name, f.kind.as_str()));
        let mut histogram_series: Vec<&crate::registry::Series> = Vec::new();
        for s in &f.series {
            match &s.instrument {
                Instrument::Counter(c) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        f.name,
                        render_labels(&s.labels, None),
                        c.get()
                    ));
                }
                Instrument::Gauge(g) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        f.name,
                        render_labels(&s.labels, None),
                        fmt_value(g.get())
                    ));
                }
                Instrument::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cumulative = 0u64;
                    for (bound, count) in h.bounds().iter().zip(&counts) {
                        cumulative += count;
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            f.name,
                            render_labels(&s.labels, Some(("le", &fmt_value(*bound)))),
                            cumulative
                        ));
                    }
                    cumulative += counts.last().copied().unwrap_or(0);
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        f.name,
                        render_labels(&s.labels, Some(("le", "+Inf"))),
                        cumulative
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        f.name,
                        render_labels(&s.labels, None),
                        fmt_value(h.sum())
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        f.name,
                        render_labels(&s.labels, None),
                        h.count()
                    ));
                    histogram_series.push(s);
                }
            }
        }
        // Derived quantile estimates as a companion gauge family: the
        // text format has no native summary-from-histogram, so p50/p95/
        // p99 are exported as `{name}_quantile{quantile="..."}` gauges.
        if !histogram_series.is_empty() {
            out.push_str(&format!(
                "# HELP {}_quantile Estimated quantiles of {}\n",
                f.name, f.name
            ));
            out.push_str(&format!("# TYPE {}_quantile gauge\n", f.name));
            for s in &histogram_series {
                if let Instrument::Histogram(h) = &s.instrument {
                    for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                        out.push_str(&format!(
                            "{}_quantile{} {}\n",
                            f.name,
                            render_labels(&s.labels, Some(("quantile", label))),
                            fmt_value(h.quantile(q))
                        ));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_formatting() {
        assert_eq!(fmt_value(0.0), "0");
        assert_eq!(fmt_value(42.0), "42");
        assert_eq!(fmt_value(1.5), "1.5");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_value(f64::NAN), "NaN");
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn histograms_export_quantile_gauges() {
        let r = MetricsRegistry::new();
        let h = r.histogram("latency_seconds", "latency", &[1.0, 2.0, 4.0]);
        for _ in 0..4 {
            h.observe(1.5);
        }
        let text = render(&r);
        assert!(text.contains("# TYPE latency_seconds_quantile gauge"));
        assert!(
            text.contains("latency_seconds_quantile{quantile=\"0.5\"} 1.5"),
            "{text}"
        );
        assert!(text.contains("latency_seconds_quantile{quantile=\"0.95\"}"));
        assert!(text.contains("latency_seconds_quantile{quantile=\"0.99\"}"));
        // Quantile samples follow the full histogram family.
        let bucket = text.find("latency_seconds_bucket").unwrap();
        let count = text.find("latency_seconds_count").unwrap();
        let quant = text.find("latency_seconds_quantile{").unwrap();
        assert!(bucket < count && count < quant);
        // Counters and gauges grow no quantile companions.
        r.counter("jobs_total", "jobs");
        assert!(!render(&r).contains("jobs_total_quantile"));
    }
}
