//! `NODESHARE_LOG` per-target filtering against campaign log targets.
//!
//! The campaign orchestrator logs under hierarchical targets —
//! `campaign::<name>` for campaign-level progress and
//! `campaign::<name>::<cell-slug>` for per-cell records — and the
//! documented way to focus on one campaign (or one cell) is a
//! `NODESHARE_LOG` prefix directive. These tests pin that contract:
//! the env-var spec is parsed on first logger use, longest prefix wins,
//! and `off` silences a subtree without touching its siblings.

use nodeshare_obs::logger::{enabled, set_filter, set_writer, Filter};
use nodeshare_obs::Level;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Shared capture buffer usable as a log writer.
#[derive(Clone, Default)]
struct Capture(Arc<Mutex<Vec<u8>>>);

impl Write for Capture {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Capture {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

/// The logger is process-global: every test in this binary that touches
/// it serializes on this guard, and the first to run performs the
/// env-var initialization check (the spec is read exactly once, on
/// first use).
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    static ENV_INIT: std::sync::Once = std::sync::Once::new();
    let guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    ENV_INIT.call_once(|| {
        // Must happen before anything else in this process touches the
        // logger: `enabled` snapshots NODESHARE_LOG on first use.
        std::env::set_var(
            "NODESHARE_LOG",
            "warn,campaign::exp_t2=info,campaign::exp_t2::sat-128n-smt2-fcfs-seed1000=debug",
        );
        assert!(
            enabled(Level::Info, "campaign::exp_t2"),
            "NODESHARE_LOG campaign directive must apply on first use"
        );
        assert!(
            enabled(
                Level::Debug,
                "campaign::exp_t2::sat-128n-smt2-fcfs-seed1000"
            ),
            "longest (cell-slug) prefix must win over the campaign prefix"
        );
        assert!(
            !enabled(
                Level::Debug,
                "campaign::exp_t2::sat-128n-smt2-easy-backfill-seed1001"
            ),
            "sibling cells stay at the campaign level"
        );
        assert!(
            !enabled(Level::Info, "campaign::other"),
            "unrelated campaigns fall back to the default level"
        );
        std::env::remove_var("NODESHARE_LOG");
    });
    guard
}

#[test]
fn env_spec_filters_campaign_targets_by_prefix() {
    let _guard = serial();
    // The env-driven assertions live in `serial()` so they run exactly
    // once, before any reconfiguration; here we re-pin the same shapes
    // through explicit filters and an actual capture of the output.
    let cap = Capture::default();
    let prev = set_writer(Box::new(cap.clone()));
    set_filter(Filter::parse(
        "warn,campaign::exp_t2=info,campaign::exp_t2::sat-128n-smt2-fcfs-seed1000=debug",
    ));

    nodeshare_obs::info!("campaign::exp_t2", "campaign start"; cells = 12);
    nodeshare_obs::info!(
        "campaign::exp_t2::sat-128n-smt2-fcfs-seed1000",
        "cell merged";
        wall_ms = "3.1"
    );
    nodeshare_obs::debug!(
        "campaign::exp_t2::sat-128n-smt2-fcfs-seed1000",
        "cell start";
        jobs = 20
    );
    nodeshare_obs::debug!(
        "campaign::exp_t2::sat-128n-smt2-easy-backfill-seed1001",
        "cell start (must be filtered)";
        jobs = 20
    );
    nodeshare_obs::info!("campaign::other", "unrelated campaign (must be filtered)");
    nodeshare_obs::warn!("campaign::other", "warnings always pass the default");

    let text = cap.text();
    assert!(text.contains("[INFO  campaign::exp_t2] campaign start cells=12"));
    assert!(text.contains("cell merged wall_ms=3.1"));
    assert!(text.contains("[DEBUG campaign::exp_t2::sat-128n-smt2-fcfs-seed1000] cell start"));
    assert!(!text.contains("must be filtered"));
    assert!(text.contains("[WARN  campaign::other] warnings always pass"));

    nodeshare_obs::logger::set_max_level(Level::Info);
    let _ = set_writer(prev);
}

#[test]
fn off_directive_silences_one_campaign_subtree() {
    let _guard = serial();
    let cap = Capture::default();
    let prev = set_writer(Box::new(cap.clone()));
    set_filter(Filter::parse("info,campaign::noisy=off"));

    nodeshare_obs::error!("campaign::noisy::cell-a", "even errors are off");
    nodeshare_obs::info!("campaign::quiet", "siblings unaffected");

    let text = cap.text();
    assert!(!text.contains("even errors are off"));
    assert!(text.contains("[INFO  campaign::quiet] siblings unaffected"));

    nodeshare_obs::logger::set_max_level(Level::Info);
    let _ = set_writer(prev);
}

#[test]
fn filter_parse_matches_cell_slug_targets() {
    // Pure filter-table checks: no global state involved.
    let f = Filter::parse(
        "warn,campaign=info,campaign::faults::sat-128n-smt2-co-backfill-seed1001=trace",
    );
    assert_eq!(f.level_for("campaign::faults"), Some(Level::Info));
    assert_eq!(
        f.level_for("campaign::faults::sat-128n-smt2-co-backfill-seed1001"),
        Some(Level::Trace)
    );
    assert_eq!(
        f.level_for("campaign::faults::sat-128n-smt2-co-backfill-seed1000"),
        Some(Level::Info)
    );
    assert_eq!(f.level_for("engine::sim"), Some(Level::Warn));
}
