//! Golden-file test for the Prometheus text exposition: family ordering,
//! label rendering and escaping, and cumulative histogram expansion must
//! not drift — external scrapers parse this surface.

use nodeshare_obs::{render_prometheus, MetricsRegistry};

#[test]
fn exposition_matches_golden() {
    let r = MetricsRegistry::new();

    let shared = r.counter_with(
        "sim_jobs_started_total",
        "Jobs started, by allocation mode.",
        &[("mode", "shared")],
    );
    let exclusive = r.counter_with(
        "sim_jobs_started_total",
        "Jobs started, by allocation mode.",
        &[("mode", "exclusive")],
    );
    shared.add(3);
    exclusive.add(7);

    let depth = r.gauge("sim_queue_depth", "Jobs waiting in the queue.");
    depth.set(12.0);
    let util = r.gauge("sim_core_utilization", "Fraction of cores busy.");
    util.set(0.75);

    let h = r.histogram(
        "sched_invoke_duration_seconds",
        "Wall-clock time of one scheduler invocation.",
        &[0.001, 0.01, 0.1],
    );
    h.observe(0.0005);
    h.observe(0.005);
    h.observe(0.005);
    h.observe(0.05);
    h.observe(5.0);

    let odd = r.gauge_with(
        "sim_strategy_info",
        "Strategy in use (always 1).",
        &[("strategy", "co-\"backfill\"\nv2\\x")],
    );
    odd.set(1.0);

    let golden = "\
# HELP sched_invoke_duration_seconds Wall-clock time of one scheduler invocation.
# TYPE sched_invoke_duration_seconds histogram
sched_invoke_duration_seconds_bucket{le=\"0.001\"} 1
sched_invoke_duration_seconds_bucket{le=\"0.01\"} 3
sched_invoke_duration_seconds_bucket{le=\"0.1\"} 4
sched_invoke_duration_seconds_bucket{le=\"+Inf\"} 5
sched_invoke_duration_seconds_sum 5.0605
sched_invoke_duration_seconds_count 5
# HELP sched_invoke_duration_seconds_quantile Estimated quantiles of sched_invoke_duration_seconds
# TYPE sched_invoke_duration_seconds_quantile gauge
sched_invoke_duration_seconds_quantile{quantile=\"0.5\"} 0.007750000000000001
sched_invoke_duration_seconds_quantile{quantile=\"0.95\"} 0.1
sched_invoke_duration_seconds_quantile{quantile=\"0.99\"} 0.1
# HELP sim_core_utilization Fraction of cores busy.
# TYPE sim_core_utilization gauge
sim_core_utilization 0.75
# HELP sim_jobs_started_total Jobs started, by allocation mode.
# TYPE sim_jobs_started_total counter
sim_jobs_started_total{mode=\"exclusive\"} 7
sim_jobs_started_total{mode=\"shared\"} 3
# HELP sim_queue_depth Jobs waiting in the queue.
# TYPE sim_queue_depth gauge
sim_queue_depth 12
# HELP sim_strategy_info Strategy in use (always 1).
# TYPE sim_strategy_info gauge
sim_strategy_info{strategy=\"co-\\\"backfill\\\"\\nv2\\\\x\"} 1
";
    assert_eq!(render_prometheus(&r), golden);
}

#[test]
fn rendering_is_stable_across_calls() {
    let r = MetricsRegistry::new();
    r.counter("a_total", "a").inc();
    r.gauge("b", "b").set(2.5);
    assert_eq!(render_prometheus(&r), render_prometheus(&r));
}
