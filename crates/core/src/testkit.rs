//! Shared fixtures for policy unit tests (compiled only for tests).

use nodeshare_cluster::{ClusterSpec, JobId, NodeSpec};
use nodeshare_engine::{SimConfig, SimOutcome};
use nodeshare_perf::{AppCatalog, AppId, CoRunTruth, ContentionModel, Predictor};
use nodeshare_workload::{JobSpec, Workload};

/// A test world: cluster spec, truth matrix, workload.
pub struct World {
    /// Cluster spec (tiny nodes).
    pub config: SimConfig,
    /// Ground-truth co-run rates.
    pub matrix: CoRunTruth,
    /// The jobs.
    pub workload: Workload,
}

/// Builds a job: `nodes` nodes, true runtime `runtime`, estimate 2×,
/// submit at `id` seconds (so earlier ids arrive earlier), share-eligible,
/// app = miniFE by default.
pub fn job(id: u64, nodes: u32, runtime: f64) -> JobSpec {
    JobSpec {
        malleable: Default::default(),
        id: JobId(id),
        app: AppId(0), // miniFE
        nodes,
        submit: id as f64,
        runtime_exclusive: runtime,
        walltime_estimate: runtime * 2.0,
        mem_per_node_mib: 64,
        share_eligible: true,
        user: 0,
    }
}

/// A job with an explicit app by catalog name.
pub fn job_app(id: u64, nodes: u32, runtime: f64, app_name: &str) -> JobSpec {
    let catalog = AppCatalog::trinity();
    let mut j = job(id, nodes, runtime);
    j.app = catalog.by_name(app_name).expect("app exists").id;
    j
}

/// Builds a world with `nodes` tiny nodes.
pub fn world(nodes: u32, jobs: Vec<JobSpec>) -> World {
    let catalog = AppCatalog::trinity();
    let matrix = CoRunTruth::build(&catalog, &ContentionModel::calibrated());
    World {
        config: SimConfig::new(ClusterSpec::new(nodes, NodeSpec::tiny())),
        matrix,
        workload: Workload::new(jobs).expect("valid jobs"),
    }
}

/// Runs the world under a policy.
pub fn simulate(world: &World, policy: &mut dyn nodeshare_engine::Scheduler) -> SimOutcome {
    nodeshare_engine::run(&world.workload, &world.matrix, policy, &world.config)
}

/// Runs the world under a policy with a telemetry sink attached,
/// returning the outcome and the populated telemetry.
pub fn simulate_with_telemetry(
    world: &World,
    policy: &mut dyn nodeshare_engine::Scheduler,
) -> (SimOutcome, nodeshare_engine::SimTelemetry) {
    let tele = nodeshare_engine::SimTelemetry::new(300.0);
    let out = nodeshare_engine::run_with_telemetry(
        &world.workload,
        &world.matrix,
        policy,
        &world.config,
        &tele,
    );
    (out, tele)
}

/// The oracle predictor for the trinity catalog.
pub fn oracle() -> Predictor {
    Predictor::oracle(&AppCatalog::trinity(), &ContentionModel::calibrated())
}
