//! Incremental planning state for the optimized scheduler hot path.
//!
//! The reference pickers in [`crate::util`] re-derive everything from the
//! cluster on every call: they walk all nodes for free times, allocate a
//! fresh occupant list per partial node, and re-evaluate the predictor
//! per (candidate, resident) pair. A saturated campaign calls them
//! millions of times against a cluster that changed only once in between.
//!
//! The [`Planner`] keeps the derived state and invalidates it by *events*
//! instead of recomputing it per pass:
//!
//! * **Version-keyed caches** — partial-node info (residents, memory,
//!   eligibility) and raw node free times are rebuilt only when the
//!   cluster's `(instance, version)` key changes, i.e. when an allocation
//!   actually happened.
//! * **Reservation as a bitset** — the head reservation is a shadow time
//!   plus a `Vec<bool>` over node ids, computed once per pass with a
//!   selection (not a full sort) over the cached free times.
//! * **Pairing table** — all pairwise policy answers come from the dense
//!   [`PairingTable`] instead of predictor evaluations.
//! * **Per-pass failure memo** — a shared-placement attempt is fully
//!   determined, within one pass, by `(app, node count, reservation
//!   restriction, memory-threshold rank, walltime bits)`; failed keys are
//!   remembered so equivalent queue candidates skip the whole evaluation.
//!   The memo (and the exact-upper-bound early exits) are only engaged
//!   when telemetry is off, because skipping an evaluation also skips its
//!   `pairing_queries` counter increments; outcomes are identical either
//!   way.
//!
//! Every shortcut here is *exact*: for any context, the pickers return
//! bit-identical results to [`crate::util::pick_exclusive`] and
//! [`crate::util::pick_shared`] — `tests/differential.rs` holds the
//! optimized strategies to byte-equal decision traces against the
//! reference implementations.

use crate::pairing::Pairing;
use crate::pairtab::PairingTable;
use nodeshare_cluster::{AdminState, JobId, NodeId};
use nodeshare_engine::SchedContext;
use nodeshare_perf::AppId;
use nodeshare_workload::JobSpec;
use std::collections::HashSet;

/// One resident of a partial node, denormalized from the running map.
#[derive(Clone, Copy, Debug)]
struct Resident {
    job: JobId,
    app: AppId,
    est_end: f64,
    nodes: u32,
}

/// Cached per-partial-node planning facts (residents live in the flat
/// `Planner::residents` arena to keep the rebuild allocation-free).
#[derive(Clone, Copy, Debug)]
struct PartialInfo {
    node: NodeId,
    mem_free: u64,
    /// Every resident is known to the running map and share-eligible —
    /// the per-resident preconditions that do not depend on the candidate.
    eligible: bool,
    res_start: u32,
    res_len: u32,
}

/// Event-invalidated planning cache + allocation-free picker scratch.
#[derive(Clone, Debug)]
pub(crate) struct Planner {
    table: PairingTable,
    /// `(cluster instance, cluster version)` the caches were built for.
    cache_key: Option<(u64, u64)>,
    partials: Vec<PartialInfo>,
    residents: Vec<Resident>,
    eligible_count: usize,
    /// Ascending `mem_free` of all partial nodes, for the memo key's
    /// memory-threshold rank.
    mem_sorted: Vec<u64>,
    /// Raw free time per up node in id order: max resident `est_end`, or
    /// −∞ when idle (clamped to `now` at reservation time, matching the
    /// reference fold that starts at `now`).
    free_raw: Vec<(NodeId, f64)>,
    // Per-pass reservation state.
    shadow: f64,
    reserved: Vec<bool>,
    reserved_idle: usize,
    eligible_unreserved: usize,
    // Per-pass shared-planning failure memo (packed keys).
    failed_shared: HashSet<u128>,
    // Scratch buffers reused across calls.
    sort_buf: Vec<(NodeId, f64)>,
    cand_buf: Vec<(u32, NodeId, f64)>,
    nodes_buf: Vec<NodeId>,
    apps_buf: Vec<AppId>,
    partner_buf: Vec<(JobId, u32, f64)>,
}

impl Planner {
    pub fn new(pairing: &Pairing) -> Self {
        Planner {
            table: PairingTable::build(pairing),
            cache_key: None,
            partials: Vec::new(),
            residents: Vec::new(),
            eligible_count: 0,
            mem_sorted: Vec::new(),
            free_raw: Vec::new(),
            shadow: f64::INFINITY,
            reserved: Vec::new(),
            reserved_idle: 0,
            eligible_unreserved: 0,
            failed_shared: HashSet::new(),
            sort_buf: Vec::new(),
            cand_buf: Vec::new(),
            nodes_buf: Vec::new(),
            apps_buf: Vec::new(),
            partner_buf: Vec::new(),
        }
    }

    /// Partial nodes whose whole stack could accept *some* candidate.
    #[inline]
    pub fn eligible_partial_count(&self) -> usize {
        self.eligible_count
    }

    /// The current pass's shadow time (∞ before a reservation is set).
    #[inline]
    pub fn shadow(&self) -> f64 {
        self.shadow
    }

    /// Starts one scheduling pass: refreshes the version-keyed caches if
    /// the cluster changed, clears the failure memo, and resets the
    /// reservation to "none" (shadow ∞, nothing restricted).
    pub fn begin_pass(&mut self, ctx: &SchedContext<'_>) {
        self.refresh(ctx);
        self.failed_shared.clear();
        self.shadow = f64::INFINITY;
        self.reserved_idle = 0;
        self.eligible_unreserved = self.eligible_count;
    }

    fn refresh(&mut self, ctx: &SchedContext<'_>) {
        let key = (ctx.cluster.instance_id(), ctx.cluster.version());
        if self.cache_key == Some(key) {
            return;
        }
        self.partials.clear();
        self.residents.clear();
        self.mem_sorted.clear();
        self.eligible_count = 0;
        for id in ctx.cluster.partial_nodes() {
            let Some(node) = ctx.cluster.node(id) else {
                continue;
            };
            let res_start = self.residents.len() as u32;
            let mut eligible = true;
            for j in node.occupants() {
                match ctx.running.get(&j) {
                    Some(r) if r.share_eligible => self.residents.push(Resident {
                        job: j,
                        app: r.app,
                        est_end: r.est_end(),
                        nodes: r.nodes,
                    }),
                    // Unknown or non-eligible resident: the node can never
                    // host a co-runner, whatever the candidate.
                    _ => {
                        eligible = false;
                        break;
                    }
                }
            }
            if !eligible {
                self.residents.truncate(res_start as usize);
            }
            let mem_free = node.mem_free();
            self.partials.push(PartialInfo {
                node: id,
                mem_free,
                eligible,
                res_start,
                res_len: self.residents.len() as u32 - res_start,
            });
            self.mem_sorted.push(mem_free);
            self.eligible_count += eligible as usize;
        }
        self.mem_sorted.sort_unstable();
        self.free_raw.clear();
        for node in ctx.cluster.nodes() {
            if node.admin_state() != AdminState::Up {
                continue;
            }
            let raw = node
                .lane_owners()
                .filter_map(|j| ctx.running.get(&j))
                .map(|r| r.est_end())
                .fold(f64::NEG_INFINITY, f64::max);
            self.free_raw.push((node.id(), raw));
        }
        self.reserved.clear();
        self.reserved.resize(ctx.cluster.node_count(), false);
        self.cache_key = Some(key);
    }

    /// Computes the head reservation for `k` nodes: same shadow and same
    /// reserved-node set as [`crate::util::HeadReservation::compute`],
    /// via a selection over the cached free times instead of a full sort
    /// (the `(free time, id)` key is a unique total order, so the k
    /// smallest — and the k-th itself — are identical).
    pub fn compute_reservation(&mut self, ctx: &SchedContext<'_>, k: usize) {
        assert!(k >= 1, "reservation for a zero-node head");
        self.reserved.fill(false);
        if self.free_raw.len() < k {
            self.shadow = f64::INFINITY;
            self.reserved_idle = 0;
            self.eligible_unreserved = self.eligible_count;
            return;
        }
        self.sort_buf.clear();
        self.sort_buf
            .extend(self.free_raw.iter().map(|&(n, raw)| (n, raw.max(ctx.now))));
        self.sort_buf
            .select_nth_unstable_by(k - 1, |a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        self.shadow = self.sort_buf[k - 1].1;
        for &(n, _) in &self.sort_buf[..k] {
            self.reserved[n.index()] = true;
        }
        self.reserved_idle = ctx
            .cluster
            .idle_nodes()
            .filter(|n| self.reserved[n.index()])
            .count();
        self.eligible_unreserved = self
            .partials
            .iter()
            .filter(|p| p.eligible && !self.reserved[p.node.index()])
            .count();
    }

    /// [`crate::util::pick_exclusive`] with `allowed = !restricted-or-
    /// unreserved`, in O(k): idle nodes always have their full memory
    /// free (memory is charged with lanes and released with them), so the
    /// per-node memory check collapses to one capacity comparison and the
    /// result is simply the first `k` allowed idle ids.
    pub fn pick_exclusive(
        &self,
        ctx: &SchedContext<'_>,
        job: &JobSpec,
        restricted: bool,
    ) -> Option<Vec<NodeId>> {
        let k = job.nodes as usize;
        if k == 0 {
            return Some(Vec::new());
        }
        if job.mem_per_node_mib > ctx.cluster.spec().node.mem_mib {
            return None;
        }
        let avail = ctx.cluster.idle_count() - if restricted { self.reserved_idle } else { 0 };
        if k > avail {
            return None;
        }
        let picked: Vec<NodeId> = if restricted {
            ctx.cluster
                .idle_nodes()
                .filter(|n| !self.reserved[n.index()])
                .take(k)
                .collect()
        } else {
            ctx.cluster.idle_nodes().take(k).collect()
        };
        debug_assert_eq!(picked.len(), k);
        Some(picked)
    }

    /// [`crate::util::pick_shared`] against the cached state. With
    /// `use_memo` (telemetry off), failed attempts are memoized under a
    /// key that exactly determines the outcome within one pass, and
    /// attempts that provably cannot assemble `k` nodes exit before
    /// evaluating anything.
    pub fn pick_shared(
        &mut self,
        ctx: &SchedContext<'_>,
        job: &JobSpec,
        pairing: &Pairing,
        restricted: bool,
        use_memo: bool,
    ) -> Option<Vec<NodeId>> {
        if !job.share_eligible || !self.table.sharing_enabled() {
            return None;
        }
        let k = job.nodes as usize;
        let idle_ok = job.mem_per_node_mib <= ctx.cluster.spec().node.mem_mib;
        let mut key = 0u128;
        if use_memo {
            // Rank of the memory requirement among partial nodes: how many
            // pass the memory check. Within one pass this rank pins the
            // exact subset of partial nodes the evaluation would consider,
            // so together with the other fields it determines the outcome.
            let t = self.partials.len()
                - self
                    .mem_sorted
                    .partition_point(|&m| m < job.mem_per_node_mib);
            let wt = pairing
                .duration_match
                .map_or(0u64, |_| job.walltime_estimate.to_bits());
            key = job.app.index() as u128
                | (k as u128) << 8
                | (restricted as u128) << 40
                | (idle_ok as u128) << 41
                | (t as u128) << 42
                | (wt as u128) << 64;
            if self.failed_shared.contains(&key) {
                return None;
            }
            // Exact upper bound on assemblable nodes: eligible partial
            // nodes passing the reservation and memory filters, plus
            // allowed idle nodes.
            let avail_partials = if restricted {
                self.eligible_unreserved
            } else {
                self.eligible_count
            }
            .min(t);
            let avail_idle = if idle_ok {
                ctx.cluster.idle_count() - if restricted { self.reserved_idle } else { 0 }
            } else {
                0
            };
            if k > avail_partials + avail_idle {
                return None;
            }
        }
        match self.plan_and_eval(ctx, job, pairing, restricted, k, idle_ok) {
            Some(net_gain) if net_gain > pairing.net_gain_floor => Some(self.nodes_buf.clone()),
            _ => {
                if use_memo {
                    self.failed_shared.insert(key);
                }
                None
            }
        }
    }

    /// The body of [`crate::util::plan_shared`] over the cached partials:
    /// same filters in the same order (including the telemetry counter
    /// points), same sort key, same evaluation fold order — so scores,
    /// rates, and the net gain come out bit-identical. Leaves the chosen
    /// nodes in `nodes_buf` and returns the net gain.
    fn plan_and_eval(
        &mut self,
        ctx: &SchedContext<'_>,
        job: &JobSpec,
        pairing: &Pairing,
        restricted: bool,
        k: usize,
        idle_ok: bool,
    ) -> Option<f64> {
        self.cand_buf.clear();
        let cand_bound = job.walltime_estimate * ctx.shared_grace.max(1.0);
        'nodes: for (i, info) in self.partials.iter().enumerate() {
            if restricted && self.reserved[info.node.index()] {
                continue;
            }
            if let Some(t) = ctx.telemetry {
                t.pairing_queries.inc();
            }
            if info.mem_free < job.mem_per_node_mib {
                continue;
            }
            if !info.eligible {
                continue;
            }
            let res =
                &self.residents[info.res_start as usize..(info.res_start + info.res_len) as usize];
            if let Some(theta) = pairing.duration_match {
                for r in res {
                    let remaining = (r.est_end - ctx.now).max(0.0);
                    let overlap = remaining.min(cand_bound) / remaining.max(cand_bound).max(1e-9);
                    if overlap < theta {
                        continue 'nodes;
                    }
                }
            }
            let mut score = f64::INFINITY;
            for r in res {
                score = score.min(self.table.score(pairing, job.app, r.app));
            }
            let ok = match res {
                [r] => self.table.allows(pairing, job.app, r.app),
                _ => {
                    self.apps_buf.clear();
                    self.apps_buf.extend(res.iter().map(|r| r.app));
                    self.table.allows_stack(pairing, job.app, &self.apps_buf)
                }
            };
            if !ok {
                continue;
            }
            if let Some(t) = ctx.telemetry {
                t.pairing_hits.inc();
            }
            self.cand_buf.push((i as u32, info.node, score));
        }
        // Best predicted pairs first, ties by node id — a unique total
        // order, so the unstable sort is deterministic.
        self.cand_buf
            .sort_unstable_by(|a, b| b.2.total_cmp(&a.2).then(a.1.cmp(&b.1)));
        let chosen = self.cand_buf.len().min(k);
        self.nodes_buf.clear();
        self.nodes_buf
            .extend(self.cand_buf[..chosen].iter().map(|c| c.1));
        if chosen < k && idle_ok {
            let need = k - chosen;
            if restricted {
                self.nodes_buf.extend(
                    ctx.cluster
                        .idle_nodes()
                        .filter(|n| !self.reserved[n.index()])
                        .take(need),
                );
            } else {
                self.nodes_buf.extend(ctx.cluster.idle_nodes().take(need));
            }
        }
        if self.nodes_buf.len() < k {
            return None;
        }
        // Idle nodes host no residents, so only the chosen partial nodes
        // contribute to the rates and losses.
        let mut candidate_rate = 1.0f64;
        self.partner_buf.clear();
        for &(i, _, _) in &self.cand_buf[..chosen] {
            let info = &self.partials[i as usize];
            let res =
                &self.residents[info.res_start as usize..(info.res_start + info.res_len) as usize];
            match res {
                [r] => {
                    let (cr, rr) = self.table.stack_pair(pairing, job.app, r.app);
                    candidate_rate = candidate_rate.min(cr);
                    update_partner(&mut self.partner_buf, r, rr);
                }
                _ => {
                    self.apps_buf.clear();
                    self.apps_buf.extend(res.iter().map(|r| r.app));
                    let sr = self.table.stack_rates(pairing, job.app, &self.apps_buf);
                    candidate_rate = candidate_rate.min(sr.candidate);
                    for (r, &rate) in res.iter().zip(&sr.residents) {
                        update_partner(&mut self.partner_buf, r, rate);
                    }
                }
            }
        }
        let losses: f64 = self
            .partner_buf
            .iter()
            .map(|&(_, nodes, rate)| nodes as f64 * (1.0 - rate))
            .sum();
        Some(k as f64 * candidate_rate - losses)
    }
}

/// Tracks each distinct partner once at its worst predicted rate, in
/// first-encounter order (the order the reference's loss sum uses).
fn update_partner(buf: &mut Vec<(JobId, u32, f64)>, r: &Resident, rate: f64) {
    match buf.iter_mut().find(|p| p.0 == r.job) {
        Some(p) => p.2 = p.2.min(rate),
        None => buf.push((r.job, r.nodes, rate)),
    }
}
