//! Incremental planning state for the optimized scheduler hot path.
//!
//! The reference pickers in [`crate::util`] re-derive everything from the
//! cluster on every call: they walk all nodes for free times, allocate a
//! fresh occupant list per partial node, and re-evaluate the predictor
//! per (candidate, resident) pair. A saturated campaign calls them
//! millions of times against a cluster that changed only once in between.
//!
//! The [`Planner`] keeps the derived state and invalidates it by *events*
//! instead of recomputing it per pass:
//!
//! * **Version-keyed caches** — partial-node info (residents, memory,
//!   eligibility) and raw node free times are rebuilt only when the
//!   cluster's `(instance, version)` key changes, i.e. when an allocation
//!   actually happened.
//! * **Reservation as a bitset** — the head reservation is a shadow time
//!   plus a `Vec<bool>` over node ids, computed once per pass with a
//!   selection (not a full sort) over the cached free times.
//! * **Pairing table** — all pairwise policy answers come from the dense
//!   [`PairingTable`] instead of predictor evaluations.
//! * **Per-pass failure memo** — a shared-placement attempt is fully
//!   determined, within one pass, by `(app, node count, reservation
//!   restriction, memory-threshold rank, walltime bits)`; failed keys are
//!   remembered so equivalent queue candidates skip the whole evaluation.
//!   The memo (and the exact-upper-bound early exits) are only engaged
//!   when telemetry is off, because skipping an evaluation also skips its
//!   `pairing_queries` counter increments; outcomes are identical either
//!   way.
//!
//! Every shortcut here is *exact*: for any context, the pickers return
//! bit-identical results to [`crate::util::pick_exclusive`] and
//! [`crate::util::pick_shared`] — `tests/differential.rs` holds the
//! optimized strategies to byte-equal decision traces against the
//! reference implementations.

use crate::pairing::Pairing;
use crate::pairtab::PairingTable;
use crate::util::PLAN_EPS;
use nodeshare_cluster::{AdminState, JobId, NodeId};
use nodeshare_engine::SchedContext;
use nodeshare_perf::AppId;
use nodeshare_workload::JobSpec;
use std::collections::HashSet;

/// One resident of a partial node, denormalized from the running map.
#[derive(Clone, Copy, Debug)]
struct Resident {
    job: JobId,
    app: AppId,
    est_end: f64,
    nodes: u32,
}

/// Cached per-partial-node planning facts (residents live in the flat
/// `Planner::residents` arena to keep the rebuild allocation-free).
#[derive(Clone, Copy, Debug)]
struct PartialInfo {
    node: NodeId,
    mem_free: u64,
    /// Every resident is known to the running map and share-eligible —
    /// the per-resident preconditions that do not depend on the candidate.
    eligible: bool,
    res_start: u32,
    res_len: u32,
}

/// Event-invalidated planning cache + allocation-free picker scratch.
#[derive(Clone, Debug)]
pub(crate) struct Planner {
    table: PairingTable,
    /// `(cluster instance, cluster version)` the caches were built for.
    cache_key: Option<(u64, u64)>,
    partials: Vec<PartialInfo>,
    residents: Vec<Resident>,
    eligible_count: usize,
    /// Ascending `mem_free` of all partial nodes, for the memo key's
    /// memory-threshold rank.
    mem_sorted: Vec<u64>,
    /// Raw free time per up node in id order: max resident `est_end`, or
    /// −∞ when idle (clamped to `now` at reservation time, matching the
    /// reference fold that starts at `now`).
    free_raw: Vec<(NodeId, f64)>,
    // Per-pass reservation state.
    shadow: f64,
    reserved: Vec<bool>,
    reserved_idle: usize,
    eligible_unreserved: usize,
    // Shared-planning failure memo (packed keys), valid within one era.
    // detlint: allow(D1, u128-keyed failure memo probed via contains; never iterated)
    failed_shared: HashSet<u128>,
    /// Era the failure memo is valid for: cluster stamp plus the pass
    /// instant (`now` bits). A plan's outcome depends on occupancy, on
    /// `now` (free-time clamping, duration-match overlap), and on the
    /// reservation — tracked separately below — so within one era the
    /// memo carries across engine re-invocations (the same cross-pass
    /// stamp discipline as [`ReservationTimeline::begin_pass`]).
    memo_era: Option<(u64, u64, u64)>,
    /// Head width the current reservation was computed for. `restricted`
    /// memo entries encode the reservation set, which is a deterministic
    /// function of (era, k); a different head width invalidates them.
    memo_resv_k: usize,
    // Scratch buffers reused across calls.
    sort_buf: Vec<(NodeId, f64)>,
    cand_buf: Vec<(u32, NodeId, f64)>,
    nodes_buf: Vec<NodeId>,
    apps_buf: Vec<AppId>,
    partner_buf: Vec<(JobId, u32, f64)>,
}

impl Planner {
    pub fn new(pairing: &Pairing) -> Self {
        Planner {
            table: PairingTable::build(pairing),
            cache_key: None,
            partials: Vec::new(),
            residents: Vec::new(),
            eligible_count: 0,
            mem_sorted: Vec::new(),
            free_raw: Vec::new(),
            shadow: f64::INFINITY,
            reserved: Vec::new(),
            reserved_idle: 0,
            eligible_unreserved: 0,
            // detlint: allow(D1, failure memo construction; membership-only, see the field note)
            failed_shared: HashSet::new(),
            memo_era: None,
            memo_resv_k: usize::MAX,
            sort_buf: Vec::new(),
            cand_buf: Vec::new(),
            nodes_buf: Vec::new(),
            apps_buf: Vec::new(),
            partner_buf: Vec::new(),
        }
    }

    /// Partial nodes whose whole stack could accept *some* candidate.
    #[inline]
    pub fn eligible_partial_count(&self) -> usize {
        self.eligible_count
    }

    /// Number of memoized shared-placement failures (test observability).
    #[cfg(test)]
    fn memo_len(&self) -> usize {
        self.failed_shared.len()
    }

    /// The current pass's shadow time (∞ before a reservation is set).
    #[inline]
    pub fn shadow(&self) -> f64 {
        self.shadow
    }

    /// Starts one scheduling pass: refreshes the version-keyed caches if
    /// the cluster changed, rolls the failure-memo era, and resets the
    /// reservation to "none" (shadow ∞, nothing restricted).
    ///
    /// The memo is cleared only when the `(cluster stamp, now)` era
    /// actually changed — every input a memoized failure depends on is
    /// then unchanged, so successive invocations within one instant
    /// (e.g. several arrivals at the same event time) keep their misses.
    pub fn begin_pass(&mut self, ctx: &SchedContext<'_>) {
        self.refresh(ctx);
        let (instance, version) = ctx.cluster.stamp();
        let era = (instance, version, ctx.now.to_bits());
        if self.memo_era != Some(era) {
            self.failed_shared.clear();
            self.memo_era = Some(era);
            self.memo_resv_k = usize::MAX;
        }
        self.shadow = f64::INFINITY;
        self.reserved_idle = 0;
        self.eligible_unreserved = self.eligible_count;
    }

    fn refresh(&mut self, ctx: &SchedContext<'_>) {
        let key = (ctx.cluster.instance_id(), ctx.cluster.version());
        if self.cache_key == Some(key) {
            return;
        }
        self.partials.clear();
        self.residents.clear();
        self.mem_sorted.clear();
        self.eligible_count = 0;
        for id in ctx.cluster.partial_nodes() {
            let Some(node) = ctx.cluster.node(id) else {
                continue;
            };
            let res_start = self.residents.len() as u32;
            let mut eligible = true;
            for j in node.occupants() {
                match ctx.running.get(&j) {
                    Some(r) if r.share_eligible => self.residents.push(Resident {
                        job: j,
                        app: r.app,
                        est_end: r.est_end(),
                        nodes: r.nodes,
                    }),
                    // Unknown or non-eligible resident: the node can never
                    // host a co-runner, whatever the candidate.
                    _ => {
                        eligible = false;
                        break;
                    }
                }
            }
            if !eligible {
                self.residents.truncate(res_start as usize);
            }
            let mem_free = node.mem_free();
            self.partials.push(PartialInfo {
                node: id,
                mem_free,
                eligible,
                res_start,
                res_len: self.residents.len() as u32 - res_start,
            });
            self.mem_sorted.push(mem_free);
            self.eligible_count += eligible as usize;
        }
        self.mem_sorted.sort_unstable();
        self.free_raw.clear();
        for node in ctx.cluster.nodes() {
            if node.admin_state() != AdminState::Up {
                continue;
            }
            let raw = node
                .lane_owners()
                .filter_map(|j| ctx.running.get(&j))
                .map(|r| r.est_end())
                .fold(f64::NEG_INFINITY, f64::max);
            self.free_raw.push((node.id(), raw));
        }
        self.reserved.clear();
        self.reserved.resize(ctx.cluster.node_count(), false);
        self.cache_key = Some(key);
    }

    /// Computes the head reservation for `k` nodes: same shadow and same
    /// reserved-node set as [`crate::util::HeadReservation::compute`],
    /// via a selection over the cached free times instead of a full sort
    /// (the `(free time, id)` key is a unique total order, so the k
    /// smallest — and the k-th itself — are identical).
    pub fn compute_reservation(&mut self, ctx: &SchedContext<'_>, k: usize) {
        assert!(k >= 1, "reservation for a zero-node head");
        // `restricted` memo entries were computed against the previous
        // reservation; a different head width changes the reserved set,
        // so they (conservatively, the whole memo) must go.
        if k != self.memo_resv_k {
            self.failed_shared.clear();
            self.memo_resv_k = k;
        }
        self.reserved.fill(false);
        if self.free_raw.len() < k {
            self.shadow = f64::INFINITY;
            self.reserved_idle = 0;
            self.eligible_unreserved = self.eligible_count;
            return;
        }
        self.sort_buf.clear();
        self.sort_buf
            .extend(self.free_raw.iter().map(|&(n, raw)| (n, raw.max(ctx.now))));
        self.sort_buf
            .select_nth_unstable_by(k - 1, |a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        self.shadow = self.sort_buf[k - 1].1;
        for &(n, _) in &self.sort_buf[..k] {
            self.reserved[n.index()] = true;
        }
        self.reserved_idle = ctx
            .cluster
            .idle_nodes()
            .filter(|n| self.reserved[n.index()])
            .count();
        self.eligible_unreserved = self
            .partials
            .iter()
            .filter(|p| p.eligible && !self.reserved[p.node.index()])
            .count();
    }

    /// [`crate::util::pick_exclusive`] with `allowed = !restricted-or-
    /// unreserved`, in O(k): idle nodes always have their full memory
    /// free (memory is charged with lanes and released with them), so the
    /// per-node memory check collapses to one capacity comparison and the
    /// result is simply the first `k` allowed idle ids.
    pub fn pick_exclusive(
        &self,
        ctx: &SchedContext<'_>,
        job: &JobSpec,
        restricted: bool,
    ) -> Option<Vec<NodeId>> {
        let k = job.nodes as usize;
        if k == 0 {
            return Some(Vec::new());
        }
        if u64::from(job.mem_per_node_mib) > ctx.cluster.spec().node.mem_mib {
            return None;
        }
        let avail = ctx.cluster.idle_count() - if restricted { self.reserved_idle } else { 0 };
        if k > avail {
            return None;
        }
        let picked: Vec<NodeId> = if restricted {
            ctx.cluster
                .idle_nodes()
                .filter(|n| !self.reserved[n.index()])
                .take(k)
                .collect()
        } else {
            ctx.cluster.idle_nodes().take(k).collect()
        };
        debug_assert_eq!(picked.len(), k);
        Some(picked)
    }

    /// [`crate::util::pick_shared`] against the cached state. With
    /// `use_memo` (telemetry off), failed attempts are memoized under a
    /// key that exactly determines the outcome within one pass, and
    /// attempts that provably cannot assemble `k` nodes exit before
    /// evaluating anything.
    pub fn pick_shared(
        &mut self,
        ctx: &SchedContext<'_>,
        job: &JobSpec,
        pairing: &Pairing,
        restricted: bool,
        use_memo: bool,
    ) -> Option<Vec<NodeId>> {
        if !job.share_eligible || !self.table.sharing_enabled() {
            return None;
        }
        let k = job.nodes as usize;
        let idle_ok = u64::from(job.mem_per_node_mib) <= ctx.cluster.spec().node.mem_mib;
        let mut key = 0u128;
        if use_memo {
            // Rank of the memory requirement among partial nodes: how many
            // pass the memory check. Within one pass this rank pins the
            // exact subset of partial nodes the evaluation would consider,
            // so together with the other fields it determines the outcome.
            let t = self.partials.len()
                - self
                    .mem_sorted
                    .partition_point(|&m| m < u64::from(job.mem_per_node_mib));
            let wt = pairing
                .duration_match
                .map_or(0u64, |_| job.walltime_estimate.to_bits());
            key = job.app.index() as u128
                | (k as u128) << 8
                | (restricted as u128) << 40
                | (idle_ok as u128) << 41
                | (t as u128) << 42
                | (wt as u128) << 64;
            if self.failed_shared.contains(&key) {
                return None;
            }
            // Exact upper bound on assemblable nodes: eligible partial
            // nodes passing the reservation and memory filters, plus
            // allowed idle nodes.
            let avail_partials = if restricted {
                self.eligible_unreserved
            } else {
                self.eligible_count
            }
            .min(t);
            let avail_idle = if idle_ok {
                ctx.cluster.idle_count() - if restricted { self.reserved_idle } else { 0 }
            } else {
                0
            };
            if k > avail_partials + avail_idle {
                return None;
            }
        }
        match self.plan_and_eval(ctx, job, pairing, restricted, k, idle_ok) {
            Some(net_gain) if net_gain > pairing.net_gain_floor => Some(self.nodes_buf.clone()),
            _ => {
                if use_memo {
                    self.failed_shared.insert(key);
                }
                None
            }
        }
    }

    /// The body of [`crate::util::plan_shared`] over the cached partials:
    /// same filters in the same order (including the telemetry counter
    /// points), same sort key, same evaluation fold order — so scores,
    /// rates, and the net gain come out bit-identical. Leaves the chosen
    /// nodes in `nodes_buf` and returns the net gain.
    fn plan_and_eval(
        &mut self,
        ctx: &SchedContext<'_>,
        job: &JobSpec,
        pairing: &Pairing,
        restricted: bool,
        k: usize,
        idle_ok: bool,
    ) -> Option<f64> {
        self.cand_buf.clear();
        let cand_bound = job.walltime_estimate * ctx.shared_grace.max(1.0);
        'nodes: for (i, info) in self.partials.iter().enumerate() {
            if restricted && self.reserved[info.node.index()] {
                continue;
            }
            // Times the full candidate evaluation (dropped on every
            // `continue` path too).
            let _pairing_span = ctx.telemetry.map(|t| t.time_pairing());
            if let Some(t) = ctx.telemetry {
                t.pairing_queries.inc();
            }
            if info.mem_free < u64::from(job.mem_per_node_mib) {
                continue;
            }
            if !info.eligible {
                continue;
            }
            let res =
                &self.residents[info.res_start as usize..(info.res_start + info.res_len) as usize];
            if let Some(theta) = pairing.duration_match {
                for r in res {
                    let remaining = (r.est_end - ctx.now).max(0.0);
                    let overlap = remaining.min(cand_bound) / remaining.max(cand_bound).max(1e-9);
                    if overlap < theta {
                        continue 'nodes;
                    }
                }
            }
            let mut score = f64::INFINITY;
            for r in res {
                score = score.min(self.table.score(pairing, job.app, r.app));
            }
            let ok = match res {
                [r] => self.table.allows(pairing, job.app, r.app),
                _ => {
                    self.apps_buf.clear();
                    self.apps_buf.extend(res.iter().map(|r| r.app));
                    self.table.allows_stack(pairing, job.app, &self.apps_buf)
                }
            };
            if !ok {
                continue;
            }
            if let Some(t) = ctx.telemetry {
                t.pairing_hits.inc();
            }
            self.cand_buf.push((i as u32, info.node, score));
        }
        // Best predicted pairs first, ties by node id — a unique total
        // order, so the unstable sort is deterministic.
        self.cand_buf
            .sort_unstable_by(|a, b| b.2.total_cmp(&a.2).then(a.1.cmp(&b.1)));
        let chosen = self.cand_buf.len().min(k);
        self.nodes_buf.clear();
        self.nodes_buf
            .extend(self.cand_buf[..chosen].iter().map(|c| c.1));
        if chosen < k && idle_ok {
            let need = k - chosen;
            if restricted {
                self.nodes_buf.extend(
                    ctx.cluster
                        .idle_nodes()
                        .filter(|n| !self.reserved[n.index()])
                        .take(need),
                );
            } else {
                self.nodes_buf.extend(ctx.cluster.idle_nodes().take(need));
            }
        }
        if self.nodes_buf.len() < k {
            return None;
        }
        // Idle nodes host no residents, so only the chosen partial nodes
        // contribute to the rates and losses.
        let mut candidate_rate = 1.0f64;
        self.partner_buf.clear();
        for &(i, _, _) in &self.cand_buf[..chosen] {
            let info = &self.partials[i as usize];
            let res =
                &self.residents[info.res_start as usize..(info.res_start + info.res_len) as usize];
            match res {
                [r] => {
                    let (cr, rr) = self.table.stack_pair(pairing, job.app, r.app);
                    candidate_rate = candidate_rate.min(cr);
                    update_partner(&mut self.partner_buf, r, rr);
                }
                _ => {
                    self.apps_buf.clear();
                    self.apps_buf.extend(res.iter().map(|r| r.app));
                    let sr = self.table.stack_rates(pairing, job.app, &self.apps_buf);
                    candidate_rate = candidate_rate.min(sr.candidate);
                    for (r, &rate) in res.iter().zip(&sr.residents) {
                        update_partner(&mut self.partner_buf, r, rate);
                    }
                }
            }
        }
        let losses: f64 = self
            .partner_buf
            .iter()
            .map(|&(_, nodes, rate)| nodes as f64 * (1.0 - rate))
            .sum();
        Some(k as f64 * candidate_rate - losses)
    }
}

/// Tracks each distinct partner once at its worst predicted rate, in
/// first-encounter order (the order the reference's loss sum uses).
fn update_partner(buf: &mut Vec<(JobId, u32, f64)>, r: &Resident, rate: f64) {
    match buf.iter_mut().find(|p| p.0 == r.job) {
        Some(p) => p.2 = p.2.min(rate),
        None => buf.push((r.job, r.nodes, rate)),
    }
}

/// Incrementally maintained availability profile for conservative
/// backfill — the diffable reservation timeline behind the optimized
/// [`crate::Conservative`] path.
///
/// The reference implementation rebuilds an
/// [`crate::util::AvailabilityProfile`] from the context on every
/// scheduling pass and then, per queued job, runs an `earliest_fit` that
/// rescans every step per candidate and a `reserve` that re-sorts and
/// rebuilds the whole step vector. At a 4096-deep queue that is the
/// quadratic outlier of the F6 table (~285 ms per decision).
///
/// This structure produces **bit-identical plans** (same candidate
/// comparisons, same `PLAN_EPS` expressions, same step merging) with
/// three incremental layers:
///
/// 1. **Version-keyed base** — the sorted `(est_end, nodes)` release
///    list is cached under the cluster [`stamp`](nodeshare_cluster::Cluster::stamp)
///    and re-sorted only when an allocation or release actually happened;
///    per pass it is clamped to `now` and merged into the step vector in
///    one O(R) sweep.
/// 2. **Allocation-free planning** — `earliest_fit` walks candidates and
///    deficient steps with two monotone cursors (amortized O(S) per job
///    instead of O(S²)), and `reserve` splices the two breakpoints in
///    place instead of rebuilding. Jobs whose `(nodes, duration)` already
///    proved unfittable since the last profile mutation are skipped via a
///    memo (the same per-pass failure-memo discipline as
///    [`Planner::pick_shared`]; conservative planning touches no
///    telemetry counters, so the skip is unconditionally safe).
/// 3. **Cross-pass placement cache** — when a pass ends with no decision,
///    the planned queue prefix and final steps are sealed under the
///    cluster stamp. A later pass with an equal stamp and an unchanged
///    queue prefix resumes planning at the first new job instead of
///    re-planning the prefix (see [`ReservationTimeline::begin_pass`]
///    for the exact soundness conditions when `now` has advanced).
///
/// `crates/core/tests/prop_profile.rs` checks the timeline step-for-step
/// against a from-scratch rebuild at every decision point of randomized
/// campaigns, and `tests/differential.rs` holds the full strategy to
/// byte-equal traces against [`crate::Conservative::reference`].
#[derive(Clone, Debug, Default)]
pub struct ReservationTimeline {
    /// Cluster stamp the `ends` cache was built for.
    cache_key: Option<(u64, u64)>,
    /// Raw (unclamped) `(est_end, nodes)` of all running jobs, sorted by
    /// time — the version-keyed base the per-pass profile derives from.
    ends: Vec<(f64, i64)>,
    /// The working profile: `(time, free_node_count)` breakpoints,
    /// strictly time-ascending, value holds until the next breakpoint.
    /// Identical contents to the reference profile's steps at every
    /// point of the planning loop.
    steps: Vec<(f64, i64)>,
    /// `(nodes, duration)` keys proven unfittable (earliest fit = ∞)
    /// against the *current* steps; cleared on any profile mutation.
    // detlint: allow(D1, infeasibility memo probed via contains; never iterated)
    infeasible: HashSet<u128>,
    /// Whether the sealed memo below may be reused.
    memo_valid: bool,
    /// `now` of the sealed pass.
    memo_now: f64,
    /// Anchor level (`steps[0].1`) at seal time.
    memo_level: i64,
    /// Minimum node request over all planned jobs of the sealed prefix.
    memo_min_k: i64,
    /// Whether any planned reservation was anchored at `now` (start ≤
    /// `now + PLAN_EPS`), which makes the profile sensitive to where the
    /// anchor sits.
    memo_anchored: bool,
    /// Queue prefix (job ids, in order) the sealed profile accounts for.
    memo_ids: Vec<JobId>,
    /// `now` of the pass currently being planned.
    pass_now: f64,
}

impl ReservationTimeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a scheduling pass and returns the queue index to resume
    /// planning at: `0` means the profile was rebuilt and every queued
    /// job must be planned; `n > 0` means the first `n` jobs are already
    /// accounted for by the sealed previous pass and planning continues
    /// at `queue[n..]` against the retained steps.
    ///
    /// The prefix is reusable when the cluster stamp is unchanged (equal
    /// stamps mean identical occupancy, so the base profile and every
    /// prefix decision replay identically), the queued job ids still
    /// match the sealed prefix, and either
    ///
    /// * `now` is unchanged (the engine re-invokes the policy within one
    ///   instant until it returns no decision), or
    /// * `now` advanced and the old plan is provably insensitive to the
    ///   anchor move: no reservation was anchored at the old `now`, no
    ///   profile breakpoint lies in `(old now, new now + PLAN_EPS]` (so
    ///   no planned start or release crosses the anchor or the fit-now
    ///   epsilon window), and every planned job requests more nodes than
    ///   the anchor level (so the `now` candidate fails its count check
    ///   in both passes and the remaining candidates — all strictly
    ///   later — are shared). Under those conditions the fresh rebuild
    ///   would produce these exact steps with the anchor moved, so the
    ///   anchor is moved in place.
    pub fn begin_pass(&mut self, ctx: &SchedContext<'_>) -> usize {
        self.pass_now = ctx.now;
        let key = ctx.cluster.stamp();
        let memo_ok = self.memo_valid
            && self.cache_key == Some(key)
            && self.memo_ids.len() <= ctx.queue.len()
            && self.memo_ids.iter().zip(ctx.queue).all(|(m, j)| *m == j.id);
        if memo_ok {
            if ctx.now == self.memo_now {
                self.memo_valid = false; // re-sealed by `seal`
                return self.memo_ids.len();
            }
            if ctx.now > self.memo_now
                && !self.memo_anchored
                && self.memo_min_k > self.memo_level
                && self.no_breakpoint_in(self.memo_now, ctx.now + PLAN_EPS)
            {
                self.steps[0].0 = ctx.now;
                self.memo_valid = false;
                return self.memo_ids.len();
            }
        }
        self.rebuild(ctx, key);
        0
    }

    /// Rebuilds the working steps from the (possibly refreshed) base:
    /// idle nodes free at `now`, each running job returning its nodes at
    /// `max(est_end, now)` — the same deltas, ordering, and equal-time
    /// merging as [`crate::util::AvailabilityProfile::from_context`].
    fn rebuild(&mut self, ctx: &SchedContext<'_>, key: (u64, u64)) {
        if self.cache_key != Some(key) {
            self.ends.clear();
            self.ends
                .extend(ctx.running.values().map(|r| (r.est_end(), r.nodes as i64)));
            self.ends.sort_by(|a, b| a.0.total_cmp(&b.0));
            self.cache_key = Some(key);
        }
        let now = ctx.now;
        // Releases at or before `now` clamp onto the anchor, exactly as
        // the reference's `max(est_end, now)` merges them there.
        let cut = self.ends.partition_point(|e| e.0 <= now);
        let mut level = ctx.cluster.idle_count() as i64;
        for e in &self.ends[..cut] {
            level += e.1;
        }
        self.steps.clear();
        self.steps.push((now, level));
        for &(t, k) in &self.ends[cut..] {
            level += k;
            match self.steps.last_mut() {
                Some(last) if last.0 == t => last.1 = level,
                _ => self.steps.push((t, level)),
            }
        }
        self.infeasible.clear();
        self.memo_valid = false;
        self.memo_ids.clear();
        self.memo_anchored = false;
        self.memo_min_k = i64::MAX;
    }

    /// Whether no breakpoint time `t` satisfies `lo < t ≤ hi`.
    fn no_breakpoint_in(&self, lo: f64, hi: f64) -> bool {
        let i = self.steps.partition_point(|s| s.0 <= lo);
        i >= self.steps.len() || self.steps[i].0 > hi
    }

    /// Plans one queued job: earliest `t ≥ now` with `nodes` free
    /// throughout `[t, t + duration)`, bit-identical to
    /// [`crate::util::AvailabilityProfile::earliest_fit`], plus the
    /// cross-pass memo bookkeeping. The caller then either starts the
    /// job (and must [`ReservationTimeline::invalidate`]) or commits the
    /// finite plan with [`ReservationTimeline::reserve`].
    pub fn plan(&mut self, id: JobId, nodes: i64, duration: f64) -> f64 {
        self.memo_ids.push(id);
        self.memo_min_k = self.memo_min_k.min(nodes);
        let key = (duration.to_bits() as u128) | (nodes as u128) << 64;
        if self.infeasible.contains(&key) {
            return f64::INFINITY;
        }
        let start = self.earliest_fit(self.pass_now, nodes, duration);
        if start == f64::INFINITY {
            // Deterministic against unchanged steps: an identical later
            // request is ∞ too, with no side effects either way.
            self.infeasible.insert(key);
        } else if start <= self.pass_now + PLAN_EPS {
            self.memo_anchored = true;
        }
        start
    }

    /// The reference `earliest_fit` with two monotone cursors. The
    /// candidate sequence (`from`, then each breakpoint after it) and
    /// every comparison — `free_at(t) < nodes`, `st > t + PLAN_EPS`,
    /// `st < end - PLAN_EPS` — are the reference's own expressions; only
    /// the rescans are gone: the deficient-step cursor `q` never moves
    /// backwards because both of its conditions are monotone in the
    /// candidate time (a breakpoint inside the epsilon guard for one
    /// candidate stays inside it for every later candidate, and a level
    /// `≥ nodes` never becomes deficient within one call).
    fn earliest_fit(&self, from: f64, nodes: i64, duration: f64) -> f64 {
        let steps = &self.steps[..];
        let n = steps.len();
        let first_after = steps.partition_point(|s| s.0 <= from);
        let mut free = if first_after > 0 {
            steps[first_after - 1].1
        } else {
            0
        };
        let mut t = from;
        let mut i = first_after;
        let mut q = 0usize;
        loop {
            if free >= nodes {
                let end = t + duration;
                while q < n && !(steps[q].0 > t + PLAN_EPS && steps[q].1 < nodes) {
                    q += 1;
                }
                if !(q < n && steps[q].0 < end - PLAN_EPS) {
                    return t;
                }
            }
            if i >= n {
                return f64::INFINITY;
            }
            t = steps[i].0;
            free = steps[i].1;
            i += 1;
        }
    }

    /// Subtracts `nodes` during `[start, start + duration)` — the
    /// committed reservation of a planned job. Equivalent to the
    /// reference's delta-rebuild: the two breakpoints are spliced in with
    /// the pre-existing level (so a zero-length reservation still leaves
    /// its breakpoint, as the rebuild would) and the covered range is
    /// decremented in place.
    pub fn reserve(&mut self, start: f64, duration: f64, nodes: i64) {
        let end = start + duration;
        let i0 = self.ensure_breakpoint(start);
        let i1 = self.ensure_breakpoint(end);
        for s in &mut self.steps[i0..i1] {
            s.1 -= nodes;
        }
        self.infeasible.clear();
    }

    /// Index of the breakpoint at exactly `t`, inserting one carrying the
    /// current level if absent. (Times here are non-negative event times,
    /// so the `total_cmp` search agrees with the reference's `==` merge;
    /// there is no `-0.0` to disagree on.)
    fn ensure_breakpoint(&mut self, t: f64) -> usize {
        match self.steps.binary_search_by(|s| s.0.total_cmp(&t)) {
            Ok(i) => i,
            Err(i) => {
                let level = if i > 0 { self.steps[i - 1].1 } else { 0 };
                self.steps.insert(i, (t, level));
                i
            }
        }
    }

    /// Ends a no-decision pass: seals the planned prefix so the next
    /// pass may resume after it.
    pub fn seal(&mut self) {
        self.memo_now = self.pass_now;
        self.memo_level = self.steps.first().map_or(0, |s| s.1);
        self.memo_valid = true;
    }

    /// Drops the sealed prefix — called when a decision is returned
    /// (applying it mutates the cluster, so the profile is stale) or
    /// when the caller abandons the pass.
    pub fn invalidate(&mut self) {
        self.memo_valid = false;
    }

    /// The working profile steps (for equivalence tests).
    pub fn steps(&self) -> &[(f64, i64)] {
        &self.steps
    }

    /// Fault-injection hook for the audit tests: corrupts the anchor
    /// entry of the working profile by `delta` free nodes. Not part of
    /// the scheduling API.
    #[doc(hidden)]
    pub fn corrupt_anchor_for_test(&mut self, delta: i64) {
        if let Some(first) = self.steps.first_mut() {
            first.1 -= delta;
        }
        self.infeasible.clear();
    }
}

#[cfg(test)]
mod memo_tests {
    use super::*;
    use crate::pairing::{Pairing, PairingPolicy};
    use crate::testkit::oracle;
    use nodeshare_cluster::{Cluster, ClusterSpec, NodeSpec, ShareMode};
    use nodeshare_engine::RunningSummary;
    use nodeshare_perf::AppCatalog;
    use std::collections::BTreeMap;

    struct Rig {
        cluster: Cluster,
        running: BTreeMap<JobId, RunningSummary>,
        queue: Vec<JobSpec>,
    }

    /// Two shared AMG nodes plus an incompatible miniFE candidate: every
    /// shared-placement attempt fails and lands in the memo.
    fn rig() -> Rig {
        let catalog = AppCatalog::trinity();
        let amg = catalog.by_name("AMG").unwrap().id;
        let fe = catalog.by_name("miniFE").unwrap().id;
        let mut cluster = Cluster::new(ClusterSpec::new(2, NodeSpec::tiny()));
        cluster
            .allocate_shared(JobId(1), &[NodeId(0), NodeId(1)], 64)
            .unwrap();
        let mut running = BTreeMap::new();
        running.insert(
            JobId(1),
            RunningSummary {
                job: JobId(1),
                app: amg,
                nodes: 2,
                requested_nodes: 2,
                malleable: Default::default(),
                start: 0.0,
                walltime_estimate: 1_000.0,
                kill_at: 1_000.0,
                share_eligible: true,
                mode: ShareMode::Shared,
            },
        );
        let queue = vec![JobSpec {
            malleable: Default::default(),
            id: JobId(5),
            app: fe,
            nodes: 2,
            submit: 0.0,
            runtime_exclusive: 100.0,
            walltime_estimate: 200.0,
            mem_per_node_mib: 64,
            share_eligible: true,
            user: 0,
        }];
        Rig {
            cluster,
            running,
            queue,
        }
    }

    impl Rig {
        fn ctx(&self, now: f64) -> SchedContext<'_> {
            SchedContext {
                now,
                queue: &self.queue,
                cluster: &self.cluster,
                running: &self.running,
                shared_grace: 1.5,
                completed: &[],
                telemetry: None,
            }
        }
    }

    #[test]
    fn failure_memo_survives_passes_within_one_era() {
        let rig = rig();
        let pairing = Pairing::new(PairingPolicy::default_threshold(), oracle());
        let mut planner = Planner::new(&pairing);
        let ctx = rig.ctx(10.0);
        planner.begin_pass(&ctx);
        assert!(planner
            .pick_shared(&ctx, &rig.queue[0], &pairing, false, true)
            .is_none());
        assert_eq!(planner.memo_len(), 1);
        // Same stamp, same instant: the miss carries across the pass.
        planner.begin_pass(&ctx);
        assert_eq!(planner.memo_len(), 1, "era unchanged, memo must survive");
        assert!(planner
            .pick_shared(&ctx, &rig.queue[0], &pairing, false, true)
            .is_none());
        assert_eq!(planner.memo_len(), 1);
    }

    #[test]
    fn advancing_now_rolls_the_memo_era() {
        let rig = rig();
        let pairing = Pairing::new(PairingPolicy::default_threshold(), oracle());
        let mut planner = Planner::new(&pairing);
        let ctx = rig.ctx(10.0);
        planner.begin_pass(&ctx);
        assert!(planner
            .pick_shared(&ctx, &rig.queue[0], &pairing, false, true)
            .is_none());
        assert_eq!(planner.memo_len(), 1);
        let later = rig.ctx(20.0);
        planner.begin_pass(&later);
        assert_eq!(planner.memo_len(), 0, "new instant, memo must clear");
    }

    #[test]
    fn reservation_width_change_clears_restricted_entries() {
        // 1-node candidate: one eligible unreserved partial remains, so
        // the attempt passes the upper-bound early exit, evaluates, and
        // fails on incompatibility — landing in the memo.
        let mut rig = rig();
        rig.queue[0].nodes = 1;
        let pairing = Pairing::new(PairingPolicy::default_threshold(), oracle());
        let mut planner = Planner::new(&pairing);
        let ctx = rig.ctx(10.0);
        planner.begin_pass(&ctx);
        planner.compute_reservation(&ctx, 1);
        assert!(planner
            .pick_shared(&ctx, &rig.queue[0], &pairing, true, true)
            .is_none());
        assert_eq!(planner.memo_len(), 1);
        // Same width: entries stay. New width: reservation set differs,
        // so the memo goes.
        planner.compute_reservation(&ctx, 1);
        assert_eq!(planner.memo_len(), 1);
        planner.compute_reservation(&ctx, 2);
        assert_eq!(planner.memo_len(), 0);
    }
}

#[cfg(test)]
mod timeline_tests {
    use super::*;
    use crate::util::AvailabilityProfile;
    use nodeshare_cluster::{Cluster, ClusterSpec, NodeSpec, ShareMode};
    use nodeshare_engine::RunningSummary;
    use std::collections::BTreeMap;

    fn queued(id: u64, nodes: u32, est: f64) -> JobSpec {
        JobSpec {
            malleable: Default::default(),
            id: JobId(id),
            app: AppId(0),
            nodes,
            submit: 0.0,
            runtime_exclusive: est / 2.0,
            walltime_estimate: est,
            mem_per_node_mib: 64,
            share_eligible: false,
            user: 0,
        }
    }

    struct Rig {
        cluster: Cluster,
        running: BTreeMap<JobId, RunningSummary>,
        queue: Vec<JobSpec>,
    }

    /// `total`-node cluster with `busy` = `(job id, nodes, est end)`
    /// exclusive residents packed from node 0 up.
    fn rig(total: u32, busy: &[(u64, u32, f64)], queue: Vec<JobSpec>) -> Rig {
        let mut cluster = Cluster::new(ClusterSpec::new(total, NodeSpec::tiny()));
        let mut running = BTreeMap::new();
        let mut next = 0u32;
        for &(id, nodes, end) in busy {
            let ids: Vec<NodeId> = (next..next + nodes).map(NodeId).collect();
            next += nodes;
            cluster.allocate_exclusive(JobId(id), &ids, 64).unwrap();
            running.insert(
                JobId(id),
                RunningSummary {
                    job: JobId(id),
                    app: AppId(0),
                    nodes,
                    requested_nodes: nodes,
                    malleable: Default::default(),
                    start: 0.0,
                    walltime_estimate: end,
                    kill_at: end,
                    share_eligible: false,
                    mode: ShareMode::Exclusive,
                },
            );
        }
        Rig {
            cluster,
            running,
            queue,
        }
    }

    impl Rig {
        fn ctx(&self, now: f64) -> SchedContext<'_> {
            self.ctx_prefix(now, self.queue.len())
        }

        fn ctx_prefix(&self, now: f64, n: usize) -> SchedContext<'_> {
            SchedContext {
                now,
                queue: &self.queue[..n],
                cluster: &self.cluster,
                running: &self.running,
                shared_grace: 1.5,
                completed: &[],
                telemetry: None,
            }
        }
    }

    /// Plans and reserves every queued job against both profiles,
    /// asserting bit-equal plans and identical steps after each commit.
    fn plan_all_checked(tl: &mut ReservationTimeline, ctx: &SchedContext<'_>) {
        let mut profile = AvailabilityProfile::from_context(ctx);
        assert_eq!(tl.steps(), profile.steps());
        for job in ctx.queue {
            let fast = tl.plan(job.id, job.nodes as i64, job.walltime_estimate);
            let refr = profile.earliest_fit(ctx.now, job.nodes as i64, job.walltime_estimate);
            assert_eq!(fast.to_bits(), refr.to_bits(), "plan for job {}", job.id);
            if fast.is_finite() {
                tl.reserve(fast, job.walltime_estimate, job.nodes as i64);
                profile.reserve(refr, job.walltime_estimate, job.nodes as i64);
                assert_eq!(tl.steps(), profile.steps(), "steps after job {}", job.id);
            }
        }
    }

    #[test]
    fn matches_from_scratch_profile_at_every_step() {
        let rig = rig(
            8,
            &[(100, 4, 50.0), (101, 2, 80.0)],
            vec![
                queued(0, 8, 60.0),
                queued(1, 2, 30.0),
                queued(2, 4, 200.0),
                queued(3, 1, 10.0),
                queued(4, 8, 10_000.0),
                queued(5, 3, 45.0),
            ],
        );
        let ctx = rig.ctx(5.0);
        let mut tl = ReservationTimeline::new();
        assert_eq!(tl.begin_pass(&ctx), 0);
        plan_all_checked(&mut tl, &ctx);
    }

    #[test]
    fn oversized_requests_plan_to_infinity() {
        let rig = rig(4, &[], vec![queued(0, 5, 10.0)]);
        let ctx = rig.ctx(0.0);
        let mut tl = ReservationTimeline::new();
        tl.begin_pass(&ctx);
        assert!(tl.plan(JobId(0), 5, 10.0).is_infinite());
        // Memoized second answer must agree.
        assert!(tl.plan(JobId(0), 5, 10.0).is_infinite());
    }

    #[test]
    fn sealed_pass_resumes_after_the_planned_prefix() {
        let rig = rig(
            4,
            &[(100, 4, 50.0)],
            vec![queued(0, 2, 30.0), queued(1, 4, 60.0), queued(2, 1, 5.0)],
        );
        let mut tl = ReservationTimeline::new();
        let ctx2 = rig.ctx_prefix(0.0, 2);
        assert_eq!(tl.begin_pass(&ctx2), 0);
        plan_all_checked(&mut tl, &ctx2);
        tl.seal();
        let sealed = tl.steps().to_vec();
        // Same instant, the queue grew at the tail: only job 2 is new.
        let ctx3 = rig.ctx(0.0);
        assert_eq!(tl.begin_pass(&ctx3), 2);
        assert_eq!(tl.steps(), &sealed[..]);
    }

    #[test]
    fn occupancy_change_invalidates_the_sealed_prefix() {
        let mut rig = rig(4, &[(100, 2, 50.0)], vec![queued(0, 4, 60.0)]);
        let mut tl = ReservationTimeline::new();
        {
            let ctx = rig.ctx(0.0);
            assert_eq!(tl.begin_pass(&ctx), 0);
            plan_all_checked(&mut tl, &ctx);
            tl.seal();
        }
        rig.cluster
            .allocate_exclusive(JobId(101), &[NodeId(2)], 64)
            .unwrap();
        let ctx = rig.ctx(0.0);
        assert_eq!(tl.begin_pass(&ctx), 0, "stamp change must force a rebuild");
    }

    #[test]
    fn now_advance_shifts_the_anchor_when_provably_safe() {
        // All nodes busy until t=1000; the only plan sits at 1000, far
        // from the anchor, and needs more nodes than are ever free now.
        let rig = rig(4, &[(100, 4, 1_000.0)], vec![queued(0, 2, 10.0)]);
        let mut tl = ReservationTimeline::new();
        let ctx0 = rig.ctx(0.0);
        assert_eq!(tl.begin_pass(&ctx0), 0);
        plan_all_checked(&mut tl, &ctx0);
        tl.seal();
        let ctx5 = rig.ctx(5.0);
        assert_eq!(tl.begin_pass(&ctx5), 1, "anchor shift should resume");
        // The shifted steps must equal a from-scratch replay at t=5.
        let mut fresh = ReservationTimeline::new();
        assert_eq!(fresh.begin_pass(&ctx5), 0);
        plan_all_checked(&mut fresh, &ctx5);
        assert_eq!(tl.steps(), fresh.steps());
    }

    #[test]
    fn now_advance_rebuilds_when_a_breakpoint_is_crossed() {
        // A release at t=3 lies inside (0, 5 + eps]: the sealed profile
        // is anchor-sensitive, so the pass must rebuild.
        let rig = rig(4, &[(100, 4, 3.0)], vec![queued(0, 2, 10.0)]);
        let mut tl = ReservationTimeline::new();
        let ctx0 = rig.ctx(0.0);
        assert_eq!(tl.begin_pass(&ctx0), 0);
        plan_all_checked(&mut tl, &ctx0);
        tl.seal();
        let ctx5 = rig.ctx(5.0);
        assert_eq!(tl.begin_pass(&ctx5), 0);
        plan_all_checked(&mut tl, &ctx5);
    }
}
