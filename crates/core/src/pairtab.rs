//! A dense `AppId`-indexed lookup table over a [`Pairing`].
//!
//! The backfill scan consults the pairing policy for every (candidate,
//! resident) combination it considers — roughly `queue × partial nodes`
//! times per scheduler invocation. Going through
//! [`Pairing::allows_stack`]/[`Pairing::stack_rates`] costs a predictor
//! evaluation (matrix indexing, class mapping, or a full contention-model
//! solve) per query. This table precomputes every pairwise answer once,
//! by calling the reference `Pairing` methods themselves, so lookups are
//! bit-identical to the originals by construction — the property the
//! `prop_pairtable` suite checks for arbitrary catalogs.
//!
//! Stacks of two or more residents (SMT > 2) cannot be enumerated ahead
//! of time; those fall back to the reference implementation, as do app
//! ids outside the predictor's range.

use crate::pairing::Pairing;
use nodeshare_perf::predict::StackRates;
use nodeshare_perf::AppId;

/// Domain used for predictors that accept any app id (the constant
/// predictors): `AppId` is a `u8`, so 256 entries cover everything.
const FULL_DOMAIN: usize = 256;

/// Precomputed pairwise pairing decisions and rates.
///
/// `n × n` dense arrays indexed `[candidate × n + resident]`, built by
/// evaluating the wrapped [`Pairing`] on every pair — the table *is* the
/// reference policy, cached.
#[derive(Clone, Debug)]
pub struct PairingTable {
    n: usize,
    allow: Vec<bool>,
    score: Vec<f64>,
    cand_rate: Vec<f64>,
    res_rate: Vec<f64>,
    sharing: bool,
}

impl PairingTable {
    /// Builds the table by querying `pairing` for every app pair in the
    /// predictor's domain (the full 256-id domain for constant
    /// predictors).
    pub fn build(pairing: &Pairing) -> Self {
        let n = pairing.predictor.n_apps().unwrap_or(FULL_DOMAIN);
        let mut allow = Vec::with_capacity(n * n);
        let mut score = Vec::with_capacity(n * n);
        let mut cand_rate = Vec::with_capacity(n * n);
        let mut res_rate = Vec::with_capacity(n * n);
        for a in 0..n {
            for b in 0..n {
                let (a, b) = (AppId(a as u8), AppId(b as u8));
                allow.push(pairing.allows(a, b));
                score.push(pairing.score(a, b));
                let sr = pairing.stack_rates(a, &[b]);
                cand_rate.push(sr.candidate);
                res_rate.push(sr.residents[0]);
            }
        }
        PairingTable {
            n,
            allow,
            score,
            cand_rate,
            res_rate,
            sharing: pairing.sharing_enabled(),
        }
    }

    /// Whether the underlying pairing can ever co-allocate.
    #[inline]
    pub fn sharing_enabled(&self) -> bool {
        self.sharing
    }

    #[inline]
    fn idx(&self, a: AppId, b: AppId) -> Option<usize> {
        let (ai, bi) = (a.index(), b.index());
        (ai < self.n && bi < self.n).then(|| ai * self.n + bi)
    }

    /// [`Pairing::allows`] as a lookup.
    #[inline]
    pub fn allows(&self, pairing: &Pairing, a: AppId, b: AppId) -> bool {
        match self.idx(a, b) {
            Some(i) => self.allow[i],
            None => pairing.allows(a, b),
        }
    }

    /// [`Pairing::score`] as a lookup.
    #[inline]
    pub fn score(&self, pairing: &Pairing, a: AppId, b: AppId) -> f64 {
        match self.idx(a, b) {
            Some(i) => self.score[i],
            None => pairing.score(a, b),
        }
    }

    /// [`Pairing::allows_stack`]: a lookup for the single-resident case
    /// (the whole story on SMT-2 hardware), the reference implementation
    /// for deeper stacks.
    #[inline]
    pub fn allows_stack(&self, pairing: &Pairing, candidate: AppId, residents: &[AppId]) -> bool {
        match residents {
            [] => self.sharing,
            [r] => self.allows(pairing, candidate, *r),
            _ => pairing.allows_stack(candidate, residents),
        }
    }

    /// `(candidate rate, resident rate)` of
    /// `Pairing::stack_rates(candidate, &[resident])` as a lookup.
    #[inline]
    pub fn stack_pair(&self, pairing: &Pairing, candidate: AppId, resident: AppId) -> (f64, f64) {
        match self.idx(candidate, resident) {
            Some(i) => (self.cand_rate[i], self.res_rate[i]),
            None => {
                let sr = pairing.stack_rates(candidate, &[resident]);
                (sr.candidate, sr.residents[0])
            }
        }
    }

    /// [`Pairing::stack_rates`] routed through the table where possible.
    pub fn stack_rates(
        &self,
        pairing: &Pairing,
        candidate: AppId,
        residents: &[AppId],
    ) -> StackRates {
        match residents {
            [r] => {
                let (cand, res) = self.stack_pair(pairing, candidate, *r);
                StackRates {
                    candidate: cand,
                    residents: vec![res],
                }
            }
            _ => pairing.stack_rates(candidate, residents),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::PairingPolicy;
    use nodeshare_perf::{AppCatalog, ContentionModel, Predictor};

    fn pairings() -> Vec<Pairing> {
        let c = AppCatalog::trinity();
        let m = ContentionModel::calibrated();
        vec![
            Pairing::never(),
            Pairing::new(PairingPolicy::Any, Predictor::Oblivious),
            Pairing::new(
                PairingPolicy::default_threshold(),
                Predictor::oracle(&c, &m),
            ),
            Pairing::new(
                PairingPolicy::default_threshold(),
                Predictor::nway_oracle(&c, &m),
            ),
            Pairing::new(
                PairingPolicy::default_threshold(),
                Predictor::class_based(&c, &m),
            ),
            Pairing::new(
                PairingPolicy::default_threshold(),
                Predictor::Pessimistic { rate: 0.6 },
            ),
        ]
    }

    #[test]
    fn table_matches_reference_on_all_pairs_and_small_stacks() {
        let c = AppCatalog::trinity();
        for p in pairings() {
            let t = PairingTable::build(&p);
            assert_eq!(t.sharing_enabled(), p.sharing_enabled());
            for a in c.ids() {
                assert_eq!(t.allows_stack(&p, a, &[]), p.allows_stack(a, &[]));
                for b in c.ids() {
                    assert_eq!(t.allows(&p, a, b), p.allows(a, b));
                    assert_eq!(t.score(&p, a, b), p.score(a, b));
                    assert_eq!(t.allows_stack(&p, a, &[b]), p.allows_stack(a, &[b]));
                    let sr = p.stack_rates(a, &[b]);
                    assert_eq!(t.stack_pair(&p, a, b), (sr.candidate, sr.residents[0]));
                    for d in c.ids() {
                        assert_eq!(t.allows_stack(&p, a, &[b, d]), p.allows_stack(a, &[b, d]));
                        assert_eq!(t.stack_rates(&p, a, &[b, d]), p.stack_rates(a, &[b, d]));
                    }
                }
            }
        }
    }

    #[test]
    fn constant_predictors_cover_the_full_id_domain() {
        let p = Pairing::new(PairingPolicy::Any, Predictor::Oblivious);
        let t = PairingTable::build(&p);
        let (hi, lo) = (AppId(255), AppId(0));
        assert!(t.allows(&p, hi, lo));
        assert_eq!(t.stack_pair(&p, hi, hi), (1.0, 1.0));
    }
}
