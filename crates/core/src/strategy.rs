//! Strategy factory: a declarative description of a scheduling policy
//! that the experiment harness can enumerate, label, and instantiate.

use crate::adaptive::Adaptive;
use crate::backfill::Backfill;
use crate::conservative::Conservative;
use crate::fcfs::Fcfs;
use crate::firstfit::FirstFit;
use crate::pairing::{Pairing, PairingPolicy};
use nodeshare_engine::Scheduler;
use nodeshare_perf::{AppCatalog, ContentionModel, Predictor};
use serde::{Deserialize, Serialize};

/// Which base algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Strict FCFS (exclusive).
    Fcfs,
    /// First-fit (exclusive).
    FirstFit,
    /// EASY backfill (exclusive).
    EasyBackfill,
    /// Conservative backfill (exclusive).
    Conservative,
    /// Co-allocation-aware first-fit.
    CoFirstFit,
    /// Co-allocation-aware backfill — the paper's contribution.
    CoBackfill,
    /// CoBackfill with sharing restricted to backfill candidates (the
    /// head always waits for exclusive nodes); an ablation variant.
    CoBackfillOnly,
    /// EASY backfill plus width-malleable reshaping (exclusive): shrinks
    /// running malleable jobs to admit a blocked head, re-grows them
    /// when the queue drains. Identical to EasyBackfill on all-rigid
    /// workloads. Not part of the six-strategy lineup.
    Adaptive,
}

impl StrategyKind {
    /// Whether the strategy can co-allocate.
    pub const fn shares(self) -> bool {
        matches!(
            self,
            StrategyKind::CoFirstFit | StrategyKind::CoBackfill | StrategyKind::CoBackfillOnly
        )
    }
}

/// How the scheduler predicts co-run slowdowns.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PredictorKind {
    /// Perfect pair knowledge.
    Oracle,
    /// Perfect knowledge including n-way stacks (SMT > 2).
    NWayOracle,
    /// Class-granular averages.
    ClassBased,
    /// A constant conservative rate.
    Pessimistic {
        /// The assumed rate.
        rate: f64,
    },
    /// Assumes sharing is free.
    Oblivious,
}

impl PredictorKind {
    /// Instantiates the predictor against a catalog + truth model.
    pub fn build(self, catalog: &AppCatalog, model: &ContentionModel) -> Predictor {
        match self {
            PredictorKind::Oracle => Predictor::oracle(catalog, model),
            PredictorKind::NWayOracle => Predictor::nway_oracle(catalog, model),
            PredictorKind::ClassBased => Predictor::class_based(catalog, model),
            PredictorKind::Pessimistic { rate } => Predictor::Pessimistic { rate },
            PredictorKind::Oblivious => Predictor::Oblivious,
        }
    }
}

/// A complete strategy description.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StrategyConfig {
    /// Base algorithm.
    pub kind: StrategyKind,
    /// Pairing acceptance rule (ignored by exclusive strategies).
    pub pairing: PairingPolicy,
    /// Slowdown predictor (ignored by exclusive strategies).
    pub predictor: PredictorKind,
}

impl StrategyConfig {
    /// An exclusive baseline of the given kind.
    pub fn exclusive(kind: StrategyKind) -> Self {
        assert!(!kind.shares(), "use `sharing` for co-allocation strategies");
        StrategyConfig {
            kind,
            pairing: PairingPolicy::Never,
            predictor: PredictorKind::Oblivious,
        }
    }

    /// A sharing strategy with the default threshold pairing and the
    /// class-based predictor (the deployable configuration: class-level
    /// profiling is what a site can realistically maintain).
    pub fn sharing(kind: StrategyKind) -> Self {
        assert!(kind.shares(), "{kind:?} cannot share");
        StrategyConfig {
            kind,
            pairing: PairingPolicy::default_threshold(),
            predictor: PredictorKind::ClassBased,
        }
    }

    /// The six-strategy lineup of the T2 comparison table.
    pub fn lineup() -> Vec<StrategyConfig> {
        vec![
            StrategyConfig::exclusive(StrategyKind::Fcfs),
            StrategyConfig::exclusive(StrategyKind::FirstFit),
            StrategyConfig::exclusive(StrategyKind::EasyBackfill),
            StrategyConfig::exclusive(StrategyKind::Conservative),
            StrategyConfig::sharing(StrategyKind::CoFirstFit),
            StrategyConfig::sharing(StrategyKind::CoBackfill),
        ]
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self.kind {
            StrategyKind::Fcfs => "fcfs",
            StrategyKind::FirstFit => "first-fit",
            StrategyKind::EasyBackfill => "easy-backfill",
            StrategyKind::Conservative => "conservative",
            StrategyKind::CoFirstFit => "co-first-fit",
            StrategyKind::CoBackfill => "co-backfill",
            StrategyKind::CoBackfillOnly => "co-backfill-only",
            StrategyKind::Adaptive => "adaptive",
        }
    }

    /// Instantiates the scheduler.
    pub fn build(&self, catalog: &AppCatalog, model: &ContentionModel) -> Box<dyn Scheduler> {
        let pairing = || Pairing::new(self.pairing, self.predictor.build(catalog, model));
        match self.kind {
            StrategyKind::Fcfs => Box::new(Fcfs::new()),
            StrategyKind::FirstFit => Box::new(FirstFit::exclusive()),
            StrategyKind::EasyBackfill => Box::new(Backfill::easy()),
            StrategyKind::Conservative => Box::new(Conservative::new()),
            StrategyKind::CoFirstFit => Box::new(FirstFit::sharing(pairing())),
            StrategyKind::CoBackfill => Box::new(Backfill::co(pairing())),
            StrategyKind::CoBackfillOnly => Box::new(Backfill::co_backfill_only(pairing())),
            StrategyKind::Adaptive => Box::new(Adaptive::new()),
        }
    }

    /// Instantiates the pre-optimization reference implementation of the
    /// scheduler (see [`Backfill::reference`]) — the oracle the
    /// differential tests compare the optimized default against.
    /// Strategies without an optimized fast path build identically.
    pub fn build_reference(
        &self,
        catalog: &AppCatalog,
        model: &ContentionModel,
    ) -> Box<dyn Scheduler> {
        let pairing = || Pairing::new(self.pairing, self.predictor.build(catalog, model));
        match self.kind {
            StrategyKind::Fcfs => Box::new(Fcfs::new()),
            StrategyKind::FirstFit => Box::new(FirstFit::exclusive().reference()),
            StrategyKind::EasyBackfill => Box::new(Backfill::easy().reference()),
            StrategyKind::Conservative => Box::new(Conservative::new().reference()),
            StrategyKind::CoFirstFit => Box::new(FirstFit::sharing(pairing()).reference()),
            StrategyKind::CoBackfill => Box::new(Backfill::co(pairing()).reference()),
            StrategyKind::CoBackfillOnly => {
                Box::new(Backfill::co_backfill_only(pairing()).reference())
            }
            StrategyKind::Adaptive => Box::new(Adaptive::new().reference()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_has_six_strategies_with_unique_labels() {
        let lineup = StrategyConfig::lineup();
        assert_eq!(lineup.len(), 6);
        let labels: std::collections::HashSet<_> = lineup.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn build_produces_matching_names() {
        let catalog = AppCatalog::trinity();
        let model = ContentionModel::calibrated();
        for cfg in StrategyConfig::lineup() {
            let sched = cfg.build(&catalog, &model);
            match cfg.kind {
                StrategyKind::Fcfs => assert_eq!(sched.name(), "fcfs"),
                StrategyKind::FirstFit => assert_eq!(sched.name(), "first-fit"),
                StrategyKind::EasyBackfill => assert_eq!(sched.name(), "easy-backfill"),
                StrategyKind::Conservative => assert_eq!(sched.name(), "conservative-backfill"),
                StrategyKind::CoFirstFit => assert_eq!(sched.name(), "co-first-fit"),
                StrategyKind::CoBackfill | StrategyKind::CoBackfillOnly => {
                    assert_eq!(sched.name(), "co-backfill")
                }
                StrategyKind::Adaptive => assert_eq!(sched.name(), "adaptive"),
            }
        }
    }

    #[test]
    fn adaptive_builds_outside_the_lineup() {
        let catalog = AppCatalog::trinity();
        let model = ContentionModel::calibrated();
        let cfg = StrategyConfig::exclusive(StrategyKind::Adaptive);
        assert_eq!(cfg.label(), "adaptive");
        assert_eq!(cfg.build(&catalog, &model).name(), "adaptive");
        assert_eq!(cfg.build_reference(&catalog, &model).name(), "adaptive");
        assert!(!StrategyConfig::lineup().contains(&cfg));
    }

    #[test]
    #[should_panic(expected = "cannot share")]
    fn sharing_constructor_rejects_exclusive_kinds() {
        StrategyConfig::sharing(StrategyKind::Fcfs);
    }

    #[test]
    #[should_panic(expected = "use `sharing`")]
    fn exclusive_constructor_rejects_sharing_kinds() {
        StrategyConfig::exclusive(StrategyKind::CoBackfill);
    }

    #[test]
    fn predictor_kinds_build() {
        let catalog = AppCatalog::trinity();
        let model = ContentionModel::calibrated();
        for kind in [
            PredictorKind::Oracle,
            PredictorKind::ClassBased,
            PredictorKind::Pessimistic { rate: 0.5 },
            PredictorKind::Oblivious,
        ] {
            let p = kind.build(&catalog, &model);
            let r = p.rates(nodeshare_perf::AppId(0), nodeshare_perf::AppId(1));
            assert!(r.rate_a > 0.0 && r.rate_a <= 1.0);
        }
    }
}
