#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! # nodeshare-core
//!
//! The paper's contribution: **node-sharing scheduling strategies** for
//! HPC batch systems, expressed against the engine's
//! [`Scheduler`](nodeshare_engine::Scheduler) trait.
//!
//! Baselines (exclusive "standard node allocation"):
//!
//! * [`Fcfs`] — strict first-come-first-served,
//! * [`FirstFit`] — start anything that fits, no reservations,
//! * [`Backfill::easy`] — EASY backfill (head reservation + safe
//!   backfilling),
//! * [`Conservative`] — conservative backfill (reservations for all).
//!
//! Node-sharing extensions (the contribution):
//!
//! * [`FirstFit::sharing`] — **CoFirstFit**: first-fit that also places
//!   share-eligible jobs on free hyper-thread lanes of compatible nodes,
//! * [`Backfill::co`] — **CoBackfill**: EASY backfill where both the head
//!   and backfill candidates may co-allocate, with the reservation
//!   guarantee preserved under sharing,
//! * [`Pairing`]/[`PairingPolicy`] — which pairings are accepted, driven
//!   by a [`nodeshare_perf::Predictor`].
//!
//! [`StrategyConfig`] gives the experiment harness a declarative way to
//! enumerate and build all of them.
//!
//! ```
//! use nodeshare_core::{Backfill, Pairing, PairingPolicy};
//! use nodeshare_perf::{AppCatalog, ContentionModel, Predictor};
//!
//! let catalog = AppCatalog::trinity();
//! let model = ContentionModel::calibrated();
//! let pairing = Pairing::new(
//!     PairingPolicy::default_threshold(),
//!     Predictor::class_based(&catalog, &model),
//! );
//! let _cobackfill = Backfill::co(pairing);
//! ```

pub mod adaptive;
pub mod backfill;
pub mod conservative;
pub mod fcfs;
pub mod firstfit;
pub mod learning;
pub mod pairing;
pub mod pairtab;
pub mod planner;
pub mod strategy;
pub mod util;

#[cfg(test)]
pub(crate) mod testkit;

pub use adaptive::Adaptive;
pub use backfill::Backfill;
pub use conservative::Conservative;
pub use fcfs::Fcfs;
pub use firstfit::FirstFit;
pub use learning::EstimateLearning;
pub use pairing::{Pairing, PairingPolicy};
pub use pairtab::PairingTable;
pub use planner::ReservationTimeline;
pub use strategy::{PredictorKind, StrategyConfig, StrategyKind};
pub use util::{AvailabilityProfile, HeadReservation};
