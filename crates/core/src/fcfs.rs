//! Strict first-come-first-served, exclusive allocation: the simplest
//! baseline. The queue head starts as soon as enough idle nodes exist;
//! nothing else ever jumps ahead.

use crate::util::pick_exclusive;
use nodeshare_engine::{Decision, SchedContext, Scheduler};

/// Strict FCFS with exclusive node allocation.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fcfs;

impl Fcfs {
    /// Creates the policy.
    pub fn new() -> Self {
        Fcfs
    }
}

impl Scheduler for Fcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn schedule(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
        let Some(head) = ctx.queue.first() else {
            return Vec::new();
        };
        match pick_exclusive(ctx, head, |_| true) {
            Some(nodes) => vec![Decision::StartExclusive {
                job: head.id,
                nodes,
            }],
            None => Vec::new(),
        }
    }

    fn explain(
        &self,
        _ctx: &SchedContext<'_>,
        _decision: &Decision,
    ) -> nodeshare_engine::StartReason {
        // Strict FCFS only ever starts the queue head.
        nodeshare_engine::StartReason::HeadOfQueue
    }

    fn explain_all(
        &self,
        _ctx: &SchedContext<'_>,
        decisions: &[Decision],
    ) -> Vec<nodeshare_engine::StartReason> {
        vec![nodeshare_engine::StartReason::HeadOfQueue; decisions.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{self, job};

    #[test]
    fn starts_head_when_it_fits() {
        let world = testkit::world(4, vec![job(0, 2, 100.0), job(1, 1, 100.0)]);
        let out = testkit::simulate(&world, &mut Fcfs::new());
        assert!(out.complete());
        // Both fit immediately (2 + 1 ≤ 4 nodes).
        assert_eq!(out.records[0].wait(), 0.0);
        assert_eq!(out.records[1].wait(), 0.0);
    }

    #[test]
    fn head_blocks_the_queue() {
        // Head needs 4 nodes (whole cluster); a tiny later job must wait
        // even though nodes are idle — the FCFS pathology backfill fixes.
        let world = testkit::world(4, vec![job(0, 3, 100.0), job(1, 4, 100.0), job(2, 1, 10.0)]);
        let out = testkit::simulate(&world, &mut Fcfs::new());
        assert!(out.complete());
        let r2 = &out.records[2];
        // Job 2 waits behind job 1's 4-node request.
        assert!(r2.start >= 200.0 - 1e-6, "start {}", r2.start);
    }
}
