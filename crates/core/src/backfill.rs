//! EASY backfill and its node-sharing extension **CoBackfill** — the
//! paper's headline strategy.
//!
//! EASY backfill keeps FCFS order for the queue head but lets later jobs
//! jump ahead when doing so cannot delay the head's *reservation*: the
//! earliest time enough nodes will be free, computed from the running
//! jobs' walltime estimates (hard bounds under walltime enforcement).
//!
//! CoBackfill extends both halves with co-allocation:
//!
//! * the **head** may start immediately in shared mode when compatible
//!   lanes exist — the head no longer has to wait for whole idle nodes;
//! * **backfill candidates** may be placed on the free lanes of
//!   compatible busy nodes, subject to the same reservation-safety rule.
//!
//! Reservation safety under sharing: a node occupied by jobs with
//! estimated ends `≤ shadow` stays available to the head at the shadow
//! time *unless* a backfilled co-runner outlives the shadow. The rule
//! "candidates ending after the shadow may not touch reserved nodes"
//! therefore covers shared placements exactly as it covers exclusive
//! ones — the property test in `tests/prop_policies.rs` checks it.
//!
//! Two implementations coexist: the optimized hot path (default), which
//! plans against the incremental [`Planner`] caches, and the original
//! straight-line reference, kept behind [`Backfill::reference`] so the
//! differential tests can hold the optimized path to bit-identical
//! outcomes.

use crate::pairing::Pairing;
use crate::planner::Planner;
use crate::util::{pick_exclusive, pick_shared, HeadReservation, PLAN_EPS};
use nodeshare_engine::{Decision, SchedContext, Scheduler};

/// EASY backfill, optionally co-allocation-aware.
#[derive(Clone, Debug)]
pub struct Backfill {
    pairing: Pairing,
    /// Whether the head itself may start in shared mode (CoBackfill
    /// behavior; disable to share only via backfill).
    share_head: bool,
    planner: Planner,
    reference: bool,
}

impl Backfill {
    fn new(pairing: Pairing, share_head: bool) -> Self {
        Backfill {
            planner: Planner::new(&pairing),
            pairing,
            share_head,
            reference: false,
        }
    }

    /// Plain EASY backfill with exclusive allocation (baseline).
    pub fn easy() -> Self {
        Backfill::new(Pairing::never(), false)
    }

    /// Co-allocation-aware backfill with the given pairing policy.
    pub fn co(pairing: Pairing) -> Self {
        Backfill::new(pairing, true)
    }

    /// Co-allocation restricted to backfill candidates (the head always
    /// waits for exclusive nodes). Used by the ablation experiments.
    pub fn co_backfill_only(pairing: Pairing) -> Self {
        Backfill::new(pairing, false)
    }

    /// Switches to the pre-optimization reference implementation (the
    /// straight-line pickers in [`crate::util`]). Slower but obviously
    /// correct; the differential tests compare the optimized default
    /// against it decision for decision.
    pub fn reference(mut self) -> Self {
        self.reference = true;
        self
    }

    /// The pairing in use.
    pub fn pairing(&self) -> &Pairing {
        &self.pairing
    }

    /// The optimized backfill candidate scan, monomorphized over whether
    /// telemetry is attached. This loop is the scheduler's hottest path
    /// (it runs ~10^8 iterations in a saturated campaign; see the
    /// `sched_latency` benches). The `TELEMETRY = false` copy is the lean
    /// one: it may take the planner's memoized and bounded early exits,
    /// which skip work — and therefore would skip counter increments —
    /// while provably returning the same decisions; the `true` copy
    /// evaluates every candidate faithfully so the counters match the
    /// reference exactly.
    fn scan_fast<const TELEMETRY: bool>(
        &mut self,
        ctx: &SchedContext<'_>,
        sharing: bool,
    ) -> Vec<Decision> {
        if !TELEMETRY
            && ctx.cluster.idle_count() == 0
            && (!sharing || self.planner.eligible_partial_count() == 0)
        {
            // No idle node and no shareable lane: every candidate fails.
            return Vec::new();
        }
        let shadow = self.planner.shadow();
        let mut scanned = 0u64;
        for job in &ctx.queue[1..] {
            if TELEMETRY {
                scanned += 1;
            }
            let excl_end = ctx.now + job.walltime_estimate;
            let shared_end = ctx.now + job.walltime_estimate * ctx.shared_grace.max(1.0);
            let excl_fits = excl_end <= shadow + PLAN_EPS;
            let shared_fits = shared_end <= shadow + PLAN_EPS;

            if sharing && job.share_eligible {
                let restricted = !shared_fits;
                if let Some(nodes) = self.planner.pick_exclusive(ctx, job, restricted) {
                    if TELEMETRY {
                        Self::record_backfill(ctx, scanned, true);
                    }
                    return vec![Decision::StartShared { job: job.id, nodes }];
                }
                if let Some(nodes) =
                    self.planner
                        .pick_shared(ctx, job, &self.pairing, restricted, !TELEMETRY)
                {
                    if TELEMETRY {
                        Self::record_backfill(ctx, scanned, true);
                    }
                    return vec![Decision::StartShared { job: job.id, nodes }];
                }
            } else {
                let restricted = !excl_fits;
                if let Some(nodes) = self.planner.pick_exclusive(ctx, job, restricted) {
                    if TELEMETRY {
                        Self::record_backfill(ctx, scanned, true);
                    }
                    return vec![Decision::StartExclusive { job: job.id, nodes }];
                }
            }
        }
        if TELEMETRY {
            Self::record_backfill(ctx, scanned, false);
        }
        Vec::new()
    }

    fn schedule_fast(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
        let Some(head) = ctx.queue.first() else {
            return Vec::new();
        };
        // Wall-clock phase span over the whole placement pass (head
        // attempt + reservation + backfill scan); observes on drop.
        let _placement_span = ctx.telemetry.map(|t| t.time_placement());

        let sharing = self.pairing.sharing_enabled();
        self.planner.begin_pass(ctx);

        // 1. Start the head if it fits now (see `schedule_reference` for
        // the policy rationale; the logic is identical).
        if let Some(nodes) = self.planner.pick_exclusive(ctx, head, false) {
            if let Some(t) = ctx.telemetry {
                t.head_started.inc();
            }
            return if sharing && head.share_eligible {
                vec![Decision::StartShared {
                    job: head.id,
                    nodes,
                }]
            } else {
                vec![Decision::StartExclusive {
                    job: head.id,
                    nodes,
                }]
            };
        }
        if self.share_head && sharing && head.share_eligible {
            if let Some(nodes) =
                self.planner
                    .pick_shared(ctx, head, &self.pairing, false, ctx.telemetry.is_none())
            {
                if let Some(t) = ctx.telemetry {
                    t.head_started.inc();
                }
                return vec![Decision::StartShared {
                    job: head.id,
                    nodes,
                }];
            }
        }

        // 2. Reserve for the head, then backfill behind the reservation.
        self.planner.compute_reservation(ctx, head.nodes as usize);
        if ctx.telemetry.is_some() {
            self.scan_fast::<true>(ctx, sharing)
        } else {
            self.scan_fast::<false>(ctx, sharing)
        }
    }

    /// The pre-optimization candidate scan (reference implementation).
    fn scan_reference<const TELEMETRY: bool>(
        &self,
        ctx: &SchedContext<'_>,
        reservation: &HeadReservation,
        sharing: bool,
    ) -> Vec<Decision> {
        let mut scanned = 0u64;
        for job in &ctx.queue[1..] {
            if TELEMETRY {
                scanned += 1;
            }
            let excl_end = ctx.now + job.walltime_estimate;
            let shared_end = ctx.now + job.walltime_estimate * ctx.shared_grace.max(1.0);
            let excl_fits = excl_end <= reservation.shadow + PLAN_EPS;
            let shared_fits = shared_end <= reservation.shadow + PLAN_EPS;
            let allowed_excl = |n| excl_fits || !reservation.nodes.contains(&n);
            let allowed_shared = |n| shared_fits || !reservation.nodes.contains(&n);

            if sharing && job.share_eligible {
                if let Some(nodes) = pick_exclusive(ctx, job, allowed_shared) {
                    if TELEMETRY {
                        Self::record_backfill(ctx, scanned, true);
                    }
                    return vec![Decision::StartShared { job: job.id, nodes }];
                }
                if let Some(nodes) = pick_shared(ctx, job, &self.pairing, allowed_shared) {
                    if TELEMETRY {
                        Self::record_backfill(ctx, scanned, true);
                    }
                    return vec![Decision::StartShared { job: job.id, nodes }];
                }
            } else if let Some(nodes) = pick_exclusive(ctx, job, allowed_excl) {
                if TELEMETRY {
                    Self::record_backfill(ctx, scanned, true);
                }
                return vec![Decision::StartExclusive { job: job.id, nodes }];
            }
        }
        if TELEMETRY {
            Self::record_backfill(ctx, scanned, false);
        }
        Vec::new()
    }

    fn schedule_reference(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
        let Some(head) = ctx.queue.first() else {
            return Vec::new();
        };
        // Same phase span as the fast path, so the two report
        // comparable placement-scan wall time.
        let _placement_span = ctx.telemetry.map(|t| t.time_placement());

        let sharing = self.pairing.sharing_enabled();

        // 1. Start the head if it fits now. Idle capacity first — running
        // alone always beats co-running. Share-eligible jobs still start
        // in shared (single-lane) mode so the second lane stays open for
        // later partners. When idle nodes are short, a share-eligible
        // head may instead co-allocate onto compatible lanes (CoBackfill
        // behavior), so the head no longer waits for whole idle nodes.
        if let Some(nodes) = pick_exclusive(ctx, head, |_| true) {
            if let Some(t) = ctx.telemetry {
                t.head_started.inc();
            }
            return if sharing && head.share_eligible {
                vec![Decision::StartShared {
                    job: head.id,
                    nodes,
                }]
            } else {
                vec![Decision::StartExclusive {
                    job: head.id,
                    nodes,
                }]
            };
        }
        if self.share_head && sharing && head.share_eligible {
            if let Some(nodes) = pick_shared(ctx, head, &self.pairing, |_| true) {
                if let Some(t) = ctx.telemetry {
                    t.head_started.inc();
                }
                return vec![Decision::StartShared {
                    job: head.id,
                    nodes,
                }];
            }
        }

        // 2. Reserve for the head, then backfill behind the reservation.
        // A candidate's occupancy bound depends on how it would start:
        // shared-mode jobs receive the walltime grace, so their lanes may
        // be held longer — the shadow test must use the padded bound.
        let reservation = HeadReservation::compute(ctx, head.nodes as usize);
        if ctx.telemetry.is_some() {
            self.scan_reference::<true>(ctx, &reservation, sharing)
        } else {
            self.scan_reference::<false>(ctx, &reservation, sharing)
        }
    }

    /// Records the counters for one backfill pass that evaluated
    /// `scanned` candidates and did (`started`) or did not start one.
    #[cold]
    fn record_backfill(ctx: &SchedContext<'_>, scanned: u64, started: bool) {
        if let Some(t) = ctx.telemetry {
            t.backfill_scanned.add(scanned);
            t.backfill_scan_depth.observe(scanned as f64);
            if started {
                t.backfill_started.inc();
            }
        }
    }
}

impl Scheduler for Backfill {
    fn name(&self) -> &'static str {
        if self.pairing.sharing_enabled() {
            "co-backfill"
        } else {
            "easy-backfill"
        }
    }

    fn schedule(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
        if self.reference {
            self.schedule_reference(ctx)
        } else {
            self.schedule_fast(ctx)
        }
    }

    fn explain_all(
        &self,
        ctx: &SchedContext<'_>,
        decisions: &[Decision],
    ) -> Vec<nodeshare_engine::StartReason> {
        // Same classification as the per-decision default, amortizing
        // the queue-position scan across the invocation's decisions.
        nodeshare_engine::StartReason::classify_all(ctx, decisions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::PairingPolicy;
    use crate::testkit::{self, job, job_app, oracle};

    fn co_backfill() -> Backfill {
        Backfill::co(Pairing::new(PairingPolicy::default_threshold(), oracle()))
    }

    #[test]
    fn easy_backfills_short_jobs_behind_blocked_head() {
        // Job 0 holds 3 of 4 nodes for 100 s. Job 1 (head) wants all 4.
        // Job 2 wants 1 node for 10 s (est 20 s ≤ shadow) → backfills.
        let world = testkit::world(4, vec![job(0, 3, 100.0), job(1, 4, 100.0), job(2, 1, 10.0)]);
        let out = testkit::simulate(&world, &mut Backfill::easy());
        assert!(out.complete());
        let r2 = &out.records[2];
        assert!(
            r2.wait() < 1.0,
            "short job should backfill (wait {})",
            r2.wait()
        );
        // The head starts when job 0's walltime estimate expires — not
        // later (the backfill guarantee), and not before its work is done.
        let r1 = &out.records[1];
        assert!(r1.start >= 100.0 - 1e-6 && r1.start <= 200.0 + 1e-6);
    }

    #[test]
    fn easy_refuses_backfill_that_would_delay_head() {
        // Job 0 holds 3 nodes, est end 200. Head (job 1) wants 4: shadow =
        // 200 on all nodes. Job 2 wants 1 node for runtime 150 (est 300):
        // it would outlive the shadow on a reserved node → must wait.
        let world = testkit::world(
            4,
            vec![job(0, 3, 100.0), job(1, 4, 100.0), job(2, 1, 150.0)],
        );
        let out = testkit::simulate(&world, &mut Backfill::easy());
        assert!(out.complete());
        let (r1, r2) = (&out.records[1], &out.records[2]);
        assert!(
            r2.start >= r1.start - 1e-6,
            "long candidate must not start before the head (cand {} head {})",
            r2.start,
            r1.start
        );
    }

    #[test]
    fn co_backfill_shares_lanes_with_compatible_residents() {
        // Memory-bound job 0 holds both nodes. Compute-bound job 1 also
        // wants both nodes: with sharing it starts immediately on the
        // second lanes.
        let world = testkit::world(
            2,
            vec![job_app(0, 2, 100.0, "AMG"), job_app(1, 2, 100.0, "miniDFT")],
        );
        let out = testkit::simulate(&world, &mut co_backfill());
        assert!(out.complete());
        let r1 = &out.records[1];
        assert!(r1.shared_alloc, "compute job should co-allocate");
        assert!(r1.wait() < 1.0);
    }

    #[test]
    fn phase_spans_attribute_placement_and_pairing_wall_time() {
        // A saturating mix with co-allocation: the placement-scan span
        // fires once per non-empty scheduling pass, and every pairing
        // query is covered by exactly one pairing-lookup span.
        let world = testkit::world(
            2,
            vec![
                job_app(0, 2, 100.0, "AMG"),
                job_app(1, 2, 100.0, "miniDFT"),
                job_app(2, 1, 50.0, "miniFE"),
            ],
        );
        let (out, tele) = testkit::simulate_with_telemetry(&world, &mut co_backfill());
        assert!(out.complete());
        assert!(
            tele.sched.phase_placement_seconds.count() > 0,
            "placement scans must be timed"
        );
        assert_eq!(
            tele.sched.phase_pairing_seconds.count(),
            tele.sched.pairing_queries.get(),
            "every pairing query carries exactly one span"
        );
        // Spans observe non-negative wall time.
        assert!(tele.sched.phase_placement_seconds.sum() >= 0.0);
    }

    #[test]
    fn co_backfill_beats_easy_on_makespan_for_complementary_mix() {
        let jobs: Vec<_> = (0..8)
            .map(|i| {
                if i % 2 == 0 {
                    job_app(i, 2, 200.0, "AMG")
                } else {
                    job_app(i, 2, 200.0, "miniDFT")
                }
            })
            .collect();
        let world = testkit::world(4, jobs.clone());
        let easy = testkit::simulate(&world, &mut Backfill::easy());
        let world = testkit::world(4, jobs);
        let co = testkit::simulate(&world, &mut co_backfill());
        assert!(easy.complete() && co.complete());
        let mk = |o: &nodeshare_engine::SimOutcome| {
            o.records.iter().map(|r| r.finish).fold(0.0, f64::max)
        };
        assert!(
            mk(&co) < mk(&easy) * 0.8,
            "co-backfill {} vs easy {}",
            mk(&co),
            mk(&easy)
        );
    }

    #[test]
    fn shared_backfill_respects_the_reservation() {
        // Cluster of 2. Job 0 (AMG, 2 nodes, shared-mode head start) runs
        // with est end 200. Head job 1 wants 2 exclusive nodes (not
        // share-eligible). Candidate job 2 (miniDFT, est 400 > shadow)
        // would pair beautifully with job 0 — but sharing onto reserved
        // nodes would hold lanes past the shadow and delay the head, so
        // CoBackfill must refuse.
        let mut j1 = job(1, 2, 100.0);
        j1.share_eligible = false;
        let mut j2 = job_app(2, 2, 200.0, "miniDFT");
        j2.walltime_estimate = 400.0;
        let world = testkit::world(2, vec![job_app(0, 2, 100.0, "AMG"), j1, j2]);
        let out = testkit::simulate(&world, &mut co_backfill());
        assert!(out.complete());
        let (r1, r2) = (&out.records[1], &out.records[2]);
        assert!(
            r2.start >= r1.start - 1e-6,
            "candidate outliving the shadow must not take reserved lanes"
        );
    }

    #[test]
    fn co_backfill_only_keeps_the_head_exclusive() {
        // Head (miniDFT) could pair beautifully with the running AMG, but
        // the backfill-only variant makes the head wait for idle nodes.
        let world = testkit::world(
            2,
            vec![job_app(0, 2, 100.0, "AMG"), job_app(1, 2, 100.0, "miniDFT")],
        );
        let mut sched =
            Backfill::co_backfill_only(Pairing::new(PairingPolicy::default_threshold(), oracle()));
        let out = testkit::simulate(&world, &mut sched);
        assert!(out.complete());
        let r1 = &out.records[1];
        // Job 1 becomes head once job 0 runs; head never co-allocates.
        assert!(
            r1.start >= 99.0,
            "backfill-only head must wait for exclusive nodes (start {})",
            r1.start
        );
    }

    #[test]
    fn reference_mode_matches_the_optimized_path() {
        // Quick in-crate smoke; the exhaustive check (all strategies,
        // many seeds, full traces) lives in tests/differential.rs.
        let jobs: Vec<_> = (0..12)
            .map(|i| match i % 3 {
                0 => job_app(i, 2, 150.0, "AMG"),
                1 => job_app(i, 1, 80.0, "miniDFT"),
                _ => job_app(i, 3, 220.0, "SNAP"),
            })
            .collect();
        let world = testkit::world(4, jobs);
        let fast = testkit::simulate(&world, &mut co_backfill());
        let refr = testkit::simulate(&world, &mut co_backfill().reference());
        assert_eq!(fast.records, refr.records);
    }

    #[test]
    fn names() {
        assert_eq!(Backfill::easy().name(), "easy-backfill");
        assert_eq!(co_backfill().name(), "co-backfill");
    }
}
