//! Pairing policy: which co-allocations the scheduler will accept.
//!
//! The mechanism (lane sharing) is only half the paper's story; the other
//! half is *which* jobs to pair. The pairing policy consults a
//! [`Predictor`] (oracle / class-based / pessimistic / oblivious) and
//! applies an acceptance rule. The F7 ablation sweeps these rules.

use nodeshare_perf::{AppId, PairRates, Predictor};
use serde::{Deserialize, Serialize};

/// Acceptance rule for candidate pairings.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PairingPolicy {
    /// Never co-allocate — turns a sharing strategy back into its
    /// exclusive baseline.
    Never,
    /// Pair anything with anything (the naive oversubscription that makes
    /// administrators fear sharing).
    Any,
    /// Accept a pairing only when the predictor says both jobs keep at
    /// least `min_rate` of their speed *and* the node's combined
    /// throughput reaches `min_combined`.
    Threshold {
        /// Floor on each job's predicted rate.
        min_rate: f64,
        /// Floor on predicted combined throughput (1.0 = break-even with
        /// an exclusive node).
        min_combined: f64,
    },
}

impl PairingPolicy {
    /// The calibrated default used in the headline experiments: both jobs
    /// keep ≥ 70% speed and the node delivers ≥ 120% of exclusive
    /// throughput.
    pub const fn default_threshold() -> Self {
        PairingPolicy::Threshold {
            min_rate: 0.7,
            min_combined: 1.2,
        }
    }
}

/// A pairing policy bound to a predictor: the unit the strategies consume.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Pairing {
    /// Acceptance rule.
    pub policy: PairingPolicy,
    /// The scheduler's interference model.
    pub predictor: Predictor,
    /// Optional duration matching: only pair when the candidate's and the
    /// resident's remaining walltime bounds overlap by at least this
    /// ratio (`min/max ≥ θ`). Avoids slowing a resident for a co-runner
    /// that leaves (or outlives it) almost immediately. `None` disables
    /// the rule; the net-gain planner already prices most of this.
    pub duration_match: Option<f64>,
    /// Minimum predicted net throughput gain (node-equivalents) a shared
    /// placement must reach. `0.0` (default) = only throughput-positive
    /// placements; negative values admit throughput-negative sharing for
    /// responsiveness (gang-scheduling style).
    pub net_gain_floor: f64,
}

impl Pairing {
    /// Builds a pairing from rule + predictor (no duration matching).
    pub fn new(policy: PairingPolicy, predictor: Predictor) -> Self {
        Pairing {
            policy,
            predictor,
            duration_match: None,
            net_gain_floor: 0.0,
        }
    }

    /// Overrides the net-gain floor (negative = allow throughput-negative
    /// sharing for responsiveness).
    pub fn with_net_gain_floor(mut self, floor: f64) -> Self {
        self.net_gain_floor = floor;
        self
    }

    /// Adds a duration-matching threshold in `(0, 1]`.
    pub fn with_duration_match(mut self, theta: f64) -> Self {
        assert!((0.0..=1.0).contains(&theta), "theta must be in (0, 1]");
        self.duration_match = Some(theta);
        self
    }

    /// A pairing that never shares (baseline strategies).
    pub fn never() -> Self {
        Pairing {
            policy: PairingPolicy::Never,
            predictor: Predictor::Oblivious,
            duration_match: None,
            net_gain_floor: 0.0,
        }
    }

    /// Predicted rates for candidate `a` joining resident `b`.
    pub fn rates(&self, a: AppId, b: AppId) -> PairRates {
        self.predictor.rates(a, b)
    }

    /// Whether the policy accepts co-allocating `a` (candidate) with `b`
    /// (resident).
    pub fn allows(&self, a: AppId, b: AppId) -> bool {
        match self.policy {
            PairingPolicy::Never => false,
            PairingPolicy::Any => true,
            PairingPolicy::Threshold {
                min_rate,
                min_combined,
            } => {
                let r = self.rates(a, b);
                r.rate_a >= min_rate
                    && r.rate_b >= min_rate
                    && r.combined_throughput() >= min_combined
            }
        }
    }

    /// Desirability score of the pairing (predicted combined throughput);
    /// higher is better. Used to rank candidate partner nodes.
    pub fn score(&self, a: AppId, b: AppId) -> f64 {
        self.predictor.combined(a, b)
    }

    /// Whether the policy accepts `candidate` joining the whole stack of
    /// `residents` on one node.
    ///
    /// Every resident must pass the pairwise rule, and — when the
    /// predictor can price stacks (n-way oracle) — the full-stack rates
    /// must also respect the threshold's `min_rate`. For SMT-2 (single
    /// resident) this is exactly [`Pairing::allows`].
    pub fn allows_stack(&self, candidate: AppId, residents: &[AppId]) -> bool {
        if residents.is_empty() {
            return self.sharing_enabled();
        }
        if !residents.iter().all(|&r| self.allows(candidate, r)) {
            return false;
        }
        if let PairingPolicy::Threshold { min_rate, .. } = self.policy {
            if residents.len() > 1 {
                let sr = self.predictor.stack_rates(candidate, residents);
                if sr.candidate < min_rate || sr.residents.iter().any(|&r| r < min_rate) {
                    return false;
                }
            }
        }
        true
    }

    /// Predicted stack rates (candidate + residents on one node).
    pub fn stack_rates(
        &self,
        candidate: AppId,
        residents: &[AppId],
    ) -> nodeshare_perf::predict::StackRates {
        self.predictor.stack_rates(candidate, residents)
    }

    /// True when this pairing can ever co-allocate.
    pub fn sharing_enabled(&self) -> bool {
        self.policy != PairingPolicy::Never
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodeshare_perf::{AppCatalog, ContentionModel};

    fn oracle() -> (AppCatalog, Pairing) {
        let c = AppCatalog::trinity();
        let p = Predictor::oracle(&c, &ContentionModel::calibrated());
        (c, Pairing::new(PairingPolicy::default_threshold(), p))
    }

    #[test]
    fn never_blocks_everything() {
        let (c, _) = oracle();
        let p = Pairing::never();
        for a in c.ids() {
            for b in c.ids() {
                assert!(!p.allows(a, b));
            }
        }
        assert!(!p.sharing_enabled());
    }

    #[test]
    fn any_allows_everything() {
        let (c, mut p) = oracle();
        p.policy = PairingPolicy::Any;
        for a in c.ids() {
            for b in c.ids() {
                assert!(p.allows(a, b));
            }
        }
        assert!(p.sharing_enabled());
    }

    #[test]
    fn threshold_separates_good_from_bad_pairs() {
        let (c, p) = oracle();
        let dft = c.by_name("miniDFT").unwrap().id; // compute
        let amg = c.by_name("AMG").unwrap().id; // memory
        let fe = c.by_name("miniFE").unwrap().id; // memory
        assert!(p.allows(dft, amg), "complementary pair should pass");
        assert!(!p.allows(fe, amg), "bandwidth×bandwidth should fail");
    }

    #[test]
    fn score_ranks_complementary_pairs_higher() {
        let (c, p) = oracle();
        let dft = c.by_name("miniDFT").unwrap().id;
        let amg = c.by_name("AMG").unwrap().id;
        let fe = c.by_name("miniFE").unwrap().id;
        assert!(p.score(dft, amg) > p.score(fe, amg));
    }

    #[test]
    fn threshold_respects_min_rate_even_with_good_combined() {
        let (c, _) = oracle();
        // A pessimistic predictor at rate 0.6 fails min_rate 0.7 though
        // combined (1.2) meets min_combined.
        let p = Pairing::new(
            PairingPolicy::Threshold {
                min_rate: 0.7,
                min_combined: 1.2,
            },
            Predictor::Pessimistic { rate: 0.6 },
        );
        for a in c.ids() {
            assert!(!p.allows(a, a));
        }
    }
}
