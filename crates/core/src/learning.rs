//! Walltime-estimate learning — a Tsafrir-style correction layer.
//!
//! Users over-estimate walltimes by large, user-specific factors; backfill
//! plans with those estimates and therefore under-fills the machine. This
//! wrapper learns each user's typical `actual runtime / estimate` ratio
//! from the completed-job history the engine exposes and presents the
//! inner policy a queue with *corrected* estimates.
//!
//! Safety note: corrections affect **planning only** — the engine still
//! kills jobs at their requested walltime — so a mis-corrected estimate
//! can soften the EASY guarantee (a backfilled job may outlive its
//! corrected bound and delay the head up to its *requested* bound). That
//! trade is the documented cost of estimate correction in the literature;
//! the F15 experiment measures whether it pays here.

use nodeshare_engine::{Decision, SchedContext, Scheduler};
use nodeshare_metrics::JobRecord;
use nodeshare_workload::JobSpec;
use std::collections::BTreeMap;

/// Per-user runtime/estimate ratio statistics (incremental).
#[derive(Clone, Debug, Default)]
struct UserStats {
    ratios: Vec<f64>,
    sorted: bool,
}

impl UserStats {
    fn push(&mut self, ratio: f64) {
        self.ratios.push(ratio);
        self.sorted = false;
    }

    /// A conservative quantile of the observed ratios (not the median:
    /// correcting to the median would under-plan half the jobs).
    fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.ratios.is_empty() {
            return None;
        }
        if !self.sorted {
            self.ratios.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        let idx = ((self.ratios.len() - 1) as f64 * q).round() as usize;
        Some(self.ratios[idx])
    }
}

/// Wraps any policy with learned walltime-estimate correction.
#[derive(Debug)]
pub struct EstimateLearning<S> {
    inner: S,
    /// Quantile of the observed ratio distribution used as the correction
    /// (e.g. 0.9: planned bound covers 90% of the user's history).
    quantile: f64,
    /// Minimum completed jobs per user before correcting that user.
    min_samples: usize,
    per_user: BTreeMap<u32, UserStats>,
    digested: usize,
}

impl<S> EstimateLearning<S> {
    /// Wraps `inner`; `quantile` in `(0, 1]` picks how conservative the
    /// corrected bound is (0.9 is the classic choice).
    pub fn new(inner: S, quantile: f64, min_samples: usize) -> Self {
        assert!((0.0..=1.0).contains(&quantile), "quantile out of range");
        assert!(min_samples >= 1, "need at least one sample");
        EstimateLearning {
            inner,
            quantile,
            min_samples,
            per_user: BTreeMap::new(),
            digested: 0,
        }
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Digests newly completed records (append-only slice).
    fn digest(&mut self, completed: &[JobRecord]) {
        for r in &completed[self.digested..] {
            // Killed jobs ran to their limit, teaching nothing about the
            // true runtime; restarted jobs' spans include lost attempts.
            if !r.killed && r.restarts == 0 && r.walltime_estimate > 0.0 {
                self.per_user
                    .entry(r.user)
                    .or_default()
                    .push((r.run() / r.walltime_estimate).min(1.0));
            }
        }
        self.digested = completed.len();
    }

    /// The correction factor for `user` (1.0 when history is thin).
    fn factor(&mut self, user: u32) -> f64 {
        let (q, min) = (self.quantile, self.min_samples);
        match self.per_user.get_mut(&user) {
            Some(stats) if stats.ratios.len() >= min => {
                stats.quantile(q).unwrap_or(1.0).clamp(0.05, 1.0)
            }
            _ => 1.0,
        }
    }
}

impl<S: Scheduler> Scheduler for EstimateLearning<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn schedule(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
        let digested_before = self.digested;
        self.digest(ctx.completed);
        if let Some(t) = ctx.telemetry {
            t.learning_updates
                .add((self.digested - digested_before) as u64);
        }
        let corrected: Vec<JobSpec> = ctx
            .queue
            .iter()
            .map(|j| {
                let mut j = j.clone();
                j.walltime_estimate *= self.factor(j.user);
                j
            })
            .collect();
        let view = SchedContext {
            now: ctx.now,
            queue: &corrected,
            cluster: ctx.cluster,
            running: ctx.running,
            shared_grace: ctx.shared_grace,
            completed: ctx.completed,
            telemetry: ctx.telemetry,
        };
        self.inner.schedule(&view)
    }

    fn explain(
        &self,
        ctx: &SchedContext<'_>,
        decision: &Decision,
    ) -> nodeshare_engine::StartReason {
        // Corrections change estimates, not queue order or occupancy, so
        // the inner policy's justification applies unchanged.
        self.inner.explain(ctx, decision)
    }

    fn explain_all(
        &self,
        ctx: &SchedContext<'_>,
        decisions: &[Decision],
    ) -> Vec<nodeshare_engine::StartReason> {
        // Forward so the inner policy keeps its batched justification.
        self.inner.explain_all(ctx, decisions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{self, job};
    use crate::Backfill;
    use nodeshare_cluster::JobId;
    use nodeshare_perf::AppId;

    fn record(user: u32, run: f64, estimate: f64) -> JobRecord {
        JobRecord {
            id: JobId(0),
            app: AppId(0),
            nodes: 1,
            submit: 0.0,
            start: 0.0,
            finish: run,
            runtime_exclusive: run,
            walltime_estimate: estimate,
            shared_node_seconds: 0.0,
            killed: false,
            shared_alloc: false,
            restarts: 0,
            salvaged_work: 0.0,
            user,
        }
    }

    #[test]
    fn learns_per_user_quantiles() {
        let mut l = EstimateLearning::new(Backfill::easy(), 0.9, 3);
        let records: Vec<JobRecord> = (0..10)
            .map(|i| record(7, 100.0 + i as f64, 1_000.0)) // ratios ~0.1
            .chain((0..10).map(|_| record(8, 900.0, 1_000.0))) // ratios 0.9
            .collect();
        l.digest(&records);
        assert!(l.factor(7) < 0.15, "user 7 factor {}", l.factor(7));
        assert!((l.factor(8) - 0.9).abs() < 1e-9);
        // Unknown user: no correction.
        assert_eq!(l.factor(99), 1.0);
    }

    #[test]
    fn thin_history_is_not_corrected() {
        let mut l = EstimateLearning::new(Backfill::easy(), 0.9, 3);
        l.digest(&[record(7, 100.0, 1_000.0)]);
        assert_eq!(l.factor(7), 1.0);
    }

    #[test]
    fn killed_and_restarted_jobs_teach_nothing() {
        let mut l = EstimateLearning::new(Backfill::easy(), 0.9, 1);
        let mut killed = record(7, 500.0, 500.0);
        killed.killed = true;
        let mut restarted = record(7, 900.0, 1_000.0);
        restarted.restarts = 2;
        l.digest(&[killed, restarted]);
        assert_eq!(l.factor(7), 1.0);
    }

    #[test]
    fn digest_is_incremental() {
        let mut l = EstimateLearning::new(Backfill::easy(), 0.5, 1);
        let records: Vec<JobRecord> = (0..4).map(|_| record(1, 500.0, 1_000.0)).collect();
        l.digest(&records[..2]);
        assert_eq!(l.digested, 2);
        l.digest(&records);
        assert_eq!(l.digested, 4);
        assert_eq!(l.per_user[&1].ratios.len(), 4);
    }

    #[test]
    fn end_to_end_composition_completes() {
        let world = testkit::world(
            4,
            (0..12).map(|i| job(i, 1 + (i % 3) as u32, 200.0)).collect(),
        );
        let mut sched = EstimateLearning::new(Backfill::easy(), 0.9, 2);
        let out = testkit::simulate(&world, &mut sched);
        assert!(out.complete());
        assert_eq!(out.records.len(), 12);
        assert_eq!(sched.name(), "easy-backfill");
    }
}
