//! Planning primitives shared by the scheduling strategies: node free
//! times, head reservations (shadow times), placement pickers, and the
//! count-based availability profile used by conservative backfill.

use crate::pairing::Pairing;
use nodeshare_cluster::{AdminState, NodeId};
use nodeshare_engine::SchedContext;
use nodeshare_workload::{JobSpec, Seconds};
use std::collections::HashSet;

/// Numerical slack for time comparisons in planning.
pub const PLAN_EPS: f64 = 1e-6;

/// Per-node earliest time at which the node is *fully* free (no resident
/// on any lane), for all `Up` nodes in id order.
///
/// Idle nodes are free `now`; occupied nodes free when their last
/// resident's walltime estimate expires — a hard bound when walltime
/// enforcement is on, which is what makes backfill guarantees sound.
pub fn node_free_times(ctx: &SchedContext<'_>) -> Vec<(NodeId, Seconds)> {
    ctx.cluster
        .nodes()
        .iter()
        .filter(|n| n.admin_state() == AdminState::Up)
        .map(|n| {
            let free_at = n
                .occupants()
                .iter()
                .filter_map(|j| ctx.running.get(j))
                .map(|r| r.est_end())
                .fold(ctx.now, f64::max);
            (n.id(), free_at)
        })
        .collect()
}

/// The head job's reservation: when enough nodes will be free, and which
/// nodes are earmarked for it.
#[derive(Clone, Debug, PartialEq)]
pub struct HeadReservation {
    /// Earliest time `k` nodes are simultaneously free (∞ when the
    /// machine can never supply `k` nodes).
    pub shadow: Seconds,
    /// The `k` earliest-free nodes, reserved for the head.
    // detlint: allow(D1, reservation set probed via contains; never iterated)
    pub nodes: HashSet<NodeId>,
}

impl HeadReservation {
    /// Computes the reservation for a head job needing `k` nodes.
    pub fn compute(ctx: &SchedContext<'_>, k: usize) -> HeadReservation {
        let mut free = node_free_times(ctx);
        if free.len() < k {
            return HeadReservation {
                shadow: f64::INFINITY,
                // detlint: allow(D1, empty reservation set for the impossible-head case; never iterated)
                nodes: HashSet::new(),
            };
        }
        // Earliest-free first; ties by node id for determinism.
        free.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let shadow = free[k - 1].1;
        let nodes = free[..k].iter().map(|&(n, _)| n).collect();
        HeadReservation { shadow, nodes }
    }

    /// Whether a candidate running in `[now, now + walltime]` on `node`
    /// could delay the head: it can only if it outlives the shadow *and*
    /// occupies a reserved node.
    pub fn blocks(&self, node: NodeId, candidate_end: Seconds) -> bool {
        candidate_end > self.shadow + PLAN_EPS && self.nodes.contains(&node)
    }
}

/// Picks the `job.nodes` lowest-id idle nodes passing `allowed`, with
/// memory feasibility, for an exclusive start.
pub fn pick_exclusive(
    ctx: &SchedContext<'_>,
    job: &JobSpec,
    mut allowed: impl FnMut(NodeId) -> bool,
) -> Option<Vec<NodeId>> {
    let k = job.nodes as usize;
    let picked: Vec<NodeId> = ctx
        .cluster
        .idle_nodes()
        .filter(|&n| {
            allowed(n)
                && ctx
                    .cluster
                    .node(n)
                    .is_some_and(|node| node.mem_free() >= u64::from(job.mem_per_node_mib))
        })
        .take(k)
        .collect();
    (picked.len() == k).then_some(picked)
}

/// A planned co-allocation: where the job would go and what the pairing
/// is predicted to be worth.
///
/// Because multi-node jobs are bulk-synchronous (they run at the rate of
/// their slowest node), pairing a candidate onto a *subset* of a
/// resident's nodes slows the resident on **all** its nodes. The plan
/// therefore carries a whole-placement **net gain**:
///
/// `net = k·r_cand − Σ_residents A.nodes·(1 − r_A)`
///
/// where `r_cand` is the candidate's predicted rate (min over its
/// partners) and `r_A` each touched resident's predicted rate next to the
/// candidate. Positive net means the placement adds machine throughput
/// versus leaving the candidate in the queue; strategies only co-allocate
/// net-positive plans. Resident rates are conservatively assumed to be
/// 1.0 beforehand (a resident already slowed elsewhere makes the plan
/// look worse than it is, never better).
#[derive(Clone, Debug, PartialEq)]
pub struct SharedPlan {
    /// Target nodes, partial (partnered) nodes first.
    pub nodes: Vec<NodeId>,
    /// Distinct resident jobs the candidate would pair with.
    pub partners: Vec<nodeshare_cluster::JobId>,
    /// Predicted candidate rate under this placement.
    pub candidate_rate: f64,
    /// Predicted net throughput gain in node-equivalents (see above).
    pub net_gain: f64,
}

/// Plans a shared (lane) start for `job`: free lanes of compatible
/// partial nodes first (best predicted pairs first), idle nodes for the
/// remainder, all passing `allowed` and memory checks.
///
/// Returns `None` when the job did not opt in, sharing is disabled, or
/// `job.nodes` nodes cannot be assembled. A returned plan may still have
/// a negative [`SharedPlan::net_gain`]; the caller decides the threshold.
pub fn plan_shared(
    ctx: &SchedContext<'_>,
    job: &JobSpec,
    pairing: &Pairing,
    mut allowed: impl FnMut(NodeId) -> bool,
) -> Option<SharedPlan> {
    if !job.share_eligible || !pairing.sharing_enabled() {
        return None;
    }
    let k = job.nodes as usize;
    // Compatible partial nodes, best predicted pairs first. The whole
    // stack on a node must be acceptable, not just each resident in
    // isolation — with an n-way-capable predictor this prices three- and
    // four-way contention correctly (see the F11 experiment).
    let mut partials: Vec<(NodeId, f64)> = ctx
        .cluster
        .partial_nodes()
        .filter(|&n| allowed(n))
        .filter_map(|n| {
            let node = ctx.cluster.node(n)?;
            // A query is one candidate partial node evaluated against the
            // pairing policy; a hit is one that survives every filter.
            // The span times the full candidate evaluation.
            let _pairing_span = ctx.telemetry.map(|t| t.time_pairing());
            if let Some(t) = ctx.telemetry {
                t.pairing_queries.inc();
            }
            if node.mem_free() < u64::from(job.mem_per_node_mib) {
                return None;
            }
            let mut score = f64::INFINITY;
            let mut resident_apps = Vec::with_capacity(node.occupants().len());
            let cand_bound = job.walltime_estimate * ctx.shared_grace.max(1.0);
            for resident in node.occupants() {
                let r = ctx.running.get(&resident)?;
                if !r.share_eligible {
                    return None;
                }
                if let Some(theta) = pairing.duration_match {
                    let remaining = (r.est_end() - ctx.now).max(0.0);
                    let overlap = remaining.min(cand_bound) / remaining.max(cand_bound).max(1e-9);
                    if overlap < theta {
                        return None;
                    }
                }
                resident_apps.push(r.app);
                score = score.min(pairing.score(job.app, r.app));
            }
            if !pairing.allows_stack(job.app, &resident_apps) {
                return None;
            }
            if let Some(t) = ctx.telemetry {
                t.pairing_hits.inc();
            }
            Some((n, score))
        })
        .collect();
    partials.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut nodes: Vec<NodeId> = partials.into_iter().take(k).map(|(n, _)| n).collect();
    if nodes.len() < k {
        let need = k - nodes.len();
        nodes.extend(
            ctx.cluster
                .idle_nodes()
                .filter(|&n| {
                    allowed(n)
                        && ctx
                            .cluster
                            .node(n)
                            .is_some_and(|node| node.mem_free() >= u64::from(job.mem_per_node_mib))
                })
                .take(need),
        );
    }
    if nodes.len() < k {
        return None;
    }

    // Evaluate the plan node by node: the candidate's rate is the worst
    // predicted stack rate across its nodes; each partner's loss is
    // counted once, at its worst predicted post-placement rate.
    let mut partners: Vec<nodeshare_cluster::JobId> = Vec::new();
    let mut partner_rate: Vec<f64> = Vec::new();
    let mut candidate_rate = 1.0f64;
    for &n in &nodes {
        // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
        let node = ctx.cluster.node(n).expect("picked node exists");
        let occupants = node.occupants();
        if occupants.is_empty() {
            continue;
        }
        let apps: Vec<_> = occupants
            .iter()
            // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
            .map(|j| ctx.running.get(j).expect("resident is running").app)
            .collect();
        let sr = pairing.stack_rates(job.app, &apps);
        candidate_rate = candidate_rate.min(sr.candidate);
        for (resident, &rate) in occupants.iter().zip(&sr.residents) {
            match partners.iter().position(|p| p == resident) {
                Some(i) => partner_rate[i] = partner_rate[i].min(rate),
                None => {
                    partners.push(*resident);
                    partner_rate.push(rate);
                }
            }
        }
    }
    let losses: f64 = partners
        .iter()
        .zip(&partner_rate)
        .map(|(p, &rate)| {
            // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
            let r = ctx.running.get(p).expect("partner is running");
            r.nodes as f64 * (1.0 - rate)
        })
        .sum();
    Some(SharedPlan {
        net_gain: k as f64 * candidate_rate - losses,
        nodes,
        partners,
        candidate_rate,
    })
}

/// Plans a shared start and accepts it only when the predicted net gain
/// clears the pairing's floor (default: strictly positive) — the form
/// the strategies use.
pub fn pick_shared(
    ctx: &SchedContext<'_>,
    job: &JobSpec,
    pairing: &Pairing,
    allowed: impl FnMut(NodeId) -> bool,
) -> Option<Vec<NodeId>> {
    let plan = plan_shared(ctx, job, pairing, allowed)?;
    (plan.net_gain > pairing.net_gain_floor).then_some(plan.nodes)
}

/// A count-based future-availability step function used by conservative
/// backfill to plan reservations for every queued job.
///
/// Count-based planning is the standard simulator simplification: node
/// *identity* only matters for jobs starting now (where the concrete
/// pickers above decide); future reservations need only counts.
#[derive(Clone, Debug)]
pub struct AvailabilityProfile {
    /// `(time, free_node_count)` breakpoints, time-ascending; the value
    /// holds from its time until the next breakpoint.
    steps: Vec<(Seconds, i64)>,
}

impl AvailabilityProfile {
    /// Builds the profile from the scheduler context: idle nodes are free
    /// now, each running job returns its nodes at its estimated end.
    pub fn from_context(ctx: &SchedContext<'_>) -> Self {
        let mut deltas: Vec<(Seconds, i64)> = Vec::with_capacity(ctx.running.len() + 1);
        deltas.push((ctx.now, ctx.cluster.idle_count() as i64));
        for r in ctx.running.values() {
            deltas.push((r.est_end().max(ctx.now), r.nodes as i64));
        }
        Self::from_deltas(deltas)
    }

    /// Builds from raw `(time, +count)` release deltas.
    pub fn from_deltas(mut deltas: Vec<(Seconds, i64)>) -> Self {
        deltas.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut steps: Vec<(Seconds, i64)> = Vec::with_capacity(deltas.len());
        let mut level = 0i64;
        for (t, d) in deltas {
            level += d;
            match steps.last_mut() {
                Some(last) if last.0 == t => last.1 = level,
                _ => steps.push((t, level)),
            }
        }
        AvailabilityProfile { steps }
    }

    /// The `(time, free_node_count)` breakpoints, time-ascending. Exposed
    /// so the incremental [`crate::planner::ReservationTimeline`] can be
    /// checked step-for-step against a from-scratch rebuild.
    pub fn steps(&self) -> &[(Seconds, i64)] {
        &self.steps
    }

    /// Free nodes at `time`.
    pub fn free_at(&self, time: Seconds) -> i64 {
        match self.steps.binary_search_by(|s| s.0.total_cmp(&time)) {
            Ok(i) => self.steps[i].1,
            Err(0) => 0,
            Err(i) => self.steps[i - 1].1,
        }
    }

    /// Earliest `t ≥ from` such that at least `nodes` are free throughout
    /// `[t, t + duration)`. Returns ∞ if the capacity never materializes.
    pub fn earliest_fit(&self, from: Seconds, nodes: i64, duration: Seconds) -> Seconds {
        let mut candidates: Vec<Seconds> = vec![from];
        candidates.extend(self.steps.iter().map(|&(t, _)| t).filter(|&t| t > from));
        'outer: for &t in &candidates {
            if self.free_at(t) < nodes {
                continue;
            }
            let end = t + duration;
            for &(st, sv) in &self.steps {
                if st > t + PLAN_EPS && st < end - PLAN_EPS && sv < nodes {
                    continue 'outer;
                }
            }
            return t;
        }
        f64::INFINITY
    }

    /// Subtracts `nodes` from availability during `[start, start + duration)`
    /// — a planned reservation.
    pub fn reserve(&mut self, start: Seconds, duration: Seconds, nodes: i64) {
        let mut deltas: Vec<(Seconds, i64)> = Vec::with_capacity(self.steps.len() + 2);
        let mut prev = 0i64;
        for &(t, level) in &self.steps {
            deltas.push((t, level - prev));
            prev = level;
        }
        deltas.push((start, -nodes));
        deltas.push((start + duration, nodes));
        *self = Self::from_deltas(deltas);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> AvailabilityProfile {
        // 2 free now (t=0); +3 at t=100; +1 at t=200.
        AvailabilityProfile::from_deltas(vec![(0.0, 2), (100.0, 3), (200.0, 1)])
    }

    #[test]
    fn free_levels() {
        let p = profile();
        assert_eq!(p.free_at(-1.0), 0);
        assert_eq!(p.free_at(0.0), 2);
        assert_eq!(p.free_at(99.9), 2);
        assert_eq!(p.free_at(100.0), 5);
        assert_eq!(p.free_at(500.0), 6);
    }

    #[test]
    fn earliest_fit_finds_gaps() {
        let p = profile();
        assert_eq!(p.earliest_fit(0.0, 2, 50.0), 0.0);
        assert_eq!(p.earliest_fit(0.0, 3, 50.0), 100.0);
        assert_eq!(p.earliest_fit(0.0, 6, 10.0), 200.0);
        assert_eq!(p.earliest_fit(0.0, 7, 10.0), f64::INFINITY);
        assert_eq!(p.earliest_fit(150.0, 2, 10.0), 150.0);
    }

    #[test]
    fn reserve_consumes_capacity() {
        let mut p = profile();
        p.reserve(0.0, 150.0, 2);
        assert_eq!(p.free_at(0.0), 0);
        assert_eq!(p.free_at(100.0), 3);
        assert_eq!(p.free_at(150.0), 5);
        // A 2-node job can no longer start at 0.
        assert_eq!(p.earliest_fit(0.0, 2, 10.0), 100.0);
    }

    #[test]
    fn earliest_fit_respects_dips_inside_the_window() {
        // 4 free now; a reservation eats 3 during [50, 100).
        let mut p = AvailabilityProfile::from_deltas(vec![(0.0, 4)]);
        p.reserve(50.0, 50.0, 3);
        // A 2-node 100-second job cannot start at 0 (dip to 1 at t=50).
        assert_eq!(p.earliest_fit(0.0, 2, 100.0), 100.0);
        // But a 1-node job can.
        assert_eq!(p.earliest_fit(0.0, 1, 100.0), 0.0);
        // And a 2-node job short enough to finish by the dip can.
        assert_eq!(p.earliest_fit(0.0, 2, 50.0), 0.0);
    }
}
