//! First-fit scheduling, and its node-sharing extension CoFirstFit.
//!
//! Plain first-fit scans the queue in submission order and starts *any*
//! job that fits on idle nodes right now — no reservations, so large jobs
//! can starve under sustained load (the known first-fit weakness the
//! paper's backfill extension addresses).
//!
//! **CoFirstFit** (the paper's first extension) additionally considers
//! co-allocation: a share-eligible job may take the free hyper-thread
//! lane of nodes whose residents the pairing policy approves. Shared
//! placements are tried first — filling lanes is the whole point — with
//! exclusive placement as the fallback for jobs that did not opt in or
//! found no partners.
//!
//! Like [`crate::Backfill`], the default path plans against the
//! incremental [`Planner`] caches; [`FirstFit::reference`] keeps the
//! original implementation for the differential tests.

use crate::pairing::Pairing;
use crate::planner::Planner;
use crate::util::{pick_exclusive, pick_shared};
use nodeshare_engine::{Decision, SchedContext, Scheduler};

/// First-fit over the queue, optionally co-allocation-aware.
#[derive(Clone, Debug)]
pub struct FirstFit {
    pairing: Pairing,
    planner: Planner,
    reference: bool,
}

impl FirstFit {
    /// Plain exclusive first-fit (the paper's baseline).
    pub fn exclusive() -> Self {
        FirstFit::with_pairing(Pairing::never())
    }

    /// Co-allocation-aware first-fit with the given pairing policy.
    pub fn sharing(pairing: Pairing) -> Self {
        FirstFit::with_pairing(pairing)
    }

    fn with_pairing(pairing: Pairing) -> Self {
        FirstFit {
            planner: Planner::new(&pairing),
            pairing,
            reference: false,
        }
    }

    /// Switches to the pre-optimization reference implementation; see
    /// [`crate::Backfill::reference`].
    pub fn reference(mut self) -> Self {
        self.reference = true;
        self
    }

    /// The pairing in use.
    pub fn pairing(&self) -> &Pairing {
        &self.pairing
    }

    fn schedule_fast(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
        // Wall-clock phase span over the placement scan; observes on drop.
        let _placement_span = ctx.telemetry.map(|t| t.time_placement());
        let sharing = self.pairing.sharing_enabled();
        self.planner.begin_pass(ctx);
        let use_memo = ctx.telemetry.is_none();
        if use_memo
            && ctx.cluster.idle_count() == 0
            && (!sharing || self.planner.eligible_partial_count() == 0)
        {
            // No idle node and no shareable lane: nothing can start.
            return Vec::new();
        }
        for job in ctx.queue {
            // Idle capacity first: sharing never beats running alone.
            if let Some(nodes) = self.planner.pick_exclusive(ctx, job, false) {
                return if sharing && job.share_eligible {
                    vec![Decision::StartShared { job: job.id, nodes }]
                } else {
                    vec![Decision::StartExclusive { job: job.id, nodes }]
                };
            }
            if sharing && job.share_eligible {
                if let Some(nodes) =
                    self.planner
                        .pick_shared(ctx, job, &self.pairing, false, use_memo)
                {
                    return vec![Decision::StartShared { job: job.id, nodes }];
                }
            }
        }
        Vec::new()
    }

    fn schedule_reference(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
        // Same phase span as the fast path.
        let _placement_span = ctx.telemetry.map(|t| t.time_placement());
        let sharing = self.pairing.sharing_enabled();
        for job in ctx.queue {
            // Idle capacity first: sharing never beats running alone.
            // Share-eligible jobs still start in shared (single-lane)
            // mode so their second lane stays open for later partners.
            if let Some(nodes) = pick_exclusive(ctx, job, |_| true) {
                return if sharing && job.share_eligible {
                    vec![Decision::StartShared { job: job.id, nodes }]
                } else {
                    vec![Decision::StartExclusive { job: job.id, nodes }]
                };
            }
            // No idle capacity for this job: co-allocate onto compatible
            // lanes when the predicted net throughput gain is positive.
            if sharing && job.share_eligible {
                if let Some(nodes) = pick_shared(ctx, job, &self.pairing, |_| true) {
                    return vec![Decision::StartShared { job: job.id, nodes }];
                }
            }
        }
        Vec::new()
    }
}

impl Scheduler for FirstFit {
    fn name(&self) -> &'static str {
        if self.pairing.sharing_enabled() {
            "co-first-fit"
        } else {
            "first-fit"
        }
    }

    fn schedule(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
        if self.reference {
            self.schedule_reference(ctx)
        } else {
            self.schedule_fast(ctx)
        }
    }

    fn explain_all(
        &self,
        ctx: &SchedContext<'_>,
        decisions: &[Decision],
    ) -> Vec<nodeshare_engine::StartReason> {
        // Batched classification: one queue scan for the invocation.
        nodeshare_engine::StartReason::classify_all(ctx, decisions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::PairingPolicy;
    use crate::testkit::{self, job, job_app, oracle};

    fn co_first_fit() -> FirstFit {
        FirstFit::sharing(Pairing::new(PairingPolicy::default_threshold(), oracle()))
    }

    #[test]
    fn skips_blocked_head() {
        // Head needs 4 nodes; job 1 needs 1 and jumps ahead.
        let world = testkit::world(4, vec![job(0, 3, 100.0), job(1, 4, 100.0), job(2, 1, 10.0)]);
        let out = testkit::simulate(&world, &mut FirstFit::exclusive());
        assert!(out.complete());
        let r2 = &out.records[2];
        assert!(r2.wait() < 1.0, "first-fit should start job 2 immediately");
    }

    #[test]
    fn co_first_fit_pairs_complementary_jobs() {
        // A memory-bound and a compute-bound 2-node job on a 2-node
        // cluster: co-first-fit runs them simultaneously on shared lanes.
        let world = testkit::world(
            2,
            vec![job_app(0, 2, 100.0, "AMG"), job_app(1, 2, 100.0, "miniDFT")],
        );
        let out = testkit::simulate(&world, &mut co_first_fit());
        assert!(out.complete());
        let (r0, r1) = (&out.records[0], &out.records[1]);
        assert!(r0.shared_alloc && r1.shared_alloc);
        // Both run concurrently (job 1 starts at its arrival, not after 0).
        assert!(r1.start < 2.0, "start {}", r1.start);
        assert!(r0.shared_node_seconds > 0.0);
        // Makespan beats the serial 200 s.
        let makespan = out.records.iter().map(|r| r.finish).fold(0.0, f64::max);
        assert!(makespan < 160.0, "makespan {makespan}");
    }

    #[test]
    fn co_first_fit_refuses_bad_pairs() {
        // Two memory-bound jobs: pairing threshold rejects, so they run
        // serially (exclusive fallback can't fit while the first runs in
        // shared mode on both nodes... it waits).
        let world = testkit::world(
            2,
            vec![job_app(0, 2, 100.0, "AMG"), job_app(1, 2, 100.0, "miniFE")],
        );
        let out = testkit::simulate(&world, &mut co_first_fit());
        assert!(out.complete());
        let r1 = &out.records[1];
        assert!(
            r1.start >= 99.0,
            "bandwidth-bound pair must not share (start {})",
            r1.start
        );
        // Neither job was slowed.
        for r in &out.records {
            assert!((r.dilation() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn non_eligible_jobs_never_share() {
        let mut a = job_app(0, 2, 100.0, "AMG");
        a.share_eligible = false;
        let b = job_app(1, 2, 100.0, "miniDFT");
        let world = testkit::world(2, vec![a, b]);
        let out = testkit::simulate(&world, &mut co_first_fit());
        assert!(out.complete());
        assert!(!out.records[0].shared_alloc);
        assert_eq!(out.records[0].shared_node_seconds, 0.0);
        assert!(out.records[1].start >= 99.0);
    }

    #[test]
    fn reference_mode_matches_the_optimized_path() {
        let jobs: Vec<_> = (0..10)
            .map(|i| {
                if i % 2 == 0 {
                    job_app(i, 2, 120.0, "AMG")
                } else {
                    job_app(i, 1, 60.0, "miniDFT")
                }
            })
            .collect();
        let world = testkit::world(3, jobs);
        let fast = testkit::simulate(&world, &mut co_first_fit());
        let refr = testkit::simulate(&world, &mut co_first_fit().reference());
        assert_eq!(fast.records, refr.records);
    }

    #[test]
    fn exclusive_first_fit_never_shares() {
        let world = testkit::world(
            2,
            vec![job_app(0, 2, 100.0, "AMG"), job_app(1, 2, 100.0, "miniDFT")],
        );
        let out = testkit::simulate(&world, &mut FirstFit::exclusive());
        for r in &out.records {
            assert!(!r.shared_alloc);
            assert_eq!(r.shared_node_seconds, 0.0);
        }
        assert_eq!(FirstFit::exclusive().name(), "first-fit");
        assert_eq!(co_first_fit().name(), "co-first-fit");
    }
}
