//! Adaptive width-malleable scheduling: EASY backfill plus reshape.
//!
//! Wraps [`Backfill::easy`] and adds two reshape behaviors for running
//! *exclusive* jobs with a non-rigid [`Malleability`] contract:
//!
//! * **Shrink to admit.** When the inner policy can start nothing and
//!   the queue is non-empty, shrink running malleable jobs toward their
//!   contract minimum — in job-id order, dropping each job's highest-id
//!   nodes — until the freed nodes plus the already-idle ones cover the
//!   head's request, then start the head in the same decision batch.
//!   All-or-nothing: if shrinking every malleable job to its minimum
//!   still cannot admit the head, no reshape is issued.
//! * **Grow to fill.** When nothing can start — the queue is empty, or
//!   the head is blocked beyond what shrinking could fix — idle nodes
//!   are pure slack (including the ones EASY strands behind its head
//!   reservation), so grow running malleable jobs toward their contract
//!   maximum, in job-id order, lowest-id idle nodes first, all in one
//!   batch. Grown width is reclaimed by the shrink path the moment a
//!   waiting job could use it, so growing never delays a start.
//!
//! On an all-rigid workload neither path ever fires — no job passes the
//! malleability filter — so the policy is decision-for-decision
//! identical to EASY backfill; the rigid differential suite pins this
//! down to byte-identical traces.

use crate::backfill::Backfill;
use nodeshare_cluster::{JobId, NodeId, ShareMode};
use nodeshare_engine::{Decision, SchedContext, Scheduler};
use nodeshare_workload::JobSpec;

/// EASY backfill with width-malleability: shrinks running malleable jobs
/// to admit a blocked queue head, re-grows them when the queue drains.
pub struct Adaptive {
    inner: Backfill,
}

impl Adaptive {
    /// The adaptive policy over the optimized EASY backfill core.
    pub fn new() -> Adaptive {
        Adaptive {
            inner: Backfill::easy(),
        }
    }

    /// Switches the inner backfill to its pre-optimization reference
    /// implementation (see [`Backfill::reference`]); the reshape logic
    /// is identical.
    #[must_use]
    pub fn reference(self) -> Adaptive {
        Adaptive {
            inner: self.inner.reference(),
        }
    }

    /// The nodes `job` currently holds, in grant order.
    fn held_nodes(ctx: &SchedContext<'_>, job: JobId) -> Vec<NodeId> {
        ctx.cluster
            .allocation(job)
            .map(|a| a.nodes().collect())
            .unwrap_or_default()
    }

    /// Idle up-nodes able to host `job` exclusively, ascending id.
    fn idle_for(ctx: &SchedContext<'_>, job: &JobSpec) -> Vec<NodeId> {
        let mut idle: Vec<NodeId> = ctx
            .cluster
            .idle_nodes()
            .filter(|&n| {
                ctx.cluster
                    .node(n)
                    .is_some_and(|node| node.mem_free() >= u64::from(job.mem_per_node_mib))
            })
            .collect();
        idle.sort_unstable();
        idle
    }

    /// Shrink running malleable jobs until the queue head fits, then
    /// start it. Returns the whole batch, or nothing if infeasible.
    fn shrink_to_admit(ctx: &SchedContext<'_>) -> Vec<Decision> {
        let Some(head) = ctx.queue.first() else {
            return Vec::new();
        };
        let need = head.nodes as usize;
        let mut available = Self::idle_for(ctx, head);
        if available.len() >= need {
            // The inner policy starts a fitting head itself; reaching
            // here means it declined (it never does today), so defer.
            return Vec::new();
        }
        let mut reshapes = Vec::new();
        for r in ctx.running.values() {
            if available.len() >= need {
                break;
            }
            if r.mode != ShareMode::Exclusive || r.malleable.is_rigid() {
                continue;
            }
            let min = r.malleable.min_nodes.max(1);
            if r.nodes <= min {
                continue;
            }
            let deficit = (need - available.len()) as u32;
            let give = (r.nodes - min).min(deficit) as usize;
            let held = Self::held_nodes(ctx, r.job);
            if held.len() != r.nodes as usize {
                continue;
            }
            // Freed nodes must be able to host the head once idle; the
            // job's exclusive memory footprint is released with them.
            let mut by_id = held.clone();
            by_id.sort_unstable();
            let freed: Vec<NodeId> = by_id.split_off(by_id.len() - give);
            let hostable = freed.iter().all(|&n| {
                ctx.cluster
                    .node(n)
                    .is_some_and(|node| node.spec().mem_mib >= u64::from(head.mem_per_node_mib))
            });
            if !hostable {
                continue;
            }
            // Keep the survivors in grant order (the engine treats the
            // reshape's node list as the new grant order).
            let kept: Vec<NodeId> = held
                .iter()
                .copied()
                .filter(|n| !freed.contains(n))
                .collect();
            reshapes.push(Decision::Reshape {
                job: r.job,
                nodes: kept,
            });
            available.extend(freed);
        }
        if available.len() < need {
            return Vec::new(); // all-or-nothing: leave everything as is
        }
        available.sort_unstable();
        available.truncate(need);
        reshapes.push(Decision::StartExclusive {
            job: head.id,
            nodes: available,
        });
        reshapes
    }

    /// Grow running malleable jobs into idle nodes, one batch.
    fn grow_into_idle(ctx: &SchedContext<'_>) -> Vec<Decision> {
        let mut idle: Vec<NodeId> = ctx.cluster.idle_nodes().collect();
        idle.sort_unstable();
        let mut out = Vec::new();
        let mut cursor = 0usize;
        for r in ctx.running.values() {
            if cursor >= idle.len() {
                break;
            }
            if r.mode != ShareMode::Exclusive
                || r.malleable.is_rigid()
                || r.nodes >= r.malleable.max_nodes
            {
                continue;
            }
            let take = ((r.malleable.max_nodes - r.nodes) as usize).min(idle.len() - cursor);
            let mut nodes = Self::held_nodes(ctx, r.job);
            if nodes.len() != r.nodes as usize {
                continue;
            }
            nodes.extend_from_slice(&idle[cursor..cursor + take]);
            cursor += take;
            out.push(Decision::Reshape { job: r.job, nodes });
        }
        out
    }
}

impl Default for Adaptive {
    fn default() -> Adaptive {
        Adaptive::new()
    }
}

impl Scheduler for Adaptive {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn schedule(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
        let base = self.inner.schedule(ctx);
        if !base.is_empty() {
            return base;
        }
        if !ctx.queue.is_empty() {
            let shrunk = Self::shrink_to_admit(ctx);
            if !shrunk.is_empty() {
                return shrunk;
            }
        }
        // Nothing can start even after shrinking: idle nodes — including
        // the ones EASY strands behind its head reservation — are pure
        // slack, so grow malleable jobs into them. The grown width is
        // reclaimable by the shrink path the instant the head could use
        // the nodes, so this never delays a start.
        Self::grow_into_idle(ctx)
    }

    fn explain_all(
        &self,
        ctx: &SchedContext<'_>,
        decisions: &[Decision],
    ) -> Vec<nodeshare_engine::StartReason> {
        // Forward so the inner policy's batched classification is kept;
        // reshapes classify as Unspecified (they are not starts).
        self.inner.explain_all(ctx, decisions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{self, job};
    use nodeshare_workload::Malleability;

    /// A malleable variant of the testkit job: `[min, max]` around the
    /// requested width with a small reshape cost.
    fn mjob(id: u64, nodes: u32, runtime: f64, min: u32, max: u32) -> nodeshare_workload::JobSpec {
        let mut j = job(id, nodes, runtime);
        j.malleable = Malleability::range(min, max, 10.0);
        j
    }

    fn traced(
        world: &testkit::World,
        policy: &mut dyn Scheduler,
    ) -> (
        nodeshare_engine::SimOutcome,
        nodeshare_engine::DecisionTrace,
    ) {
        nodeshare_engine::run_traced(&world.workload, &world.matrix, policy, &world.config)
    }

    #[test]
    fn rigid_workload_matches_easy_backfill_outcomes() {
        let jobs = vec![job(0, 3, 100.0), job(1, 4, 100.0), job(2, 1, 10.0)];
        let world = testkit::world(4, jobs);
        let (adaptive, atrace) = traced(&world, &mut Adaptive::new());
        let (easy, etrace) = traced(&world, &mut Backfill::easy());
        assert_eq!(adaptive.scheduler, "adaptive");
        assert_eq!(adaptive.records, easy.records);
        assert_eq!(
            format!("{:?}", atrace.events()),
            format!("{:?}", etrace.events())
        );
    }

    #[test]
    fn shrinks_wide_malleable_job_to_admit_blocked_head() {
        // Job 0: malleable, requests all 4 nodes, may shrink to 2, runs
        // long. Job 1 (head) wants 2 nodes — blocked under EASY until
        // job 0 ends; Adaptive shrinks job 0 and starts job 1 early.
        let jobs = vec![mjob(0, 4, 400.0, 2, 4), job(1, 2, 50.0)];
        let world = testkit::world(4, jobs);
        let (out, trace) = traced(&world, &mut Adaptive::new());
        assert!(out.records.iter().all(|r| !r.killed));
        let reshapes = trace
            .events()
            .iter()
            .filter(|e| matches!(e, nodeshare_engine::TraceEvent::Reshape { .. }))
            .count();
        assert!(reshapes >= 1, "expected at least one reshape");
        // Job 1 starts when it arrives (t=1), not when job 0 ends.
        let r1 = out.records.iter().find(|r| r.id.0 == 1).unwrap();
        assert!(
            r1.start < 100.0,
            "head should start early via shrink, started at {}",
            r1.start
        );
    }

    #[test]
    fn grows_malleable_job_into_idle_nodes_when_queue_drains() {
        // One malleable job alone on a 4-node machine, requesting 2 of
        // 4: the grow path widens it to its max and it finishes early.
        let jobs = vec![mjob(0, 2, 400.0, 1, 4)];
        let world = testkit::world(4, jobs);
        let out = testkit::simulate(&world, &mut Adaptive::new());
        let r0 = &out.records[0];
        assert!(!r0.killed);
        // Perfect-speedup model: 400 s of 2-node work on 4 nodes takes
        // ~200 s plus the charged reshape cost.
        assert!(
            r0.finish - r0.start < 250.0,
            "grow should shorten the run, took {}",
            r0.finish - r0.start
        );
    }

    #[test]
    fn rigid_jobs_are_never_reshaped() {
        let jobs = vec![job(0, 4, 200.0), job(1, 2, 50.0), job(2, 1, 20.0)];
        let world = testkit::world(4, jobs);
        let (_, trace) = traced(&world, &mut Adaptive::new());
        assert!(trace
            .events()
            .iter()
            .all(|e| !matches!(e, nodeshare_engine::TraceEvent::Reshape { .. })));
    }
}
