//! Conservative backfill: every queued job gets a reservation.
//!
//! A candidate may start early only when doing so delays *no*
//! earlier-queued job's planned start. Implemented with the count-based
//! [`AvailabilityProfile`]: queued jobs are planned in order, each taking
//! the earliest slot that fits its size and estimate; a job whose planned
//! slot is "now" actually starts. Exclusive allocation only — the paper
//! uses it as a second baseline.

use crate::util::{pick_exclusive, AvailabilityProfile, PLAN_EPS};
use nodeshare_engine::{Decision, SchedContext, Scheduler};

/// Conservative backfill with exclusive allocation.
#[derive(Clone, Copy, Debug, Default)]
pub struct Conservative;

impl Conservative {
    /// Creates the policy.
    pub fn new() -> Self {
        Conservative
    }
}

impl Scheduler for Conservative {
    fn name(&self) -> &'static str {
        "conservative-backfill"
    }

    fn schedule(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
        let mut profile = AvailabilityProfile::from_context(ctx);
        for job in ctx.queue {
            let start = profile.earliest_fit(ctx.now, job.nodes as i64, job.walltime_estimate);
            if start <= ctx.now + PLAN_EPS {
                if let Some(nodes) = pick_exclusive(ctx, job, |_| true) {
                    return vec![Decision::StartExclusive { job: job.id, nodes }];
                }
                // Count-based plan said "fits now" but no concrete idle
                // nodes satisfy memory — plan it for later instead.
            }
            if start.is_finite() {
                profile.reserve(start, job.walltime_estimate, job.nodes as i64);
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{self, job};

    #[test]
    fn backfills_without_delaying_any_reservation() {
        // Job 0: 3 nodes, 100 s (est 200). Job 1: 4 nodes (whole machine).
        // Job 2: 1 node, 10 s (est 20) → fits before job 1's reservation.
        let world = testkit::world(4, vec![job(0, 3, 100.0), job(1, 4, 100.0), job(2, 1, 10.0)]);
        let out = testkit::simulate(&world, &mut Conservative::new());
        assert!(out.complete());
        assert!(out.records[2].wait() < 1.0);
    }

    #[test]
    fn protects_second_in_line_reservations() {
        // Unlike EASY, conservative also refuses backfill that would
        // delay job 2 (not just the head).
        //
        // Cluster 4. Job 0: 2 nodes est 200. Head job 1: 4 nodes (starts
        // at 200, est 200 → [200, 400)). Job 2: 2 nodes est 200 → planned
        // [400, 600). Job 3: 2 nodes est 190: EASY would start it (ends
        // 190 ≤ shadow 200 is false... est 190 ≤ 200 shadow: yes EASY
        // starts it). For conservative it also fits before the shadow, so
        // both agree here; the distinguishing case is a candidate that
        // fits between reservations. Job 3 with est 350 must wait under
        // conservative: its window [0, 350) would overlap job 1's
        // whole-machine slot [200, 400).
        let mut j3 = job(3, 2, 150.0);
        j3.walltime_estimate = 350.0;
        let world = testkit::world(
            4,
            vec![job(0, 2, 100.0), job(1, 4, 100.0), job(2, 2, 100.0), j3],
        );
        let out = testkit::simulate(&world, &mut Conservative::new());
        assert!(out.complete());
        let r1 = &out.records[1];
        let r3 = &out.records[3];
        assert!(
            r3.start >= r1.start - 1e-6,
            "candidate overlapping the head's slot must wait (j3 {} head {})",
            r3.start,
            r1.start
        );
    }

    #[test]
    fn empty_queue_is_a_noop() {
        let world = testkit::world(2, vec![job(0, 1, 10.0)]);
        let out = testkit::simulate(&world, &mut Conservative::new());
        assert!(out.complete());
        assert_eq!(out.records.len(), 1);
    }
}
