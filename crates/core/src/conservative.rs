//! Conservative backfill: every queued job gets a reservation.
//!
//! A candidate may start early only when doing so delays *no*
//! earlier-queued job's planned start. Implemented with the count-based
//! availability profile: queued jobs are planned in order, each taking
//! the earliest slot that fits its size and estimate; a job whose planned
//! slot is "now" actually starts. Exclusive allocation only — the paper
//! uses it as a second baseline.
//!
//! Two implementations share this module, the same split as
//! [`crate::Backfill`]:
//!
//! * the optimized path plans against an incrementally maintained
//!   [`ReservationTimeline`] (version-keyed base, in-place reservation
//!   splicing, cross-pass prefix cache) and places via the planner's
//!   O(k) exclusive picker;
//! * [`Conservative::reference`] keeps the original from-scratch
//!   [`AvailabilityProfile`] loop, the oracle `tests/differential.rs`
//!   holds the optimized path byte-equal to.

use crate::pairing::Pairing;
use crate::planner::{Planner, ReservationTimeline};
use crate::util::{pick_exclusive, AvailabilityProfile, PLAN_EPS};
use nodeshare_engine::{Decision, SchedContext, Scheduler};

/// Conservative backfill with exclusive allocation.
#[derive(Clone, Debug)]
pub struct Conservative {
    planner: Planner,
    timeline: ReservationTimeline,
    reference: bool,
    /// Pending one-shot profile corruption (fault-injection tests).
    poison: Option<i64>,
}

impl Conservative {
    /// Creates the policy (optimized path).
    pub fn new() -> Self {
        Conservative {
            planner: Planner::new(&Pairing::never()),
            timeline: ReservationTimeline::new(),
            reference: false,
            poison: None,
        }
    }

    /// Switches to the unoptimized reference implementation — the
    /// differential oracle the fast path is tested against.
    pub fn reference(mut self) -> Self {
        self.reference = true;
        self
    }

    /// Arms a one-shot corruption of the incremental profile's anchor
    /// entry (`free -= delta` at the next pass), for the audit
    /// fault-injection tests. No effect in reference mode.
    #[doc(hidden)]
    pub fn corrupt_next_pass(&mut self, delta: i64) {
        self.poison = Some(delta);
    }

    /// The incremental profile's current steps (for the property tests
    /// that diff it against a from-scratch rebuild).
    #[doc(hidden)]
    pub fn profile_steps(&self) -> &[(f64, i64)] {
        self.timeline.steps()
    }

    fn schedule_fast(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
        // Wall-clock phase span over the timeline-maintenance pass
        // (profile splice/rebuild + plan/reserve loop); observes on drop.
        let _timeline_span = ctx.telemetry.map(|t| t.time_timeline());
        let resume = self.timeline.begin_pass(ctx);
        if let Some(delta) = self.poison.take() {
            self.timeline.corrupt_anchor_for_test(delta);
        }
        for job in &ctx.queue[resume..] {
            let start = self
                .timeline
                .plan(job.id, job.nodes as i64, job.walltime_estimate);
            if start <= ctx.now + PLAN_EPS {
                if let Some(nodes) = self.planner.pick_exclusive(ctx, job, false) {
                    self.timeline.invalidate();
                    return vec![Decision::StartExclusive { job: job.id, nodes }];
                }
                // Count-based plan said "fits now" but no concrete idle
                // nodes satisfy memory — plan it for later instead.
            }
            if start.is_finite() {
                self.timeline
                    .reserve(start, job.walltime_estimate, job.nodes as i64);
            }
        }
        self.timeline.seal();
        Vec::new()
    }

    fn schedule_reference(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
        // Same phase span as the fast path: the from-scratch profile
        // build is exactly the maintenance the incremental path avoids.
        let _timeline_span = ctx.telemetry.map(|t| t.time_timeline());
        let mut profile = AvailabilityProfile::from_context(ctx);
        for job in ctx.queue {
            let start = profile.earliest_fit(ctx.now, job.nodes as i64, job.walltime_estimate);
            if start <= ctx.now + PLAN_EPS {
                if let Some(nodes) = pick_exclusive(ctx, job, |_| true) {
                    return vec![Decision::StartExclusive { job: job.id, nodes }];
                }
            }
            if start.is_finite() {
                profile.reserve(start, job.walltime_estimate, job.nodes as i64);
            }
        }
        Vec::new()
    }
}

impl Default for Conservative {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for Conservative {
    fn name(&self) -> &'static str {
        "conservative-backfill"
    }

    fn schedule(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
        if self.reference {
            self.schedule_reference(ctx)
        } else {
            self.schedule_fast(ctx)
        }
    }

    fn explain_all(
        &self,
        ctx: &SchedContext<'_>,
        decisions: &[Decision],
    ) -> Vec<nodeshare_engine::StartReason> {
        // Batched classification: one queue scan for the invocation.
        nodeshare_engine::StartReason::classify_all(ctx, decisions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{self, job};

    #[test]
    fn backfills_without_delaying_any_reservation() {
        // Job 0: 3 nodes, 100 s (est 200). Job 1: 4 nodes (whole machine).
        // Job 2: 1 node, 10 s (est 20) → fits before job 1's reservation.
        let world = testkit::world(4, vec![job(0, 3, 100.0), job(1, 4, 100.0), job(2, 1, 10.0)]);
        let out = testkit::simulate(&world, &mut Conservative::new());
        assert!(out.complete());
        assert!(out.records[2].wait() < 1.0);
    }

    #[test]
    fn protects_second_in_line_reservations() {
        // Unlike EASY, conservative also refuses backfill that would
        // delay job 2 (not just the head).
        //
        // Cluster 4. Job 0: 2 nodes est 200. Head job 1: 4 nodes (starts
        // at 200, est 200 → [200, 400)). Job 2: 2 nodes est 200 → planned
        // [400, 600). Job 3: 2 nodes est 190: EASY would start it (ends
        // 190 ≤ shadow 200 is false... est 190 ≤ 200 shadow: yes EASY
        // starts it). For conservative it also fits before the shadow, so
        // both agree here; the distinguishing case is a candidate that
        // fits between reservations. Job 3 with est 350 must wait under
        // conservative: its window [0, 350) would overlap job 1's
        // whole-machine slot [200, 400).
        let mut j3 = job(3, 2, 150.0);
        j3.walltime_estimate = 350.0;
        let world = testkit::world(
            4,
            vec![job(0, 2, 100.0), job(1, 4, 100.0), job(2, 2, 100.0), j3],
        );
        let out = testkit::simulate(&world, &mut Conservative::new());
        assert!(out.complete());
        let r1 = &out.records[1];
        let r3 = &out.records[3];
        assert!(
            r3.start >= r1.start - 1e-6,
            "candidate overlapping the head's slot must wait (j3 {} head {})",
            r3.start,
            r1.start
        );
    }

    #[test]
    fn phase_spans_attribute_timeline_wall_time() {
        let world = testkit::world(4, vec![job(0, 3, 100.0), job(1, 4, 100.0), job(2, 1, 10.0)]);
        let (out, tele) = testkit::simulate_with_telemetry(&world, &mut Conservative::new());
        assert!(out.complete());
        assert!(
            tele.sched.phase_timeline_seconds.count() > 0,
            "timeline-maintenance passes must be timed"
        );
    }

    #[test]
    fn empty_queue_is_a_noop() {
        let world = testkit::world(2, vec![job(0, 1, 10.0)]);
        let out = testkit::simulate(&world, &mut Conservative::new());
        assert!(out.complete());
        assert_eq!(out.records.len(), 1);
    }

    #[test]
    fn reference_mode_matches_the_optimized_path() {
        // In-crate smoke check; the cross-workload battery lives in
        // tests/differential.rs.
        let jobs = || {
            let mut j3 = job(3, 2, 150.0);
            j3.walltime_estimate = 350.0;
            vec![
                job(0, 2, 100.0),
                job(1, 4, 100.0),
                job(2, 2, 100.0),
                j3,
                job(4, 1, 5.0),
                job(5, 3, 40.0),
            ]
        };
        let world = testkit::world(4, jobs());
        let fast = testkit::simulate(&world, &mut Conservative::new());
        let refr = testkit::simulate(&world, &mut Conservative::new().reference());
        assert!(fast.complete() && refr.complete());
        assert_eq!(fast.records, refr.records);
    }
}
