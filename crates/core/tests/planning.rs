//! Direct tests of the planning primitives (`node_free_times`,
//! `HeadReservation`, `pick_exclusive`, `plan_shared`) against
//! hand-constructed cluster states.

use nodeshare_cluster::{Cluster, ClusterSpec, JobId, NodeId, NodeSpec, ShareMode};
use nodeshare_core::util::{node_free_times, pick_exclusive, plan_shared, HeadReservation};
use nodeshare_core::{Pairing, PairingPolicy};
use nodeshare_engine::{RunningSummary, SchedContext};
use nodeshare_perf::{AppCatalog, AppId, ContentionModel, Predictor};
use nodeshare_workload::JobSpec;
use std::collections::BTreeMap;

struct Fixture {
    cluster: Cluster,
    running: BTreeMap<JobId, RunningSummary>,
}

impl Fixture {
    fn new(nodes: u32) -> Fixture {
        Fixture {
            cluster: Cluster::new(ClusterSpec::new(nodes, NodeSpec::tiny())),
            running: BTreeMap::new(),
        }
    }

    /// Starts a running job on explicit nodes.
    fn run_job(&mut self, id: u64, app: &str, nodes: &[u32], est_end: f64, shared: bool) {
        let catalog = AppCatalog::trinity();
        let app = catalog.by_name(app).unwrap().id;
        let ids: Vec<NodeId> = nodes.iter().copied().map(NodeId).collect();
        let job = JobId(id);
        if shared {
            self.cluster.allocate_shared(job, &ids, 64).unwrap();
        } else {
            self.cluster.allocate_exclusive(job, &ids, 64).unwrap();
        }
        self.running.insert(
            job,
            RunningSummary {
                job,
                app,
                nodes: ids.len() as u32,
                requested_nodes: ids.len() as u32,
                malleable: Default::default(),
                start: 0.0,
                walltime_estimate: est_end,
                kill_at: est_end,
                share_eligible: shared,
                mode: if shared {
                    ShareMode::Shared
                } else {
                    ShareMode::Exclusive
                },
            },
        );
    }

    fn ctx<'a>(&'a self, now: f64, queue: &'a [JobSpec]) -> SchedContext<'a> {
        SchedContext {
            now,
            queue,
            cluster: &self.cluster,
            running: &self.running,
            shared_grace: 1.5,
            completed: &[],
            telemetry: None,
        }
    }
}

fn job(id: u64, app: &str, nodes: u32) -> JobSpec {
    let catalog = AppCatalog::trinity();
    JobSpec {
        malleable: Default::default(),
        id: JobId(id),
        app: catalog.by_name(app).unwrap().id,
        nodes,
        submit: 0.0,
        runtime_exclusive: 100.0,
        walltime_estimate: 200.0,
        mem_per_node_mib: 64,
        share_eligible: true,
        user: 0,
    }
}

fn pairing() -> Pairing {
    Pairing::new(
        PairingPolicy::default_threshold(),
        Predictor::oracle(&AppCatalog::trinity(), &ContentionModel::calibrated()),
    )
}

#[test]
fn free_times_reflect_kill_bounds() {
    let mut fx = Fixture::new(4);
    fx.run_job(1, "AMG", &[0, 1], 500.0, false);
    fx.run_job(2, "miniFE", &[2], 300.0, true);
    let q: Vec<JobSpec> = vec![];
    let ctx = fx.ctx(100.0, &q);
    let times = node_free_times(&ctx);
    assert_eq!(times.len(), 4);
    assert_eq!(times[0], (NodeId(0), 500.0));
    assert_eq!(times[1], (NodeId(1), 500.0));
    assert_eq!(times[2], (NodeId(2), 300.0));
    assert_eq!(times[3], (NodeId(3), 100.0)); // idle = free now
}

#[test]
fn drained_nodes_are_excluded_from_planning() {
    let mut fx = Fixture::new(4);
    fx.cluster.drain(NodeId(3)).unwrap();
    let q: Vec<JobSpec> = vec![];
    let ctx = fx.ctx(0.0, &q);
    assert_eq!(node_free_times(&ctx).len(), 3);
    // Reservation for a 4-node job can never be satisfied.
    let res = HeadReservation::compute(&ctx, 4);
    assert!(res.shadow.is_infinite());
    assert!(res.nodes.is_empty());
}

#[test]
fn reservation_picks_the_earliest_free_nodes() {
    let mut fx = Fixture::new(4);
    fx.run_job(1, "AMG", &[0], 900.0, false);
    fx.run_job(2, "miniFE", &[1], 400.0, false);
    let q: Vec<JobSpec> = vec![];
    let ctx = fx.ctx(0.0, &q);
    // Head wants 3 nodes: idle 2,3 free now + node 1 at 400 → shadow 400.
    let res = HeadReservation::compute(&ctx, 3);
    assert_eq!(res.shadow, 400.0);
    assert!(res.nodes.contains(&NodeId(1)));
    assert!(res.nodes.contains(&NodeId(2)));
    assert!(res.nodes.contains(&NodeId(3)));
    assert!(!res.nodes.contains(&NodeId(0)));
    // A candidate ending before the shadow never blocks.
    assert!(!res.blocks(NodeId(2), 399.0));
    // One ending after blocks reserved nodes only.
    assert!(res.blocks(NodeId(2), 500.0));
    assert!(!res.blocks(NodeId(0), 500.0));
}

#[test]
fn pick_exclusive_respects_filters_and_memory() {
    let mut fx = Fixture::new(4);
    fx.run_job(1, "AMG", &[0], 500.0, false);
    let q = vec![job(5, "miniFE", 2)];
    let ctx = fx.ctx(0.0, &q);
    let picked = pick_exclusive(&ctx, &q[0], |_| true).unwrap();
    assert_eq!(picked, vec![NodeId(1), NodeId(2)]);
    // Filter away node 1: picks 2 and 3.
    let picked = pick_exclusive(&ctx, &q[0], |n| n != NodeId(1)).unwrap();
    assert_eq!(picked, vec![NodeId(2), NodeId(3)]);
    // Too much memory: no placement.
    let mut fat = q[0].clone();
    fat.mem_per_node_mib = (NodeSpec::tiny().mem_mib + 1) as u32;
    assert!(pick_exclusive(&ctx, &fat, |_| true).is_none());
    // More nodes than exist: no placement.
    let mut wide = q[0].clone();
    wide.nodes = 9;
    assert!(pick_exclusive(&ctx, &wide, |_| true).is_none());
}

#[test]
fn plan_shared_prefers_compatible_partners_and_prices_them() {
    let mut fx = Fixture::new(4);
    // AMG (memory-bound) on nodes 0-1, shared mode → free lanes there.
    fx.run_job(1, "AMG", &[0, 1], 1_000.0, true);
    let q = vec![job(5, "miniDFT", 2)];
    let ctx = fx.ctx(0.0, &q);
    let plan = plan_shared(&ctx, &q[0], &pairing(), |_| true).unwrap();
    // Partial nodes first (compute × memory pairs well).
    assert_eq!(plan.nodes, vec![NodeId(0), NodeId(1)]);
    assert_eq!(plan.partners, vec![JobId(1)]);
    assert!(plan.net_gain > 0.0);
    assert!(plan.candidate_rate > 0.7);
}

#[test]
fn plan_shared_rejects_incompatible_residents() {
    let mut fx = Fixture::new(2);
    fx.run_job(1, "AMG", &[0, 1], 1_000.0, true);
    // Another bandwidth-bound app: pairing refuses, and no idle nodes
    // remain → no plan.
    let q = vec![job(5, "miniFE", 2)];
    let ctx = fx.ctx(0.0, &q);
    assert!(plan_shared(&ctx, &q[0], &pairing(), |_| true).is_none());
}

#[test]
fn plan_shared_spills_to_idle_nodes() {
    let mut fx = Fixture::new(4);
    fx.run_job(1, "AMG", &[0], 1_000.0, true);
    let q = vec![job(5, "miniDFT", 3)];
    let ctx = fx.ctx(0.0, &q);
    let plan = plan_shared(&ctx, &q[0], &pairing(), |_| true).unwrap();
    assert_eq!(plan.nodes.len(), 3);
    assert_eq!(plan.nodes[0], NodeId(0), "partner lane first");
    assert!(plan.nodes[1..].iter().all(|n| *n != NodeId(0)));
    // Candidate is bulk-synchronous: rate limited by the shared node.
    assert!(plan.candidate_rate < 1.0);
}

#[test]
fn plan_shared_refuses_non_eligible_candidates() {
    let fx = Fixture::new(2);
    let mut j = job(5, "miniDFT", 1);
    j.share_eligible = false;
    let q = vec![j];
    let ctx = fx.ctx(0.0, &q);
    assert!(plan_shared(&ctx, &q[0], &pairing(), |_| true).is_none());
}

#[test]
fn plan_shared_counts_partner_losses_once() {
    let mut fx = Fixture::new(4);
    // One 3-node resident; candidate overlaps 2 of its nodes: the loss
    // must count the resident's full 3-node width once.
    fx.run_job(1, "AMG", &[0, 1, 2], 1_000.0, true);
    let q = vec![job(5, "miniDFT", 2)];
    let ctx = fx.ctx(0.0, &q);
    let plan = plan_shared(&ctx, &q[0], &pairing(), |_| true).unwrap();
    assert_eq!(plan.partners, vec![JobId(1)]);
    let p = pairing();
    let rates = p.rates(q[0].app, AppId(2)); // AMG id = 2 in the catalog
    let expected = 2.0 * rates.rate_a - 3.0 * (1.0 - rates.rate_b);
    assert!(
        (plan.net_gain - expected).abs() < 1e-9,
        "net {} vs expected {expected}",
        plan.net_gain
    );
}

#[test]
fn context_residents_helper_lists_running_summaries() {
    let mut fx = Fixture::new(3);
    fx.run_job(1, "AMG", &[0], 500.0, true);
    fx.run_job(2, "miniDFT", &[0], 500.0, true);
    let q: Vec<JobSpec> = vec![];
    let ctx = fx.ctx(0.0, &q);
    let residents = ctx.residents(NodeId(0));
    assert_eq!(residents.len(), 2);
    assert!(residents.iter().any(|r| r.job == JobId(1)));
    assert!(residents.iter().any(|r| r.job == JobId(2)));
    assert!(ctx.residents(NodeId(1)).is_empty());
    // Unknown node: empty, not a panic.
    assert!(ctx.residents(NodeId(99)).is_empty());
}
