//! Property tests for the incremental conservative-backfill profile: at
//! **every scheduling decision point** of randomized campaigns, the
//! optimized [`Conservative`] path's incrementally maintained
//! [`nodeshare_core::ReservationTimeline`] must return the same decision
//! as a from-scratch reference replay and — when the pass commits no
//! decision — leave step-for-step identical reservation steps. Campaign
//! variants cover the invalidation sources the timeline must survive:
//! releases, walltime kills (lying estimates), and failure-driven
//! requeues.

use nodeshare_cluster::{ClusterSpec, JobId, NodeSpec};
use nodeshare_core::util::{pick_exclusive, AvailabilityProfile, PLAN_EPS};
use nodeshare_core::Conservative;
use nodeshare_engine::{run, Decision, FailureModel, SchedContext, Scheduler, SimConfig};
use nodeshare_perf::{AppCatalog, AppId, CoRunTruth, ContentionModel};
use nodeshare_workload::{JobSpec, Workload};
use proptest::prelude::*;

const NODES: u32 = 8;

/// Wraps the optimized scheduler and cross-checks it against a
/// from-scratch replay of the reference planning loop on every call.
struct ProfileChecked {
    inner: Conservative,
    passes: u64,
}

impl ProfileChecked {
    fn new() -> Self {
        ProfileChecked {
            inner: Conservative::new(),
            passes: 0,
        }
    }
}

impl Scheduler for ProfileChecked {
    fn name(&self) -> &'static str {
        // Forward the real name so traces/outcomes match plain runs.
        "conservative-backfill"
    }

    fn schedule(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
        self.passes += 1;
        let fast = self.inner.schedule(ctx);

        // The reference loop, rebuilt from the context with no state
        // carried over from previous passes.
        let mut profile = AvailabilityProfile::from_context(ctx);
        let mut reference: Vec<Decision> = Vec::new();
        for job in ctx.queue {
            let start = profile.earliest_fit(ctx.now, job.nodes as i64, job.walltime_estimate);
            if start <= ctx.now + PLAN_EPS {
                if let Some(nodes) = pick_exclusive(ctx, job, |_| true) {
                    reference = vec![Decision::StartExclusive { job: job.id, nodes }];
                    break;
                }
            }
            if start.is_finite() {
                profile.reserve(start, job.walltime_estimate, job.nodes as i64);
            }
        }

        assert_eq!(
            fast, reference,
            "decision diverged from from-scratch replay at t={} (pass {})",
            ctx.now, self.passes
        );
        if fast.is_empty() {
            // No decision: the incremental profile must equal the rebuilt
            // one bit-for-bit, breakpoint times and levels alike.
            assert_eq!(
                self.inner.profile_steps(),
                profile.steps(),
                "incremental profile diverged from rebuild at t={} (pass {})",
                ctx.now,
                self.passes
            );
        }
        fast
    }
}

#[derive(Clone, Debug)]
struct RawJob {
    nodes: u32,
    runtime: f64,
    submit_gap: f64,
    /// Estimate multiplier; < 1 produces lying estimates and walltime
    /// kills, exercising kill-driven profile invalidation.
    est_factor: f64,
}

fn raw_job() -> impl Strategy<Value = RawJob> {
    (1u32..=NODES, 10.0f64..400.0, 0.0f64..150.0, 0.5f64..2.5).prop_map(
        |(nodes, runtime, submit_gap, est_factor)| RawJob {
            nodes,
            runtime,
            submit_gap,
            est_factor,
        },
    )
}

fn build_workload(raw: Vec<RawJob>) -> Workload {
    let mut t = 0.0;
    let jobs: Vec<JobSpec> = raw
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            t += r.submit_gap;
            JobSpec {
                malleable: Default::default(),
                id: JobId(i as u64),
                app: AppId((i % 8) as u8),
                nodes: r.nodes,
                submit: t,
                runtime_exclusive: r.runtime,
                walltime_estimate: (r.runtime * r.est_factor).max(1.0),
                mem_per_node_mib: 64,
                share_eligible: false,
                user: 0,
            }
        })
        .collect();
    Workload::new(jobs).unwrap()
}

fn world() -> (CoRunTruth, SimConfig) {
    let catalog = AppCatalog::trinity();
    let matrix = CoRunTruth::build(&catalog, &ContentionModel::calibrated());
    let config = SimConfig::new(ClusterSpec::new(NODES, NodeSpec::tiny()));
    (matrix, config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Release- and kill-driven invalidation: every decision point of a
    /// plain campaign (including walltime kills from under-estimates)
    /// agrees with the from-scratch rebuild, and the checked run's
    /// outcome equals an unchecked optimized run's.
    #[test]
    fn incremental_profile_matches_rebuild_everywhere(
        raw in prop::collection::vec(raw_job(), 1..30),
    ) {
        let (matrix, config) = world();
        let workload = build_workload(raw);
        let mut checked = ProfileChecked::new();
        let out = run(&workload, &matrix, &mut checked, &config);
        prop_assert!(checked.passes > 0);
        let mut plain = Conservative::new();
        let out_plain = run(&workload, &matrix, &mut plain, &config);
        prop_assert!(out == out_plain);
    }

    /// Requeue-driven invalidation: random node failures kill and requeue
    /// running jobs mid-campaign; the incremental profile must still
    /// agree with the rebuild at every subsequent decision point.
    #[test]
    fn incremental_profile_survives_failure_requeues(
        raw in prop::collection::vec(raw_job(), 1..25),
        mtbf in 2_000.0f64..40_000.0,
        fseed in 0u64..64,
    ) {
        let (matrix, mut config) = world();
        config.failures = Some(FailureModel {
            mtbf_per_node: mtbf,
            repair_time: 120.0,
            seed: fseed,
        });
        let workload = build_workload(raw);
        let mut checked = ProfileChecked::new();
        let out = run(&workload, &matrix, &mut checked, &config);
        prop_assert!(checked.passes > 0);
        let mut plain = Conservative::new();
        let out_plain = run(&workload, &matrix, &mut plain, &config);
        prop_assert!(out == out_plain);
    }
}
