//! Property tests for the dense pairing table: for *arbitrary* app
//! catalogs, pairing policies, predictors, and resident stacks, every
//! table accessor must agree exactly — including f64 bit patterns — with
//! the [`Pairing`] methods it memoizes, and fall back to the reference
//! for out-of-domain ids.

use nodeshare_core::{Pairing, PairingPolicy, PairingTable};
use nodeshare_perf::{
    AppCatalog, AppClass, AppId, AppProfile, ContentionModel, Predictor, ResourceVector,
};
use proptest::prelude::*;

/// An arbitrary valid app profile (name/id are assigned by the catalog).
fn profile() -> impl Strategy<Value = AppProfile> {
    (
        0.0f64..=1.0,
        0.0f64..=1.0,
        0.0f64..=1.0,
        0.0f64..=1.0,
        0usize..4,
        1u64..=96_000,
    )
        .prop_map(|(issue, membw, llc, net, class, mem)| AppProfile {
            id: AppId(0), // reassigned by AppCatalog::new
            name: "app".to_string(),
            class: [
                AppClass::ComputeBound,
                AppClass::MemoryBound,
                AppClass::Balanced,
                AppClass::CommBound,
            ][class],
            demand: ResourceVector::new(issue, membw, llc, net),
            mem_per_node_mib: mem,
        })
}

/// An arbitrary catalog of 1..=12 apps.
fn catalog() -> impl Strategy<Value = AppCatalog> {
    prop::collection::vec(profile(), 1..=12).prop_map(|mut apps| {
        for (i, a) in apps.iter_mut().enumerate() {
            a.name = format!("app{i}");
        }
        AppCatalog::new(apps)
    })
}

/// An arbitrary pairing policy.
fn policy() -> impl Strategy<Value = PairingPolicy> {
    prop_oneof![
        Just(PairingPolicy::Never),
        Just(PairingPolicy::Any),
        (0.0f64..=1.0, 0.5f64..=2.0).prop_map(|(min_rate, min_combined)| {
            PairingPolicy::Threshold {
                min_rate,
                min_combined,
            }
        }),
    ]
}

/// Builds one of the five predictor kinds against the given catalog.
fn predictor(kind: u8, rate: f64, catalog: &AppCatalog, model: &ContentionModel) -> Predictor {
    match kind {
        0 => Predictor::oracle(catalog, model),
        1 => Predictor::nway_oracle(catalog, model),
        2 => Predictor::class_based(catalog, model),
        3 => Predictor::Pessimistic { rate },
        _ => Predictor::Oblivious,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For arbitrary catalogs/policies/predictors, the table agrees with
    /// the reference `Pairing` on every pair accessor and on stacks of
    /// 0..=3 residents — exact equality, including NaN-free f64 bits.
    #[test]
    fn table_agrees_with_pairing_reference(
        catalog in catalog(),
        policy in policy(),
        kind in 0u8..5,
        rate in 0.1f64..=1.0,
        floor in -0.5f64..=0.5,
        theta in prop::option::of(0.0f64..=1.0),
        stack_picks in prop::collection::vec(0u8..16, 0..3),
        cand_pick in 0u8..16,
    ) {
        let model = ContentionModel::calibrated();
        let mut pairing = Pairing::new(policy, predictor(kind, rate, &catalog, &model))
            .with_net_gain_floor(floor);
        if let Some(theta) = theta {
            pairing = pairing.with_duration_match(theta);
        }
        let table = PairingTable::build(&pairing);
        prop_assert_eq!(table.sharing_enabled(), pairing.sharing_enabled());

        let n = catalog.len() as u8;
        let wrap = |p: u8| AppId(p % n);
        let cand = wrap(cand_pick);

        // Every in-catalog pair, all accessors.
        for a in catalog.ids() {
            for b in catalog.ids() {
                prop_assert_eq!(table.allows(&pairing, a, b), pairing.allows(a, b));
                let (ts, ps) = (table.score(&pairing, a, b), pairing.score(a, b));
                prop_assert_eq!(ts.to_bits(), ps.to_bits(), "score {a:?}x{b:?}");
                let want = pairing.stack_rates(a, &[b]);
                let got = table.stack_rates(&pairing, a, &[b]);
                prop_assert_eq!(got.candidate.to_bits(), want.candidate.to_bits());
                prop_assert_eq!(got.residents.len(), want.residents.len());
                for (g, w) in got.residents.iter().zip(&want.residents) {
                    prop_assert_eq!(g.to_bits(), w.to_bits());
                }
                let (cr, rr) = table.stack_pair(&pairing, a, b);
                prop_assert_eq!(cr.to_bits(), want.candidate.to_bits());
                prop_assert_eq!(rr.to_bits(), want.residents[0].to_bits());
            }
        }

        // An arbitrary resident stack (depth 0..=3), in-catalog ids.
        let residents: Vec<AppId> = stack_picks.iter().map(|&p| wrap(p)).collect();
        prop_assert_eq!(
            table.allows_stack(&pairing, cand, &residents),
            pairing.allows_stack(cand, &residents),
            "stack allow for {residents:?}"
        );
        let want = pairing.stack_rates(cand, &residents);
        let got = table.stack_rates(&pairing, cand, &residents);
        prop_assert_eq!(got.candidate.to_bits(), want.candidate.to_bits());
        for (g, w) in got.residents.iter().zip(&want.residents) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    /// Ids outside the table's domain route through the reference
    /// implementation, so the table never changes behavior for apps the
    /// predictor happens to accept beyond the catalog.
    #[test]
    fn out_of_domain_ids_fall_back_to_reference(
        policy in policy(),
        rate in 0.1f64..=1.0,
        a in 0u8..=255,
        b in 0u8..=255,
    ) {
        // Constant predictors answer for the full u8 id domain.
        let pairing = Pairing::new(policy, Predictor::Pessimistic { rate });
        let table = PairingTable::build(&pairing);
        let (a, b) = (AppId(a), AppId(b));
        prop_assert_eq!(table.allows(&pairing, a, b), pairing.allows(a, b));
        prop_assert_eq!(
            table.score(&pairing, a, b).to_bits(),
            pairing.score(a, b).to_bits()
        );
        prop_assert_eq!(
            table.allows_stack(&pairing, a, &[b]),
            pairing.allows_stack(a, &[b])
        );
    }
}
