//! Property tests over all scheduling strategies: every strategy must
//! complete every feasible workload with consistent per-job records, the
//! exclusive baselines must never dilate a job, and threshold-paired
//! sharing with honest 2× estimates must never cause walltime kills.

use nodeshare_cluster::{ClusterSpec, JobId, NodeSpec};
use nodeshare_core::{StrategyConfig, StrategyKind};
use nodeshare_engine::{run, SimConfig};
use nodeshare_perf::{AppCatalog, AppId, CoRunTruth, ContentionModel};
use nodeshare_workload::{JobSpec, Workload};
use proptest::prelude::*;

const NODES: u32 = 6;

#[derive(Clone, Debug)]
struct RawJob {
    nodes: u32,
    runtime: f64,
    submit_gap: f64,
    app: u8,
    share: bool,
}

fn raw_job() -> impl Strategy<Value = RawJob> {
    (
        1u32..=4,
        10.0f64..500.0,
        0.0f64..200.0,
        0u8..8,
        prop::bool::weighted(0.8),
    )
        .prop_map(|(nodes, runtime, submit_gap, app, share)| RawJob {
            nodes,
            runtime,
            submit_gap,
            app,
            share,
        })
}

fn build_workload(raw: Vec<RawJob>) -> Workload {
    let mut t = 0.0;
    let jobs: Vec<JobSpec> = raw
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            t += r.submit_gap;
            JobSpec {
                malleable: Default::default(),
                id: JobId(i as u64),
                app: AppId(r.app),
                nodes: r.nodes,
                submit: t,
                runtime_exclusive: r.runtime,
                walltime_estimate: r.runtime * 2.0,
                mem_per_node_mib: 64,
                share_eligible: r.share,
                user: 0,
            }
        })
        .collect();
    Workload::new(jobs).unwrap()
}

fn world() -> (CoRunTruth, SimConfig) {
    let catalog = AppCatalog::trinity();
    let matrix = CoRunTruth::build(&catalog, &ContentionModel::calibrated());
    let config = SimConfig::new(ClusterSpec::new(NODES, NodeSpec::tiny()));
    (matrix, config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every strategy finishes every feasible workload, with internally
    /// consistent records.
    #[test]
    fn all_strategies_complete_all_workloads(raw in prop::collection::vec(raw_job(), 1..25)) {
        let workload = build_workload(raw);
        let catalog = AppCatalog::trinity();
        let model = ContentionModel::calibrated();
        let (matrix, config) = world();
        for cfg in StrategyConfig::lineup() {
            let mut sched = cfg.build(&catalog, &model);
            let out = run(&workload, &matrix, sched.as_mut(), &config);
            prop_assert!(out.complete(), "{}: {:?} unscheduled", cfg.label(), out.unscheduled);
            prop_assert_eq!(out.records.len(), workload.len());
            for r in &out.records {
                r.validate().map_err(TestCaseError::fail)?;
                prop_assert!(r.start + 1e-9 >= r.submit);
                // A job never runs faster than exclusive speed.
                prop_assert!(r.dilation() >= 1.0 - 1e-9, "{}: dilation {}", cfg.label(), r.dilation());
                // Walltime enforcement bounds wall-clock time.
                prop_assert!(r.run() <= r.walltime_estimate + 1e-6);
            }
        }
    }

    /// Exclusive baselines never share, never dilate, and never exceed
    /// computational efficiency 1.
    #[test]
    fn exclusive_strategies_never_dilate(raw in prop::collection::vec(raw_job(), 1..25)) {
        let workload = build_workload(raw);
        let catalog = AppCatalog::trinity();
        let model = ContentionModel::calibrated();
        let (matrix, config) = world();
        for kind in [
            StrategyKind::Fcfs,
            StrategyKind::FirstFit,
            StrategyKind::EasyBackfill,
            StrategyKind::Conservative,
        ] {
            let cfg = StrategyConfig::exclusive(kind);
            let mut sched = cfg.build(&catalog, &model);
            let out = run(&workload, &matrix, sched.as_mut(), &config);
            for r in &out.records {
                prop_assert!(!r.shared_alloc);
                prop_assert_eq!(r.shared_node_seconds, 0.0);
                prop_assert!((r.dilation() - 1.0).abs() < 1e-9);
                prop_assert!(!r.killed, "honest 2x estimates never kill exclusive jobs");
            }
            let m = out.metrics(&config.cluster);
            prop_assert!(m.computational_efficiency <= 1.0 + 1e-9);
        }
    }

    /// Threshold-paired sharing with honest 2× estimates never triggers a
    /// walltime kill: the worst accepted dilation (1/0.7 ≈ 1.43) stays
    /// inside the estimate headroom — the scheduler-side safety that
    /// underlies the paper's "no overhead" claim.
    #[test]
    fn threshold_sharing_never_kills(raw in prop::collection::vec(raw_job(), 1..25)) {
        let workload = build_workload(raw);
        let catalog = AppCatalog::trinity();
        let model = ContentionModel::calibrated();
        let (matrix, config) = world();
        for kind in [StrategyKind::CoFirstFit, StrategyKind::CoBackfill] {
            let mut cfg = StrategyConfig::sharing(kind);
            cfg.predictor = nodeshare_core::PredictorKind::Oracle;
            let mut sched = cfg.build(&catalog, &model);
            let out = run(&workload, &matrix, sched.as_mut(), &config);
            prop_assert!(out.complete());
            for r in &out.records {
                prop_assert!(!r.killed, "{}: {} killed (dilation {:.3})", cfg.label(), r.id, r.dilation());
                // Oracle + min_rate 0.7 bounds dilation.
                prop_assert!(r.dilation() <= 1.0 / 0.7 + 1e-6);
            }
        }
    }

    /// FCFS starts jobs in submission order.
    #[test]
    fn fcfs_preserves_order(raw in prop::collection::vec(raw_job(), 1..25)) {
        let workload = build_workload(raw);
        let catalog = AppCatalog::trinity();
        let model = ContentionModel::calibrated();
        let (matrix, config) = world();
        let cfg = StrategyConfig::exclusive(StrategyKind::Fcfs);
        let mut sched = cfg.build(&catalog, &model);
        let out = run(&workload, &matrix, sched.as_mut(), &config);
        // records are id-ordered == submission-ordered in this generator.
        for w in out.records.windows(2) {
            prop_assert!(w[0].start <= w[1].start + 1e-9);
        }
    }

    /// Simulations are bit-deterministic.
    #[test]
    fn runs_are_deterministic(raw in prop::collection::vec(raw_job(), 1..15)) {
        let workload = build_workload(raw);
        let catalog = AppCatalog::trinity();
        let model = ContentionModel::calibrated();
        let (matrix, config) = world();
        let cfg = StrategyConfig::sharing(StrategyKind::CoBackfill);
        let a = run(&workload, &matrix, cfg.build(&catalog, &model).as_mut(), &config);
        let b = run(&workload, &matrix, cfg.build(&catalog, &model).as_mut(), &config);
        prop_assert_eq!(a.records, b.records);
        prop_assert_eq!(a.busy_core_seconds, b.busy_core_seconds);
        prop_assert_eq!(a.shared_core_seconds, b.shared_core_seconds);
    }
}
