//! Integration tests for the runtime telemetry layer against real
//! policies: a telemetered run must leave the outcome untouched, emit a
//! parseable JSONL stream whose node accounting is conserved, and render
//! the core Prometheus families.

use nodeshare_cluster::{ClusterSpec, NodeSpec};
use nodeshare_core::{Backfill, Pairing, PairingPolicy};
use nodeshare_engine::{run, run_with_telemetry, SimConfig, SimTelemetry, TelemetrySample};
use nodeshare_perf::{AppCatalog, CoRunTruth, ContentionModel, Predictor};
use nodeshare_workload::{Workload, WorkloadSpec};

fn fixture() -> (Workload, CoRunTruth, SimConfig) {
    let catalog = AppCatalog::trinity();
    let truth = CoRunTruth::build(&catalog, &ContentionModel::calibrated());
    let spec = WorkloadSpec {
        n_jobs: 120,
        ..WorkloadSpec::evaluation(&catalog, 11)
    };
    let workload = spec.generate(&catalog);
    // Default nodes (128 GiB): trinity apps need 18-32 GiB per node, so a
    // tiny-node cluster would reject every job at submission and the run
    // would exercise nothing.
    let mut config = SimConfig::new(ClusterSpec::new(16, NodeSpec::default()));
    config.audit = false;
    (workload, truth, config)
}

fn co_backfill(truth: &CoRunTruth) -> Backfill {
    let _ = truth;
    Backfill::co(Pairing::new(
        PairingPolicy::default_threshold(),
        Predictor::oracle(&AppCatalog::trinity(), &ContentionModel::calibrated()),
    ))
}

#[test]
fn telemetry_does_not_change_the_outcome() {
    let (w, truth, config) = fixture();
    let plain = run(&w, &truth, &mut Backfill::easy(), &config);
    let telemetry = SimTelemetry::new(300.0);
    let telemetered = run_with_telemetry(&w, &truth, &mut Backfill::easy(), &config, &telemetry);
    assert_eq!(plain.records, telemetered.records);
    assert_eq!(plain.end_time, telemetered.end_time);
    assert_eq!(plain.rejected, telemetered.rejected);
}

#[test]
fn jsonl_round_trips_and_conserves_node_counts() {
    let (w, truth, config) = fixture();
    let telemetry = SimTelemetry::new(300.0);
    let out = run_with_telemetry(&w, &truth, &mut Backfill::easy(), &config, &telemetry);
    assert!(out.complete());
    assert!(
        !out.records.is_empty(),
        "fixture must actually run jobs, not reject them all"
    );

    let jsonl = telemetry.jsonl();
    let samples: Vec<TelemetrySample> = jsonl
        .lines()
        .map(|l| TelemetrySample::parse(l).unwrap_or_else(|| panic!("unparseable line: {l}")))
        .collect();
    assert!(
        samples.len() >= 20,
        "expected a dense sample stream, got {}",
        samples.len()
    );
    assert_eq!(samples, telemetry.samples(), "jsonl mirrors the buffer");

    let cores_per_node = config.cluster.node.cores() as u64;
    let mut prev_t = f64::NEG_INFINITY;
    for s in &samples {
        assert!(s.t > prev_t, "timestamps must be strictly increasing");
        prev_t = s.t;
        assert_eq!(s.nodes_total, 16);
        assert_eq!(
            s.nodes_occupied + s.nodes_idle + s.nodes_unavailable,
            s.nodes_total,
            "node accounting must be conserved at t={}",
            s.t
        );
        assert_eq!(
            s.busy_cores,
            s.nodes_occupied * cores_per_node,
            "busy cores follow occupancy_snapshot semantics at t={}",
            s.t
        );
        assert!(s.nodes_shared <= s.nodes_occupied);
        assert!((0.0..=1.0).contains(&s.utilization));
        assert!(s.starts_exclusive + s.starts_shared <= s.decisions);
    }
    let last = samples.last().unwrap();
    assert_eq!(last.completed as usize, out.records.len());
    assert_eq!(last.t, out.end_time, "final sample lands at the end time");
}

#[test]
fn prometheus_exposition_has_all_core_families() {
    let (w, truth, config) = fixture();
    let telemetry = SimTelemetry::new(600.0);
    let out = run_with_telemetry(&w, &truth, &mut Backfill::easy(), &config, &telemetry);
    assert!(out.complete());

    let text = telemetry.prometheus();
    for family in [
        "# TYPE sched_decisions_total counter",
        "# TYPE sched_backfill_candidates_scanned_total counter",
        "# TYPE sched_backfill_scan_depth histogram",
        "# TYPE sim_queue_depth gauge",
        "# TYPE sim_nodes_occupied gauge",
        "# TYPE sim_jobs_started_total counter",
        "# TYPE sim_event_duration_seconds histogram",
        "# TYPE cluster_alloc_duration_seconds histogram",
    ] {
        assert!(text.contains(family), "missing `{family}` in:\n{text}");
    }
    assert!(text.contains("sim_strategy_info{strategy=\"easy-backfill\"} 1"));
    assert!(text.contains(&format!("sim_jobs_completed_total {}", out.records.len())));
    assert!(telemetry.sched.decisions.get() >= out.records.len() as u64);
    assert!(telemetry.registry.family_count() >= 20);
    assert!(
        telemetry.sched.head_started.get() + telemetry.sched.backfill_started.get()
            == telemetry.sched.decisions.get(),
        "every backfill decision is either a head start or a backfill"
    );
}

#[test]
fn pairing_counters_fire_for_sharing_policies() {
    let (w, truth, config) = fixture();
    let telemetry = SimTelemetry::new(600.0);
    let mut sched = co_backfill(&truth);
    let out = run_with_telemetry(&w, &truth, &mut sched, &config, &telemetry);
    assert!(out.complete());
    assert!(
        telemetry.sched.pairing_queries.get() > 0,
        "a sharing policy must exercise the pairing counters"
    );
    assert!(telemetry.sched.pairing_hits.get() <= telemetry.sched.pairing_queries.get());
    let rate = telemetry.sched.pairing_hit_rate();
    assert!((0.0..=1.0).contains(&rate));
    let shared_starts: usize = out.records.iter().filter(|r| r.shared_alloc).count();
    assert!(
        shared_starts > 0,
        "co-backfill should co-allocate something"
    );
    assert!(!telemetry.describe().is_empty());
}
