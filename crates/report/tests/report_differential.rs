//! Proofs that trace-derived reports tell the truth.
//!
//! * **Differential**: the wait/makespan/utilization numbers the report
//!   derives from a trace must equal what the engine's own records give
//!   [`nodeshare_metrics::CampaignMetrics`] — for every strategy in the
//!   lineup, on a real saturated workload.
//! * **Schema**: the Perfetto export must be valid trace-event JSON —
//!   time-sorted, every duration slice non-negative and on a named
//!   node-lane track, decision instants and counters well-formed.
//! * **Round-trip**: a report built from the JSON file form of a trace
//!   must be identical to one built from the live trace.

use nodeshare_cluster::ClusterSpec;
use nodeshare_core::StrategyConfig;
use nodeshare_engine::{run_traced, SimConfig};
use nodeshare_perf::{AppCatalog, CoRunTruth, ContentionModel};
use nodeshare_report::{JsonValue, Report, ReportOptions, TraceData};
use nodeshare_workload::{ArrivalProcess, Workload, WorkloadSpec};

fn saturated_workload(catalog: &AppCatalog, seed: u64, n_jobs: usize) -> Workload {
    let mut spec = WorkloadSpec::evaluation(catalog, seed);
    spec.n_jobs = n_jobs;
    spec.arrival = ArrivalProcess::Poisson { rate: 0.0080 };
    spec.generate(catalog)
}

/// Trace-derived aggregates equal the engine's record-derived metrics,
/// across the whole strategy lineup.
#[test]
fn report_aggregates_match_campaign_metrics() {
    let catalog = AppCatalog::trinity();
    let model = ContentionModel::calibrated();
    let matrix = CoRunTruth::build(&catalog, &model);
    let cluster = ClusterSpec::evaluation();
    let mut config = SimConfig::new(cluster);
    config.audit = false;

    let workload = saturated_workload(&catalog, 17, 70);
    for cfg in StrategyConfig::lineup() {
        let mut sched = cfg.build(&catalog, &model);
        let (out, trace) = run_traced(&workload, &matrix, sched.as_mut(), &config);
        assert!(out.complete(), "{}", cfg.label());
        let metrics = out.metrics(&cluster);

        let report = Report::from_trace(&trace, &ReportOptions::default());
        let a = &report.analysis;

        assert_eq!(
            a.finished().count(),
            out.records.len(),
            "{}: finished-job population must match the records",
            cfg.label()
        );
        assert_eq!(
            a.finished().filter(|s| s.killed).count(),
            metrics.killed,
            "{}",
            cfg.label()
        );
        assert_eq!(
            a.spans.iter().map(|s| u64::from(s.requeues)).sum::<u64>(),
            metrics.total_restarts,
            "{}",
            cfg.label()
        );

        // Wait statistics: same population, same definition (final
        // start − submit), so equality is exact, not approximate.
        let w = a.wait_summary();
        assert_eq!(w.n, metrics.wait.n, "{}", cfg.label());
        for (got, want, name) in [
            (w.mean, metrics.wait.mean, "mean"),
            (w.median, metrics.wait.median, "median"),
            (w.p95, metrics.wait.p95, "p95"),
            (w.min, metrics.wait.min, "min"),
            (w.max, metrics.wait.max, "max"),
        ] {
            assert!(
                (got - want).abs() <= 1e-9,
                "{}: wait {name} from trace {got} != records {want}",
                cfg.label()
            );
        }

        assert!(
            (a.makespan() - metrics.makespan).abs() <= 1e-9,
            "{}: makespan {} != {}",
            cfg.label(),
            a.makespan(),
            metrics.makespan
        );

        // Busy core-seconds: the trace's occupancy events integrated vs
        // the engine's own running integration. Same step function,
        // different summation order — allow float-accumulation noise.
        let busy = a.busy_core_seconds();
        assert!(
            (busy - out.busy_core_seconds).abs() <= 1e-6 * out.busy_core_seconds.max(1.0),
            "{}: busy core-seconds {busy} != {}",
            cfg.label(),
            out.busy_core_seconds
        );
        let util = a.utilization(cluster.total_cores());
        assert!(
            (util - metrics.utilization).abs() <= 1e-6,
            "{}: utilization {util} != {}",
            cfg.label(),
            metrics.utilization
        );

        // Sharing strategies show co-scheduled starts in the
        // attribution; exclusive baselines must not.
        let co_scheduled: usize = a
            .reason_counts()
            .iter()
            .filter(|(r, _)| r == "co-scheduled")
            .map(|(_, c)| *c)
            .sum();
        if trace.shared_start_count() == 0 {
            assert_eq!(co_scheduled, 0, "{}", cfg.label());
        }
        assert_eq!(
            a.shared_starts(),
            trace.shared_start_count(),
            "{}",
            cfg.label()
        );
    }
}

/// A report built from the serialized trace equals one built from the
/// live trace: the JSON writer/reader round-trips every number
/// bit-exactly (Rust float Display is shortest-round-trip).
#[test]
fn json_and_in_process_reports_are_identical() {
    let catalog = AppCatalog::trinity();
    let model = ContentionModel::calibrated();
    let matrix = CoRunTruth::build(&catalog, &model);
    let mut config = SimConfig::new(ClusterSpec::evaluation());
    config.audit = false;

    let workload = saturated_workload(&catalog, 5, 50);
    let cfg = &StrategyConfig::lineup()[0];
    let mut sched = cfg.build(&catalog, &model);
    let (_, trace) = run_traced(&workload, &matrix, sched.as_mut(), &config);

    let live = TraceData::from_trace(&trace);
    let parsed = TraceData::parse_json(&trace.to_json()).expect("trace JSON parses");
    assert_eq!(live, parsed);

    let opts = ReportOptions::default();
    let from_live = Report::build(&live, &opts);
    let from_json = Report::build(&parsed, &opts);
    assert_eq!(from_live.perfetto_json, from_json.perfetto_json);
    assert_eq!(from_live.markdown, from_json.markdown);
}

/// Structural validation of the Perfetto export on a real sharing run.
#[test]
fn perfetto_export_is_schema_valid() {
    let catalog = AppCatalog::trinity();
    let model = ContentionModel::calibrated();
    let matrix = CoRunTruth::build(&catalog, &model);
    let mut config = SimConfig::new(ClusterSpec::evaluation());
    config.audit = false;

    let workload = saturated_workload(&catalog, 29, 60);
    // Pick a sharing strategy so co-resident lanes actually appear.
    let cfg = StrategyConfig::lineup()
        .into_iter()
        .find(|c| c.kind.shares())
        .expect("lineup has a sharing strategy");
    let mut sched = cfg.build(&catalog, &model);
    let (_, trace) = run_traced(&workload, &matrix, sched.as_mut(), &config);
    assert!(
        trace.shared_start_count() > 0,
        "workload must exercise sharing"
    );

    let report = Report::from_trace(&trace, &ReportOptions::default());
    let doc = JsonValue::parse(&report.perfetto_json).expect("export is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("top-level traceEvents array");
    assert!(!events.is_empty());

    let mut last_ts = i64::MIN;
    let mut named_tracks = std::collections::BTreeSet::new();
    let mut slice_tracks = std::collections::BTreeSet::new();
    let mut slices = 0usize;
    let mut instants = 0usize;
    let mut counters = 0usize;

    for e in events {
        let ph = e.get("ph").and_then(JsonValue::as_str).expect("ph");
        assert!(e.get("pid").and_then(JsonValue::as_u64).is_some(), "pid");
        assert!(e.get("name").and_then(JsonValue::as_str).is_some(), "name");
        match ph {
            "M" => {
                // Metadata precedes all timed events.
                assert_eq!(last_ts, i64::MIN, "metadata must lead the file");
                if e.get("name").and_then(JsonValue::as_str) == Some("thread_name") {
                    named_tracks.insert(e.get("tid").and_then(JsonValue::as_u64).expect("tid"));
                }
            }
            ph => {
                let ts = e.get("ts").and_then(JsonValue::as_f64).expect("ts") as i64;
                assert!(ts >= last_ts.max(0), "timestamps must be sorted");
                last_ts = ts;
                match ph {
                    "X" => {
                        slices += 1;
                        let dur = e.get("dur").and_then(JsonValue::as_f64).expect("dur");
                        assert!(dur >= 0.0, "durations are non-negative");
                        let tid = e.get("tid").and_then(JsonValue::as_u64).expect("tid");
                        assert_ne!(tid, 0, "job slices live on node lanes, not tid 0");
                        slice_tracks.insert(tid);
                    }
                    "i" => {
                        instants += 1;
                        assert!(e.get("s").and_then(JsonValue::as_str).is_some(), "scope");
                    }
                    "C" => {
                        counters += 1;
                        assert!(
                            e.get("args")
                                .and_then(|a| a.get("value"))
                                .and_then(JsonValue::as_f64)
                                .is_some(),
                            "counter value"
                        );
                    }
                    other => panic!("unexpected phase {other:?}"),
                }
            }
        }
    }

    // Every job start becomes one decision instant; every (job, node)
    // pair becomes exactly one duration slice.
    let expected_slices: usize = trace
        .events()
        .iter()
        .filter_map(|e| match e {
            nodeshare_engine::TraceEvent::Started { nodes, .. } => Some(nodes.len()),
            _ => None,
        })
        .sum();
    assert_eq!(slices, expected_slices);
    assert!(instants >= trace.starts().count());
    assert!(counters > 0, "occupancy/queue-depth counters present");

    // Every track that carries a slice is named via thread_name
    // metadata, and co-residency produced at least one lane-1 track
    // (tid % 16 == 2 under the lane-tid scheme).
    for tid in &slice_tracks {
        assert!(
            named_tracks.contains(tid),
            "slice track {tid} has no thread_name metadata"
        );
    }
    assert!(
        slice_tracks.iter().any(|t| t % 16 == 2),
        "sharing run must stack a job on lane 1 of some node"
    );
}
