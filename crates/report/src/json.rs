//! A minimal JSON reader for trace files.
//!
//! The workspace's vendored `serde` stand-in provides derive markers
//! only — there is no `serde_json`. Trace files are written by
//! hand-rolled emitters ([`nodeshare_engine::DecisionTrace::to_json`]),
//! so this module supplies the matching hand-rolled reader: a small
//! recursive-descent parser over the JSON grammar, sufficient for the
//! analytics in this crate and for the exporter's own schema tests.

use std::collections::BTreeMap;

/// One parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Key order is not preserved (sorted map) — the
    /// consumers in this crate look fields up by name.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parses a complete JSON document.
    ///
    /// Trailing non-whitespace after the top-level value is an error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer, if this is a
    /// non-negative whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not produced by any
                            // writer in this workspace; map them to the
                            // replacement character rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

/// Escapes a string for embedding in JSON output (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = JsonValue::parse(
            r#"{"events":[{"type":"started","t":1.5,"nodes":[0,2],"ok":true,"x":null}]}"#,
        )
        .expect("parses");
        let events = v
            .get("events")
            .and_then(JsonValue::as_array)
            .expect("array");
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.get("type").and_then(JsonValue::as_str), Some("started"));
        assert_eq!(e.get("t").and_then(JsonValue::as_f64), Some(1.5));
        assert_eq!(e.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(e.get("x"), Some(&JsonValue::Null));
        let nodes = e.get("nodes").and_then(JsonValue::as_array).expect("array");
        assert_eq!(nodes[1].as_u64(), Some(2));
    }

    #[test]
    fn parses_numbers_and_escapes() {
        let v = JsonValue::parse(r#"[-1.25e2, 0, "a\"b\nA"]"#).expect("parses");
        let a = v.as_array().expect("array");
        assert_eq!(a[0].as_f64(), Some(-125.0));
        assert_eq!(a[1].as_u64(), Some(0));
        assert_eq!(a[2].as_str(), Some("a\"b\nA"));
        assert_eq!(a[0].as_u64(), None, "negative numbers are not u64");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{\"a\":1} extra").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "line\nwith \"quotes\" and \\slashes\\ and \tctrl";
        let doc = format!("\"{}\"", escape(original));
        let v = JsonValue::parse(&doc).expect("parses");
        assert_eq!(v.as_str(), Some(original));
    }
}
