//! Chrome/Perfetto trace-event export.
//!
//! Renders a decoded trace as the JSON object format both `chrome://
//! tracing` and <https://ui.perfetto.dev> accept: one process for the
//! cluster, one thread ("lane") track per concurrent resident slot of
//! each node, jobs as `X` duration slices, scheduler decisions and node
//! state changes as `i` instants on a dedicated decisions track, and
//! queue-depth / busy-core / shared-node `C` counters.
//!
//! Lane assignment replays the trace: when a job starts on a node it
//! takes the lowest free lane of that node, so exclusive runs occupy
//! lane 0 and co-scheduled partners stack on lane 1+ — the visual
//! counterpart of the paper's node-sharing argument. Lanes are created
//! on demand, so n-way stacking renders without any cluster-shape
//! input.
//!
//! Timestamps are simulation seconds scaled to integer microseconds
//! (the trace-event `ts` unit); events are emitted time-sorted as the
//! format requires.

use crate::json::escape;
use crate::model::{ReportEvent, TraceData};
use std::collections::BTreeMap;
use std::fmt::Write;

/// The synthetic pid under which all tracks are emitted.
const PID: u64 = 1;
/// The decisions track's tid; node lanes start above it.
const DECISIONS_TID: u64 = 0;
/// Tid stride per node: lane `l` of node `n` is tid `n*16 + l + 1`.
const LANE_STRIDE: u64 = 16;

fn lane_tid(node: u64, lane: usize) -> u64 {
    node * LANE_STRIDE + lane as u64 + 1
}

/// `(ts, seq, json)` triples the renderer accumulates before the final
/// time-sort; metadata sorts first via `ts = i64::MIN`.
type EventBuf = Vec<(i64, usize, String)>;
/// Appender over an [`EventBuf`] that stamps the insertion sequence.
type PushFn<'a> = dyn FnMut(&mut EventBuf, i64, String) + 'a;

struct OpenSlice {
    node: u64,
    lane: usize,
    start: f64,
    shared: bool,
    reason: String,
}

/// Converts sim-seconds to the trace-event integer microsecond unit.
fn micros(t: f64) -> i64 {
    (t * 1e6).round() as i64
}

/// Renders the Perfetto/Chrome trace-event JSON for a decoded trace.
pub fn render(data: &TraceData) -> String {
    let mut events: EventBuf = Vec::new();
    let mut seq = 0usize;
    let mut push = |events: &mut EventBuf, ts: i64, json: String| {
        events.push((ts, seq, json));
        seq += 1;
    };

    // Lane occupancy per node (job currently in each lane), and the
    // set of open slices per job (a job spans several nodes).
    let mut lanes: BTreeMap<u64, Vec<Option<u64>>> = BTreeMap::new();
    let mut open: BTreeMap<u64, Vec<OpenSlice>> = BTreeMap::new();
    let mut used_tids: BTreeMap<u64, String> = BTreeMap::new();
    used_tids.insert(DECISIONS_TID, "scheduler decisions".to_string());

    let end = data.end_time();

    let close_job = |events: &mut EventBuf,
                     lanes: &mut BTreeMap<u64, Vec<Option<u64>>>,
                     open: &mut BTreeMap<u64, Vec<OpenSlice>>,
                     push: &mut PushFn<'_>,
                     job: u64,
                     t: f64| {
        for slice in open.remove(&job).unwrap_or_default() {
            let ts = micros(slice.start);
            let dur = micros(t) - ts;
            push(
                events,
                ts,
                format!(
                    "{{\"name\":\"job {job}\",\"cat\":\"job\",\"ph\":\"X\",\"ts\":{ts},\
                         \"dur\":{dur},\"pid\":{PID},\"tid\":{},\"args\":{{\"job\":{job},\
                         \"mode\":\"{}\",\"reason\":\"{}\"}}}}",
                    lane_tid(slice.node, slice.lane),
                    if slice.shared { "shared" } else { "exclusive" },
                    escape(&slice.reason),
                ),
            );
            if let Some(node_lanes) = lanes.get_mut(&slice.node) {
                if node_lanes.get(slice.lane).copied().flatten() == Some(job) {
                    node_lanes[slice.lane] = None;
                }
            }
        }
    };

    for e in &data.events {
        match e {
            ReportEvent::Started {
                t,
                job,
                shared,
                nodes,
                reason,
                ..
            } => {
                let ts = micros(*t);
                push(
                    &mut events,
                    ts,
                    format!(
                        "{{\"name\":\"start job {job} ({})\",\"cat\":\"decision\",\"ph\":\"i\",\
                         \"ts\":{ts},\"pid\":{PID},\"tid\":{DECISIONS_TID},\"s\":\"t\"}}",
                        escape(reason),
                    ),
                );
                for &node in nodes {
                    let node_lanes = lanes.entry(node).or_default();
                    let lane = match node_lanes.iter().position(Option::is_none) {
                        Some(l) => {
                            node_lanes[l] = Some(*job);
                            l
                        }
                        None => {
                            node_lanes.push(Some(*job));
                            node_lanes.len() - 1
                        }
                    };
                    used_tids
                        .entry(lane_tid(node, lane))
                        .or_insert_with(|| format!("node {node} / lane {lane}"));
                    open.entry(*job).or_default().push(OpenSlice {
                        node,
                        lane,
                        start: *t,
                        shared: *shared,
                        reason: reason.clone(),
                    });
                }
            }
            ReportEvent::Reshape { t, job, to, .. } => {
                // Close the slices on the old node set and reopen on the
                // new one, so the track view shows the width change.
                let ts = micros(*t);
                push(
                    &mut events,
                    ts,
                    format!(
                        "{{\"name\":\"reshape job {job} to {} nodes\",\"cat\":\"decision\",\
                         \"ph\":\"i\",\"ts\":{ts},\"pid\":{PID},\"tid\":{DECISIONS_TID},\
                         \"s\":\"t\"}}",
                        to.len(),
                    ),
                );
                close_job(&mut events, &mut lanes, &mut open, &mut push, *job, *t);
                for &node in to {
                    let node_lanes = lanes.entry(node).or_default();
                    let lane = match node_lanes.iter().position(Option::is_none) {
                        Some(l) => {
                            node_lanes[l] = Some(*job);
                            l
                        }
                        None => {
                            node_lanes.push(Some(*job));
                            node_lanes.len() - 1
                        }
                    };
                    used_tids
                        .entry(lane_tid(node, lane))
                        .or_insert_with(|| format!("node {node} / lane {lane}"));
                    open.entry(*job).or_default().push(OpenSlice {
                        node,
                        lane,
                        start: *t,
                        shared: false,
                        reason: "reshape".to_string(),
                    });
                }
            }
            ReportEvent::Finished { t, job, .. } => {
                close_job(&mut events, &mut lanes, &mut open, &mut push, *job, *t);
            }
            ReportEvent::Requeued { t, job, .. } => {
                let ts = micros(*t);
                push(
                    &mut events,
                    ts,
                    format!(
                        "{{\"name\":\"requeue job {job}\",\"cat\":\"decision\",\"ph\":\"i\",\
                         \"ts\":{ts},\"pid\":{PID},\"tid\":{DECISIONS_TID},\"s\":\"t\"}}"
                    ),
                );
                close_job(&mut events, &mut lanes, &mut open, &mut push, *job, *t);
            }
            ReportEvent::NodeDown { t, node, cause } => {
                let ts = micros(*t);
                push(
                    &mut events,
                    ts,
                    format!(
                        "{{\"name\":\"node {node} down ({})\",\"cat\":\"node\",\"ph\":\"i\",\
                         \"ts\":{ts},\"pid\":{PID},\"tid\":{DECISIONS_TID},\"s\":\"t\"}}",
                        escape(cause),
                    ),
                );
            }
            ReportEvent::NodeUp { t, node } => {
                let ts = micros(*t);
                push(
                    &mut events,
                    ts,
                    format!(
                        "{{\"name\":\"node {node} up\",\"cat\":\"node\",\"ph\":\"i\",\
                         \"ts\":{ts},\"pid\":{PID},\"tid\":{DECISIONS_TID},\"s\":\"t\"}}"
                    ),
                );
            }
            ReportEvent::Occupancy {
                t,
                busy_cores,
                shared_nodes,
            } => {
                let ts = micros(*t);
                push(
                    &mut events,
                    ts,
                    format!(
                        "{{\"name\":\"busy_cores\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{PID},\
                         \"args\":{{\"value\":{busy_cores}}}}}"
                    ),
                );
                push(
                    &mut events,
                    ts,
                    format!(
                        "{{\"name\":\"shared_nodes\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{PID},\
                         \"args\":{{\"value\":{shared_nodes}}}}}"
                    ),
                );
            }
            ReportEvent::Submitted { .. } | ReportEvent::Rejected { .. } => {}
        }
    }

    // Queue-depth counter from the derived timeline (submissions and
    // rejections are folded there rather than emitted per event).
    let analysis = crate::analysis::Analysis::from_trace(data);
    for &(t, v) in analysis.queue_depth.points() {
        let ts = micros(t);
        push(
            &mut events,
            ts,
            format!(
                "{{\"name\":\"queue_depth\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{PID},\
                 \"args\":{{\"value\":{v}}}}}"
            ),
        );
    }

    // Jobs still running when the trace ends render to its edge.
    let still_open: Vec<u64> = open.keys().copied().collect();
    for job in still_open {
        close_job(&mut events, &mut lanes, &mut open, &mut push, job, end);
    }

    // Track metadata: process name plus one thread_name per used tid.
    push(
        &mut events,
        i64::MIN,
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\
             \"args\":{{\"name\":\"cluster\"}}}}"
        ),
    );
    for (tid, name) in &used_tids {
        push(
            &mut events,
            i64::MIN,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(name),
            ),
        );
        push(
            &mut events,
            i64::MIN,
            format!(
                "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\
                 \"args\":{{\"sort_index\":{tid}}}}}"
            ),
        );
    }

    events.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut out = String::with_capacity(events.len() * 96 + 32);
    out.push_str("{\"traceEvents\":[");
    for (i, (_, _, json)) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{json}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    fn trace() -> TraceData {
        TraceData::parse_json(
            r#"{"events":[
              {"type":"submitted","t":0,"job":1,"app":0,"nodes":1,"walltime":100,"share":true},
              {"type":"submitted","t":0,"job":2,"app":1,"nodes":1,"walltime":100,"share":true},
              {"type":"started","t":0,"job":1,"mode":"exclusive","nodes":[0],
               "reason":"head-of-queue","idle_before":2,"partners":[]},
              {"type":"occupancy","t":0,"busy_cores":4,"shared_nodes":0},
              {"type":"started","t":1,"job":2,"mode":"shared","nodes":[0],
               "reason":"co-scheduled","idle_before":1,"partners":[{"node":0,"job":1}]},
              {"type":"occupancy","t":1,"busy_cores":4,"shared_nodes":1},
              {"type":"finished","t":10,"job":1,"killed":false},
              {"type":"finished","t":20,"job":2,"killed":false}
            ]}"#,
        )
        .expect("valid trace")
    }

    #[test]
    fn co_resident_jobs_land_on_distinct_lanes() {
        let doc = JsonValue::parse(&render(&trace())).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents");
        let slices: Vec<&JsonValue> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .collect();
        assert_eq!(slices.len(), 2);
        let tids: Vec<u64> = slices
            .iter()
            .map(|s| s.get("tid").and_then(JsonValue::as_u64).expect("tid"))
            .collect();
        assert_ne!(tids[0], tids[1], "partners must stack on separate lanes");
        // Job 1: lane 0 of node 0; job 2 co-resident: lane 1.
        assert_eq!(tids, vec![lane_tid(0, 0), lane_tid(0, 1)]);
        let durs: Vec<f64> = slices
            .iter()
            .map(|s| s.get("dur").and_then(JsonValue::as_f64).expect("dur"))
            .collect();
        assert_eq!(durs, vec![10e6, 19e6]);
    }

    #[test]
    fn lanes_are_reused_after_release() {
        let data = TraceData::parse_json(
            r#"{"events":[
              {"type":"started","t":0,"job":1,"mode":"exclusive","nodes":[0],
               "reason":"head-of-queue","idle_before":1,"partners":[]},
              {"type":"finished","t":5,"job":1,"killed":false},
              {"type":"started","t":6,"job":2,"mode":"exclusive","nodes":[0],
               "reason":"head-of-queue","idle_before":1,"partners":[]},
              {"type":"finished","t":9,"job":2,"killed":false}
            ]}"#,
        )
        .expect("valid trace");
        let doc = JsonValue::parse(&render(&data)).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents");
        let tids: Vec<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .map(|s| s.get("tid").and_then(JsonValue::as_u64).expect("tid"))
            .collect();
        assert_eq!(tids, vec![lane_tid(0, 0), lane_tid(0, 0)]);
    }

    #[test]
    fn unfinished_jobs_extend_to_trace_end() {
        let data = TraceData::parse_json(
            r#"{"events":[
              {"type":"started","t":0,"job":1,"mode":"exclusive","nodes":[0],
               "reason":"head-of-queue","idle_before":1,"partners":[]},
              {"type":"occupancy","t":30,"busy_cores":4,"shared_nodes":0}
            ]}"#,
        )
        .expect("valid trace");
        let doc = JsonValue::parse(&render(&data)).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents");
        let slice = events
            .iter()
            .find(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .expect("one slice");
        assert_eq!(slice.get("dur").and_then(JsonValue::as_f64), Some(30e6));
    }
}
