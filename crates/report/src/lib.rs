#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! # nodeshare-report
//!
//! Trace analytics and reporting: turns a [`nodeshare_engine::DecisionTrace`]
//! (live, or its JSON form from disk) into first-class observability
//! artifacts —
//!
//! * [`model`] — the decoded event list ([`TraceData`]), buildable from
//!   an in-process trace or parsed back from `DecisionTrace::to_json`
//!   output;
//! * [`analysis`] — per-job lifecycle spans and exact step-function
//!   timelines ([`Analysis`]), with aggregates defined identically to
//!   [`nodeshare_metrics::CampaignMetrics`] (the differential suite
//!   proves them equal);
//! * [`perfetto`] — Chrome/Perfetto trace-event JSON export (node-lane
//!   tracks, decision instants, occupancy counters) for
//!   <https://ui.perfetto.dev>;
//! * [`summary`] — a markdown run report;
//! * [`json`] — the minimal hand-rolled JSON reader the above share
//!   (the vendored `serde` stand-in provides no parser).
//!
//! The `nodeshare report <trace.json>` CLI subcommand and the campaign
//! orchestrator's per-cell reports are thin wrappers over
//! [`Report::from_json`] / [`Report::from_trace`].

pub mod analysis;
pub mod json;
pub mod model;
pub mod perfetto;
pub mod summary;

pub use analysis::{Analysis, JobSpan, StartRecord};
pub use json::JsonValue;
pub use model::{ReportEvent, TraceData};
pub use summary::ReportOptions;

/// A fully derived report: analysis plus both export formats.
#[derive(Clone, Debug)]
pub struct Report {
    /// The derived analytics.
    pub analysis: Analysis,
    /// Perfetto/Chrome trace-event JSON.
    pub perfetto_json: String,
    /// Markdown run summary.
    pub markdown: String,
}

impl Report {
    /// Builds the report from a decoded trace.
    pub fn build(data: &TraceData, opts: &ReportOptions) -> Report {
        let analysis = Analysis::from_trace(data);
        let perfetto_json = perfetto::render(data);
        let markdown = summary::render_markdown(&analysis, opts);
        Report {
            analysis,
            perfetto_json,
            markdown,
        }
    }

    /// Builds the report from a live in-process trace.
    pub fn from_trace(trace: &nodeshare_engine::DecisionTrace, opts: &ReportOptions) -> Report {
        Report::build(&TraceData::from_trace(trace), opts)
    }

    /// Builds the report from trace JSON
    /// (`nodeshare audit --trace` / campaign `trace.json` output).
    pub fn from_json(text: &str, opts: &ReportOptions) -> Result<Report, String> {
        Ok(Report::build(&TraceData::parse_json(text)?, opts))
    }
}
