//! Derived analytics over a decoded trace.
//!
//! [`Analysis::from_trace`] folds the flat event list into per-job
//! lifecycle spans (submit → start(s) → finish, with queue-wait and the
//! policy's start-reason attribution) and exact step-function timelines
//! (busy cores, shared nodes, queue depth). The aggregate accessors
//! mirror [`nodeshare_metrics::CampaignMetrics`] definitions — the
//! differential suite proves the trace-derived numbers against the
//! engine's own records, so a report built from a JSON file on disk can
//! be trusted like one built in-process.

use crate::model::{ReportEvent, TraceData};
use nodeshare_metrics::{percentile_sorted, StepSeries, Summary};
use std::collections::BTreeMap;

/// One start decision within a job's lifecycle.
#[derive(Clone, Debug, PartialEq)]
pub struct StartRecord {
    /// Start time.
    pub t: f64,
    /// True for a shared-mode allocation.
    pub shared: bool,
    /// Policy justification label (`head-of-queue`, `backfilled`,
    /// `co-scheduled`, `unspecified`).
    pub reason: String,
    /// Granted nodes.
    pub nodes: Vec<u64>,
}

/// A job's full lifecycle, reconstructed from the trace.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpan {
    /// Job id.
    pub job: u64,
    /// Application id.
    pub app: u64,
    /// Requested node count.
    pub nodes_requested: u32,
    /// Submission time.
    pub submit: f64,
    /// True when rejected at submission as unsatisfiable.
    pub rejected: bool,
    /// Every start, in order — more than one after failure requeues.
    pub starts: Vec<StartRecord>,
    /// Finish time, when the job completed.
    pub finish: Option<f64>,
    /// True when the engine killed it at the walltime bound.
    pub killed: bool,
    /// Node-failure evictions suffered.
    pub requeues: u32,
    /// Width reshapes applied while running (malleable jobs only).
    pub reshapes: u32,
}

impl JobSpan {
    /// Queue wait: final start − submit (matching
    /// [`nodeshare_metrics::JobRecord::wait`], where restarts reset the
    /// clock). `None` until the job starts.
    pub fn wait(&self) -> Option<f64> {
        self.starts.last().map(|s| s.t - self.submit)
    }

    /// Wall time of the final (successful) run attempt.
    pub fn run(&self) -> Option<f64> {
        match (self.starts.last(), self.finish) {
            (Some(s), Some(f)) => Some(f - s.t),
            _ => None,
        }
    }

    /// True when the job ran to completion (including walltime kills).
    pub fn finished(&self) -> bool {
        self.finish.is_some()
    }
}

/// Everything the reporters need, derived from one trace.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Per-job lifecycle spans, in job-id order.
    pub spans: Vec<JobSpan>,
    /// Busy physical cores over time (from the engine's occupancy
    /// events).
    pub busy_cores: StepSeries,
    /// Nodes hosting two or more jobs, over time.
    pub shared_nodes: StepSeries,
    /// Waiting-job count over time (submissions enter, rejections and
    /// starts leave, failure requeues re-enter).
    pub queue_depth: StepSeries,
    /// Time of the last trace event.
    pub end_time: f64,
}

impl Analysis {
    /// Folds a decoded trace into spans and timelines.
    pub fn from_trace(data: &TraceData) -> Analysis {
        let mut spans: BTreeMap<u64, JobSpan> = BTreeMap::new();
        let mut busy_cores = StepSeries::new();
        let mut shared_nodes = StepSeries::new();
        let mut queue_depth = StepSeries::new();
        let mut depth: i64 = 0;

        fn span(spans: &mut BTreeMap<u64, JobSpan>, job: u64, t: f64) -> &mut JobSpan {
            spans.entry(job).or_insert_with(|| JobSpan {
                job,
                app: 0,
                nodes_requested: 0,
                submit: t,
                rejected: false,
                starts: Vec::new(),
                finish: None,
                killed: false,
                requeues: 0,
                reshapes: 0,
            })
        }

        for e in &data.events {
            match e {
                ReportEvent::Submitted {
                    t,
                    job,
                    app,
                    nodes,
                    walltime: _,
                    share: _,
                    malleable: _,
                } => {
                    let s = span(&mut spans, *job, *t);
                    s.submit = *t;
                    s.app = *app;
                    s.nodes_requested = *nodes;
                    depth += 1;
                    queue_depth.record(*t, depth as f64);
                }
                ReportEvent::Rejected { t, job } => {
                    span(&mut spans, *job, *t).rejected = true;
                    depth -= 1;
                    queue_depth.record(*t, depth as f64);
                }
                ReportEvent::Started {
                    t,
                    job,
                    shared,
                    nodes,
                    reason,
                    idle_before: _,
                    partners: _,
                } => {
                    span(&mut spans, *job, *t).starts.push(StartRecord {
                        t: *t,
                        shared: *shared,
                        reason: reason.clone(),
                        nodes: nodes.clone(),
                    });
                    depth -= 1;
                    queue_depth.record(*t, depth as f64);
                }
                ReportEvent::Finished { t, job, killed } => {
                    let s = span(&mut spans, *job, *t);
                    s.finish = Some(*t);
                    s.killed = *killed;
                }
                ReportEvent::Requeued { t, job, node: _ } => {
                    span(&mut spans, *job, *t).requeues += 1;
                    depth += 1;
                    queue_depth.record(*t, depth as f64);
                }
                ReportEvent::Reshape { t, job, .. } => {
                    span(&mut spans, *job, *t).reshapes += 1;
                }
                ReportEvent::Occupancy {
                    t,
                    busy_cores: bc,
                    shared_nodes: sn,
                } => {
                    busy_cores.record(*t, *bc as f64);
                    shared_nodes.record(*t, *sn as f64);
                }
                ReportEvent::NodeDown { .. } | ReportEvent::NodeUp { .. } => {}
            }
        }

        Analysis {
            spans: spans.into_values().collect(),
            busy_cores,
            shared_nodes,
            queue_depth,
            end_time: data.end_time(),
        }
    }

    /// Spans of jobs that ran to completion (the population
    /// [`nodeshare_metrics::CampaignMetrics`] builds its records from).
    pub fn finished(&self) -> impl Iterator<Item = &JobSpan> {
        self.spans.iter().filter(|s| s.finished())
    }

    /// Campaign makespan: last finish − first submit, over finished jobs
    /// (0 when none finished).
    pub fn makespan(&self) -> f64 {
        let mut first_submit = f64::INFINITY;
        let mut last_finish = f64::NEG_INFINITY;
        for s in self.finished() {
            first_submit = first_submit.min(s.submit);
            // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
            last_finish = last_finish.max(s.finish.expect("finished"));
        }
        if last_finish.is_finite() {
            last_finish - first_submit
        } else {
            0.0
        }
    }

    /// Integrated busy core-seconds (exact step integration of the
    /// trace's occupancy events over the whole run).
    pub fn busy_core_seconds(&self) -> f64 {
        self.busy_cores.integral(0.0, self.end_time)
    }

    /// Mean core utilization over the makespan, given the machine's
    /// core count — the trace does not record cluster size, so the
    /// caller supplies it (or skips utilization in reports).
    pub fn utilization(&self, total_cores: u64) -> f64 {
        let denom = self.makespan() * total_cores as f64;
        if denom > 0.0 {
            self.busy_core_seconds() / denom
        } else {
            0.0
        }
    }

    /// Queue waits of finished jobs, ascending.
    pub fn sorted_waits(&self) -> Vec<f64> {
        let mut waits: Vec<f64> = self.finished().filter_map(JobSpan::wait).collect();
        waits.sort_by(f64::total_cmp);
        waits
    }

    /// Queue-wait summary over finished jobs — same population and
    /// definition as `CampaignMetrics::wait`.
    pub fn wait_summary(&self) -> Summary {
        Summary::of(&self.sorted_waits())
    }

    /// A wait-time percentile (0 when no job finished).
    pub fn wait_percentile(&self, q: f64) -> f64 {
        let waits = self.sorted_waits();
        if waits.is_empty() {
            0.0
        } else {
            percentile_sorted(&waits, q)
        }
    }

    /// Start counts per policy justification label, label-sorted.
    pub fn reason_counts(&self) -> Vec<(String, usize)> {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for s in &self.spans {
            for st in &s.starts {
                *counts.entry(st.reason.as_str()).or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect()
    }

    /// Fraction of starts the policy justified as backfill.
    pub fn backfill_share(&self) -> f64 {
        let total: usize = self.spans.iter().map(|s| s.starts.len()).sum();
        if total == 0 {
            return 0.0;
        }
        let backfilled: usize = self
            .spans
            .iter()
            .flat_map(|s| &s.starts)
            .filter(|st| st.reason == "backfilled")
            .count();
        backfilled as f64 / total as f64
    }

    /// Number of shared-mode starts.
    pub fn shared_starts(&self) -> usize {
        self.spans
            .iter()
            .flat_map(|s| &s.starts)
            .filter(|st| st.shared)
            .count()
    }

    /// Mean slowdown of the final run attempt relative to the user's
    /// walltime estimate is not derivable from the trace (true exclusive
    /// runtimes are not recorded), but sharing-induced *run-length*
    /// contrast is: mean run seconds of shared-start jobs over mean run
    /// seconds of exclusive-start jobs (`None` when either side is
    /// empty).
    pub fn shared_run_ratio(&self) -> Option<f64> {
        let mut shared = Vec::new();
        let mut exclusive = Vec::new();
        for s in self.finished() {
            if let (Some(run), Some(last)) = (s.run(), s.starts.last()) {
                if last.shared {
                    shared.push(run);
                } else {
                    exclusive.push(run);
                }
            }
        }
        if shared.is_empty() || exclusive.is_empty() {
            return None;
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        Some(mean(&shared) / mean(&exclusive))
    }

    /// Time-weighted mean queue depth over the run (0 for empty traces).
    pub fn mean_queue_depth(&self) -> f64 {
        if self.end_time > 0.0 {
            self.queue_depth.integral(0.0, self.end_time) / self.end_time
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TraceData;

    fn trace() -> TraceData {
        TraceData::parse_json(
            r#"{"events":[
              {"type":"submitted","t":0,"job":1,"app":0,"nodes":1,"walltime":100,"share":true},
              {"type":"submitted","t":1,"job":2,"app":1,"nodes":2,"walltime":100,"share":true},
              {"type":"submitted","t":2,"job":3,"app":0,"nodes":9,"walltime":100,"share":false},
              {"type":"rejected","t":2,"job":3},
              {"type":"started","t":2,"job":1,"mode":"exclusive","nodes":[0],
               "reason":"head-of-queue","idle_before":2,"partners":[]},
              {"type":"occupancy","t":2,"busy_cores":4,"shared_nodes":0},
              {"type":"started","t":3,"job":2,"mode":"shared","nodes":[0,1],
               "reason":"co-scheduled","idle_before":1,"partners":[{"node":0,"job":1}]},
              {"type":"occupancy","t":3,"busy_cores":12,"shared_nodes":1},
              {"type":"finished","t":10,"job":1,"killed":false},
              {"type":"occupancy","t":10,"busy_cores":8,"shared_nodes":0},
              {"type":"finished","t":20,"job":2,"killed":false},
              {"type":"occupancy","t":20,"busy_cores":0,"shared_nodes":0}
            ]}"#,
        )
        .expect("valid trace")
    }

    #[test]
    fn spans_capture_lifecycles() {
        let a = Analysis::from_trace(&trace());
        assert_eq!(a.spans.len(), 3);
        let j1 = &a.spans[0];
        assert_eq!(j1.job, 1);
        assert_eq!(j1.wait(), Some(2.0));
        assert_eq!(j1.run(), Some(8.0));
        assert!(!j1.starts[0].shared);
        let j3 = &a.spans[2];
        assert!(j3.rejected);
        assert!(j3.starts.is_empty());
        assert_eq!(a.finished().count(), 2);
    }

    #[test]
    fn aggregates_match_hand_computation() {
        let a = Analysis::from_trace(&trace());
        // Makespan: first submit of finished jobs (0) → last finish (20).
        assert_eq!(a.makespan(), 20.0);
        // Busy: 4×1 + 12×7 + 8×10 = 168 core-seconds.
        assert!((a.busy_core_seconds() - 168.0).abs() < 1e-9);
        assert!((a.utilization(16) - 168.0 / (20.0 * 16.0)).abs() < 1e-12);
        // Waits 2 and 2 → all percentiles 2.
        assert_eq!(a.wait_percentile(0.5), 2.0);
        assert_eq!(a.wait_summary().n, 2);
        assert_eq!(a.shared_starts(), 1);
        assert_eq!(
            a.reason_counts(),
            vec![
                ("co-scheduled".to_string(), 1),
                ("head-of-queue".to_string(), 1)
            ]
        );
        assert_eq!(a.backfill_share(), 0.0);
        // Shared job ran 17 s, exclusive 8 s.
        let ratio = a.shared_run_ratio().expect("both modes present");
        assert!((ratio - 17.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn queue_depth_tracks_submissions_starts_and_rejects() {
        let a = Analysis::from_trace(&trace());
        assert_eq!(a.queue_depth.value_at(0.0), 1.0);
        assert_eq!(a.queue_depth.value_at(1.0), 2.0);
        // t=2: submit(+1) reject(−1) start(−1) → 1.
        assert_eq!(a.queue_depth.value_at(2.0), 1.0);
        assert_eq!(a.queue_depth.value_at(3.0), 0.0);
        assert!(a.mean_queue_depth() > 0.0);
    }

    #[test]
    fn requeues_reset_the_wait_clock() {
        let a = Analysis::from_trace(
            &TraceData::parse_json(
                r#"{"events":[
                  {"type":"submitted","t":0,"job":1,"app":0,"nodes":1,"walltime":50,"share":false},
                  {"type":"started","t":0,"job":1,"mode":"exclusive","nodes":[0],
                   "reason":"head-of-queue","idle_before":1,"partners":[]},
                  {"type":"node_down","t":5,"node":0,"cause":"failed"},
                  {"type":"requeued","t":5,"job":1,"node":0},
                  {"type":"node_up","t":8,"node":0},
                  {"type":"started","t":8,"job":1,"mode":"exclusive","nodes":[0],
                   "reason":"head-of-queue","idle_before":1,"partners":[]},
                  {"type":"finished","t":18,"job":1,"killed":false}
                ]}"#,
            )
            .expect("valid trace"),
        );
        let j = &a.spans[0];
        assert_eq!(j.requeues, 1);
        assert_eq!(j.starts.len(), 2);
        // Wait is measured to the FINAL start, like JobRecord::wait.
        assert_eq!(j.wait(), Some(8.0));
        assert_eq!(j.run(), Some(10.0));
    }

    #[test]
    fn empty_trace_yields_zeroes() {
        let a = Analysis::from_trace(&TraceData::default());
        assert_eq!(a.makespan(), 0.0);
        assert_eq!(a.busy_core_seconds(), 0.0);
        assert_eq!(a.utilization(16), 0.0);
        assert_eq!(a.wait_percentile(0.99), 0.0);
        assert_eq!(a.mean_queue_depth(), 0.0);
        assert_eq!(a.shared_run_ratio(), None);
    }
}
