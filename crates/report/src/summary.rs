//! Markdown run summaries.
//!
//! Renders an [`Analysis`] as a compact, human-first markdown report:
//! job population, wait-time percentiles, start-reason attribution
//! (head-of-queue vs backfill vs co-scheduling), sharing effects, and
//! machine utilization when the caller knows the cluster's core count
//! (the trace itself does not record cluster shape).

use crate::analysis::Analysis;
use std::fmt::Write;

/// Optional context the trace alone cannot provide.
#[derive(Clone, Debug, Default)]
pub struct ReportOptions {
    /// Report heading (defaults to "nodeshare run report").
    pub title: Option<String>,
    /// Total physical cores of the simulated machine, enabling the
    /// utilization line.
    pub total_cores: Option<u64>,
}

fn fmt_secs(s: f64) -> String {
    if s >= 3600.0 {
        format!("{:.2} h", s / 3600.0)
    } else if s >= 60.0 {
        format!("{:.1} min", s / 60.0)
    } else {
        format!("{s:.1} s")
    }
}

/// Renders the markdown report.
pub fn render_markdown(analysis: &Analysis, opts: &ReportOptions) -> String {
    let mut out = String::new();
    let title = opts.title.as_deref().unwrap_or("nodeshare run report");
    let _ = writeln!(out, "# {title}\n");

    let submitted = analysis.spans.len();
    let rejected = analysis.spans.iter().filter(|s| s.rejected).count();
    let finished = analysis.finished().count();
    let killed = analysis.finished().filter(|s| s.killed).count();
    let requeues: u32 = analysis.spans.iter().map(|s| s.requeues).sum();

    let _ = writeln!(out, "## Jobs\n");
    let _ = writeln!(
        out,
        "| submitted | finished | killed | rejected | failure requeues |"
    );
    let _ = writeln!(out, "|---:|---:|---:|---:|---:|");
    let _ = writeln!(
        out,
        "| {submitted} | {finished} | {killed} | {rejected} | {requeues} |\n"
    );

    let _ = writeln!(out, "## Machine\n");
    let _ = writeln!(out, "- makespan: {}", fmt_secs(analysis.makespan()));
    let _ = writeln!(
        out,
        "- busy core-seconds: {:.0}",
        analysis.busy_core_seconds()
    );
    if let Some(cores) = opts.total_cores {
        let _ = writeln!(
            out,
            "- utilization over makespan ({cores} cores): {:.1}%",
            analysis.utilization(cores) * 100.0
        );
    }
    let _ = writeln!(
        out,
        "- peak shared nodes: {:.0}",
        analysis.shared_nodes.max_value()
    );
    let _ = writeln!(
        out,
        "- queue depth: mean {:.2}, peak {:.0}\n",
        analysis.mean_queue_depth(),
        analysis.queue_depth.max_value()
    );

    let _ = writeln!(out, "## Queue waits (finished jobs)\n");
    if finished == 0 {
        let _ = writeln!(out, "No job finished; no wait statistics.\n");
    } else {
        let w = analysis.wait_summary();
        let _ = writeln!(out, "| n | mean | p50 | p95 | p99 | max |");
        let _ = writeln!(out, "|---:|---:|---:|---:|---:|---:|");
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} |\n",
            w.n,
            fmt_secs(w.mean),
            fmt_secs(analysis.wait_percentile(0.50)),
            fmt_secs(analysis.wait_percentile(0.95)),
            fmt_secs(analysis.wait_percentile(0.99)),
            fmt_secs(w.max),
        );
    }

    let _ = writeln!(out, "## Start attribution\n");
    let reasons = analysis.reason_counts();
    if reasons.is_empty() {
        let _ = writeln!(out, "No start decisions recorded.\n");
    } else {
        let total: usize = reasons.iter().map(|(_, c)| c).sum();
        let _ = writeln!(out, "| reason | starts | share |");
        let _ = writeln!(out, "|---|---:|---:|");
        for (reason, count) in &reasons {
            let _ = writeln!(
                out,
                "| {reason} | {count} | {:.1}% |",
                *count as f64 * 100.0 / total as f64
            );
        }
        let _ = writeln!(
            out,
            "\nBackfill share: {:.1}% of all starts.\n",
            analysis.backfill_share() * 100.0
        );
    }

    let _ = writeln!(out, "## Sharing\n");
    let _ = writeln!(out, "- shared-mode starts: {}", analysis.shared_starts());
    match analysis.shared_run_ratio() {
        Some(r) => {
            let _ = writeln!(
                out,
                "- mean run length, shared vs exclusive starts: {r:.2}x \
                 (co-run slowdown shows up here as > 1.0 for comparable jobs)"
            );
        }
        None => {
            let _ = writeln!(
                out,
                "- mean run length, shared vs exclusive starts: n/a \
                 (need finished jobs in both modes)"
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TraceData;

    fn analysis() -> Analysis {
        Analysis::from_trace(
            &TraceData::parse_json(
                r#"{"events":[
                  {"type":"submitted","t":0,"job":1,"app":0,"nodes":1,"walltime":100,"share":true},
                  {"type":"started","t":2,"job":1,"mode":"exclusive","nodes":[0],
                   "reason":"head-of-queue","idle_before":2,"partners":[]},
                  {"type":"occupancy","t":2,"busy_cores":4,"shared_nodes":0},
                  {"type":"finished","t":10,"job":1,"killed":false},
                  {"type":"occupancy","t":10,"busy_cores":0,"shared_nodes":0}
                ]}"#,
            )
            .expect("valid trace"),
        )
    }

    #[test]
    fn report_includes_all_sections() {
        let md = render_markdown(&analysis(), &ReportOptions::default());
        for needle in [
            "# nodeshare run report",
            "## Jobs",
            "## Machine",
            "## Queue waits",
            "## Start attribution",
            "## Sharing",
            "head-of-queue",
        ] {
            assert!(md.contains(needle), "missing {needle:?} in:\n{md}");
        }
        // No cores given: no utilization line.
        assert!(!md.contains("utilization over makespan"));
    }

    #[test]
    fn options_add_title_and_utilization() {
        let md = render_markdown(
            &analysis(),
            &ReportOptions {
                title: Some("cell fcfs/saturated".to_string()),
                total_cores: Some(4),
            },
        );
        assert!(md.starts_with("# cell fcfs/saturated"));
        // 32 busy core-seconds over makespan 10 s × 4 cores = 80%.
        assert!(
            md.contains("utilization over makespan (4 cores): 80.0%"),
            "{md}"
        );
    }

    #[test]
    fn empty_analysis_renders_placeholders() {
        let md = render_markdown(
            &Analysis::from_trace(&TraceData::default()),
            &ReportOptions::default(),
        );
        assert!(md.contains("No job finished"));
        assert!(md.contains("No start decisions recorded"));
    }
}
