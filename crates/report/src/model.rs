//! The exporter's view of a decision trace.
//!
//! [`TraceData`] is a flat, time-ordered event list with plain field
//! types — the common denominator between the two ways a trace reaches
//! the reporter: in-process (a live [`nodeshare_engine::DecisionTrace`]
//! from `run_traced`) and from disk (the JSON written by
//! `nodeshare audit --trace` / the campaign orchestrator). Both feed the
//! same [`crate::analysis`] and exporters, so reports are identical
//! whichever road the trace took.

use crate::json::JsonValue;
use nodeshare_cluster::ShareMode;
use nodeshare_engine::{DecisionTrace, DownCause, TraceEvent};

/// One trace event, decoded to plain types.
#[derive(Clone, Debug, PartialEq)]
pub enum ReportEvent {
    /// A job entered the queue.
    Submitted {
        /// Event time (sim seconds).
        t: f64,
        /// Job id.
        job: u64,
        /// Application id.
        app: u64,
        /// Requested node count.
        nodes: u32,
        /// User walltime estimate.
        walltime: f64,
        /// Whether the job opted into sharing.
        share: bool,
        /// Width-malleability contract as `(min, max, cost)`; `None` for
        /// rigid jobs (the writer omits the field entirely for them).
        malleable: Option<(u32, u32, f64)>,
    },
    /// A job was rejected at submission as unsatisfiable.
    Rejected {
        /// Event time.
        t: f64,
        /// Job id.
        job: u64,
    },
    /// A queued job started on a set of nodes.
    Started {
        /// Event time.
        t: f64,
        /// Job id.
        job: u64,
        /// True for shared-mode allocation.
        shared: bool,
        /// Granted nodes, in grant order.
        nodes: Vec<u64>,
        /// The policy's justification label
        /// (`head-of-queue` / `backfilled` / `co-scheduled` / `unspecified`).
        reason: String,
        /// Up-and-idle node count immediately before the grant.
        idle_before: u64,
        /// Co-residents after the grant, as `(node, partner)` pairs.
        partners: Vec<(u64, u64)>,
    },
    /// A running malleable job moved to a new node set.
    Reshape {
        /// Event time.
        t: f64,
        /// Job id.
        job: u64,
        /// Nodes held before the reshape.
        from: Vec<u64>,
        /// Complete node set after the reshape.
        to: Vec<u64>,
        /// Reshape cost charged, node-seconds.
        cost: f64,
    },
    /// A running job terminated.
    Finished {
        /// Event time.
        t: f64,
        /// Job id.
        job: u64,
        /// True when killed at the walltime bound.
        killed: bool,
    },
    /// A running job was evicted by a node failure and requeued.
    Requeued {
        /// Event time.
        t: f64,
        /// Job id.
        job: u64,
        /// The failed node.
        node: u64,
    },
    /// A node left service.
    NodeDown {
        /// Event time.
        t: f64,
        /// Node id.
        node: u64,
        /// `failed` or `drained`.
        cause: String,
    },
    /// A node returned to service.
    NodeUp {
        /// Event time.
        t: f64,
        /// Node id.
        node: u64,
    },
    /// Cluster occupancy after an allocation change.
    Occupancy {
        /// Event time.
        t: f64,
        /// Physical cores busy, cluster-wide.
        busy_cores: u64,
        /// Nodes hosting two or more jobs.
        shared_nodes: u64,
    },
}

impl ReportEvent {
    /// The event's timestamp.
    pub fn time(&self) -> f64 {
        match self {
            ReportEvent::Submitted { t, .. }
            | ReportEvent::Rejected { t, .. }
            | ReportEvent::Started { t, .. }
            | ReportEvent::Reshape { t, .. }
            | ReportEvent::Finished { t, .. }
            | ReportEvent::Requeued { t, .. }
            | ReportEvent::NodeDown { t, .. }
            | ReportEvent::NodeUp { t, .. }
            | ReportEvent::Occupancy { t, .. } => *t,
        }
    }
}

/// A decoded trace, ready for analysis and export.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceData {
    /// Events in simulation order.
    pub events: Vec<ReportEvent>,
}

impl TraceData {
    /// Decodes a live in-process trace.
    pub fn from_trace(trace: &DecisionTrace) -> TraceData {
        let events = trace
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::Submitted {
                    time,
                    job,
                    app,
                    nodes,
                    walltime_estimate,
                    share_eligible,
                    malleable,
                } => ReportEvent::Submitted {
                    t: *time,
                    job: job.0,
                    app: u64::from(app.0),
                    nodes: *nodes,
                    walltime: *walltime_estimate,
                    share: *share_eligible,
                    malleable: (!malleable.is_rigid()).then(|| {
                        (
                            malleable.min_nodes,
                            malleable.max_nodes,
                            f64::from(malleable.reshape_cost),
                        )
                    }),
                },
                TraceEvent::Rejected { time, job } => ReportEvent::Rejected {
                    t: *time,
                    job: job.0,
                },
                TraceEvent::Started {
                    time,
                    job,
                    mode,
                    nodes,
                    reason,
                    idle_before,
                    head_waiting: _,
                    partners,
                } => ReportEvent::Started {
                    t: *time,
                    job: job.0,
                    shared: *mode == ShareMode::Shared,
                    nodes: nodes.iter().map(|n| u64::from(n.0)).collect(),
                    reason: reason.label().to_string(),
                    idle_before: *idle_before as u64,
                    partners: partners
                        .iter()
                        .map(|(n, j)| (u64::from(n.0), j.0))
                        .collect(),
                },
                TraceEvent::Reshape {
                    time,
                    job,
                    from,
                    to,
                    cost,
                } => ReportEvent::Reshape {
                    t: *time,
                    job: job.0,
                    from: from.iter().map(|n| u64::from(n.0)).collect(),
                    to: to.iter().map(|n| u64::from(n.0)).collect(),
                    cost: *cost,
                },
                TraceEvent::Finished { time, job, killed } => ReportEvent::Finished {
                    t: *time,
                    job: job.0,
                    killed: *killed,
                },
                TraceEvent::Requeued { time, job, node } => ReportEvent::Requeued {
                    t: *time,
                    job: job.0,
                    node: u64::from(node.0),
                },
                TraceEvent::NodeDown { time, node, cause } => ReportEvent::NodeDown {
                    t: *time,
                    node: u64::from(node.0),
                    cause: match cause {
                        DownCause::Failed => "failed",
                        DownCause::Drained => "drained",
                    }
                    .to_string(),
                },
                TraceEvent::NodeUp { time, node } => ReportEvent::NodeUp {
                    t: *time,
                    node: u64::from(node.0),
                },
                TraceEvent::Occupancy {
                    time,
                    busy_cores,
                    shared_nodes,
                } => ReportEvent::Occupancy {
                    t: *time,
                    busy_cores: *busy_cores,
                    shared_nodes: *shared_nodes as u64,
                },
            })
            .collect();
        TraceData { events }
    }

    /// Parses the JSON written by
    /// [`nodeshare_engine::DecisionTrace::to_json`]
    /// (`{"events":[{"type":...},...]}`).
    ///
    /// Unknown event types are an error — a trace from a newer writer
    /// should fail loudly rather than silently drop events.
    pub fn parse_json(text: &str) -> Result<TraceData, String> {
        let doc = JsonValue::parse(text)?;
        let raw = doc
            .get("events")
            .and_then(JsonValue::as_array)
            .ok_or("missing top-level \"events\" array")?;
        let mut events = Vec::with_capacity(raw.len());
        for (i, e) in raw.iter().enumerate() {
            events.push(decode_event(e).map_err(|msg| format!("event {i}: {msg}"))?);
        }
        Ok(TraceData { events })
    }

    /// Time of the last event (0 for an empty trace).
    pub fn end_time(&self) -> f64 {
        self.events.last().map_or(0.0, ReportEvent::time)
    }
}

fn field_f64(e: &JsonValue, key: &str) -> Result<f64, String> {
    e.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing number \"{key}\""))
}

fn field_u64(e: &JsonValue, key: &str) -> Result<u64, String> {
    e.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing integer \"{key}\""))
}

fn field_bool(e: &JsonValue, key: &str) -> Result<bool, String> {
    e.get(key)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| format!("missing bool \"{key}\""))
}

fn field_str<'a>(e: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    e.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing string \"{key}\""))
}

fn decode_event(e: &JsonValue) -> Result<ReportEvent, String> {
    let t = field_f64(e, "t")?;
    match field_str(e, "type")? {
        "submitted" => Ok(ReportEvent::Submitted {
            t,
            job: field_u64(e, "job")?,
            app: field_u64(e, "app")?,
            nodes: field_u64(e, "nodes")? as u32,
            walltime: field_f64(e, "walltime")?,
            share: field_bool(e, "share")?,
            malleable: match e.get("malleable") {
                None => None,
                Some(m) => Some((
                    field_u64(m, "min")? as u32,
                    field_u64(m, "max")? as u32,
                    field_f64(m, "cost")?,
                )),
            },
        }),
        "rejected" => Ok(ReportEvent::Rejected {
            t,
            job: field_u64(e, "job")?,
        }),
        "started" => {
            let nodes = e
                .get("nodes")
                .and_then(JsonValue::as_array)
                .ok_or("missing \"nodes\" array")?
                .iter()
                .map(|n| n.as_u64().ok_or("non-integer node id"))
                .collect::<Result<Vec<u64>, _>>()?;
            let partners = e
                .get("partners")
                .and_then(JsonValue::as_array)
                .ok_or("missing \"partners\" array")?
                .iter()
                .map(|p| Ok::<(u64, u64), String>((field_u64(p, "node")?, field_u64(p, "job")?)))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(ReportEvent::Started {
                t,
                job: field_u64(e, "job")?,
                shared: match field_str(e, "mode")? {
                    "shared" => true,
                    "exclusive" => false,
                    other => return Err(format!("unknown mode \"{other}\"")),
                },
                nodes,
                reason: field_str(e, "reason")?.to_string(),
                idle_before: field_u64(e, "idle_before")?,
                partners,
            })
        }
        "reshape" => {
            let node_list = |key: &str| -> Result<Vec<u64>, String> {
                e.get(key)
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| format!("missing \"{key}\" array"))?
                    .iter()
                    .map(|n| n.as_u64().ok_or_else(|| "non-integer node id".to_string()))
                    .collect()
            };
            Ok(ReportEvent::Reshape {
                t,
                job: field_u64(e, "job")?,
                from: node_list("from")?,
                to: node_list("to")?,
                cost: field_f64(e, "cost")?,
            })
        }
        "finished" => Ok(ReportEvent::Finished {
            t,
            job: field_u64(e, "job")?,
            killed: field_bool(e, "killed")?,
        }),
        "requeued" => Ok(ReportEvent::Requeued {
            t,
            job: field_u64(e, "job")?,
            node: field_u64(e, "node")?,
        }),
        "node_down" => Ok(ReportEvent::NodeDown {
            t,
            node: field_u64(e, "node")?,
            cause: field_str(e, "cause")?.to_string(),
        }),
        "node_up" => Ok(ReportEvent::NodeUp {
            t,
            node: field_u64(e, "node")?,
        }),
        "occupancy" => Ok(ReportEvent::Occupancy {
            t,
            busy_cores: field_u64(e, "busy_cores")?,
            shared_nodes: field_u64(e, "shared_nodes")?,
        }),
        other => Err(format!("unknown event type \"{other}\"")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodeshare_cluster::{JobId, NodeId};
    use nodeshare_engine::StartReason;

    fn sample_trace() -> DecisionTrace {
        let mut t = DecisionTrace::new();
        t.push(TraceEvent::Submitted {
            time: 0.0,
            job: JobId(1),
            app: nodeshare_perf_appid(2),
            nodes: 3,
            walltime_estimate: 600.0,
            share_eligible: true,
            malleable: nodeshare_workload::Malleability::range(2, 6, 45.0),
        });
        t.push(TraceEvent::Started {
            time: 1.0,
            job: JobId(1),
            mode: ShareMode::Shared,
            nodes: vec![NodeId(0), NodeId(2)],
            reason: StartReason::CoScheduled { occupied: 1 },
            idle_before: 4,
            head_waiting: Some((JobId(7), 4)),
            partners: vec![(NodeId(0), JobId(9))],
        });
        t.push(TraceEvent::Occupancy {
            time: 1.0,
            busy_cores: 8,
            shared_nodes: 1,
        });
        t.push(TraceEvent::Reshape {
            time: 200.0,
            job: JobId(1),
            from: vec![NodeId(0), NodeId(2)],
            to: vec![NodeId(0), NodeId(2), NodeId(3)],
            cost: 45.0,
        });
        t.push(TraceEvent::Finished {
            time: 500.0,
            job: JobId(1),
            killed: false,
        });
        t
    }

    // The test helper avoids a direct dev-dependency on nodeshare-perf
    // types in signatures; AppId is a plain newtype.
    fn nodeshare_perf_appid(id: u8) -> nodeshare_perf::AppId {
        nodeshare_perf::AppId(id)
    }

    #[test]
    fn json_round_trip_matches_in_process_decode() {
        let trace = sample_trace();
        let direct = TraceData::from_trace(&trace);
        let parsed = TraceData::parse_json(&trace.to_json()).expect("parses");
        assert_eq!(direct, parsed);
        assert_eq!(direct.events.len(), 5);
        assert_eq!(direct.end_time(), 500.0);
        match &direct.events[0] {
            ReportEvent::Submitted { malleable, .. } => {
                assert_eq!(*malleable, Some((2, 6, 45.0)));
            }
            other => panic!("unexpected event {other:?}"),
        }
        match &direct.events[3] {
            ReportEvent::Reshape { from, to, cost, .. } => {
                assert_eq!(from, &[0, 2]);
                assert_eq!(to, &[0, 2, 3]);
                assert_eq!(*cost, 45.0);
            }
            other => panic!("unexpected event {other:?}"),
        }
        match &direct.events[1] {
            ReportEvent::Started {
                shared,
                reason,
                partners,
                ..
            } => {
                assert!(*shared);
                assert_eq!(reason, "co-scheduled");
                assert_eq!(partners, &[(0, 9)]);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn unknown_event_types_error() {
        let err =
            TraceData::parse_json(r#"{"events":[{"type":"warp","t":0}]}"#).expect_err("must fail");
        assert!(err.contains("unknown event type"), "{err}");
    }

    #[test]
    fn missing_fields_error_with_event_index() {
        let err = TraceData::parse_json(r#"{"events":[{"type":"finished","t":1}]}"#)
            .expect_err("must fail");
        assert!(err.starts_with("event 0:"), "{err}");
    }
}
