//! Campaign orchestrator acceptance tests: canonical-order merging under
//! adversarial completion schedules, and per-cell fault isolation with
//! coordinate-labeled failures.

use nodeshare_bench::campaign::{run_campaign, run_cell, CampaignSpec, CellOptions, PresetVariant};
use nodeshare_bench::orchestrator::{
    run_cells, run_cells_serial, run_cells_with_schedule, Parallelism,
};
use nodeshare_bench::{seeds, World};
use nodeshare_core::{StrategyConfig, StrategyKind};
use proptest::prelude::*;

/// A small real campaign grid (axes named so failure labels are
/// recognizable), used by the fault-isolation tests.
fn small_spec() -> CampaignSpec {
    CampaignSpec::on_evaluation_cluster(
        "faults",
        vec![
            PresetVariant {
                n_jobs: Some(25),
                ..PresetVariant::saturated("saturated")
            },
            PresetVariant {
                n_jobs: Some(20),
                ..PresetVariant::online("online")
            },
        ],
        vec![
            StrategyConfig::exclusive(StrategyKind::EasyBackfill).into(),
            StrategyConfig::sharing(StrategyKind::CoBackfill).into(),
        ],
        seeds(2),
    )
}

/// Turns arbitrary sort keys into a completion permutation of `0..n`.
fn permutation_from_keys(keys: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by_key(|&i| (keys[i], i));
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// An arbitrary campaign grid, completed in an arbitrary (injected,
    /// adversarial) order, still merges in canonical cell order and
    /// matches the serial reference cell for cell. The runner is
    /// synthetic — the property under test is the merge path, not the
    /// simulator.
    #[test]
    fn arbitrary_grids_merge_canonically_under_shuffled_schedules(
        n_presets in 1usize..5,
        n_clusters in 1usize..4,
        n_strategies in 1usize..5,
        n_seeds in 1usize..5,
        keys in prop::collection::vec(0u64..10_000, 300),
    ) {
        // A real spec supplies the grid enumeration; the cells carry
        // coordinates only.
        let spec = CampaignSpec {
            name: "prop",
            presets: (0..n_presets)
                .map(|i| PresetVariant::saturated(format!("p{i}")))
                .collect(),
            clusters: (0..n_clusters)
                .map(|i| nodeshare_bench::campaign::ClusterVariant::named(
                    format!("c{i}"),
                    nodeshare_cluster::ClusterSpec::evaluation(),
                ))
                .collect(),
            strategies: (0..n_strategies)
                .map(|i| nodeshare_bench::campaign::StrategyVariant::named(
                    format!("s{i}"),
                    StrategyConfig::sharing(StrategyKind::CoBackfill),
                ))
                .collect(),
            seeds: (0..n_seeds as u64).collect(),
        };
        let cells = spec.cells();
        prop_assert_eq!(cells.len(), spec.n_cells());
        // Every coordinate round-trips through the canonical index.
        for (i, c) in cells.iter().enumerate() {
            prop_assert_eq!(spec.index_of(c), i);
        }
        let schedule = permutation_from_keys(&keys[..cells.len()]);
        let runner = |i: usize, c: &nodeshare_bench::campaign::CellCoord| {
            (i, c.preset * 1000 + c.cluster * 100 + c.strategy * 10 + c.seed)
        };

        let reference = run_cells_serial(&cells, runner, |_, _| {});
        let mut merged_order = Vec::new();
        let shuffled = run_cells_with_schedule(&cells, &schedule, runner, |i, _| {
            merged_order.push(i);
        });
        prop_assert_eq!(&merged_order, &(0..cells.len()).collect::<Vec<_>>());
        prop_assert_eq!(shuffled, reference);
    }

    /// The same property through the real worker pool: whatever
    /// completion order the threads produce, the merge delivers
    /// canonical order and serial-identical results.
    #[test]
    fn worker_pool_merges_canonically(
        n_cells in 1usize..120,
        jobs in 1usize..9,
    ) {
        let cells: Vec<usize> = (0..n_cells).collect();
        let runner = |i: usize, c: &usize| i as u64 * 31 + *c as u64;
        let reference = run_cells_serial(&cells, runner, |_, _| {});
        let mut merged_order = Vec::new();
        let done = run_cells(
            &cells,
            Parallelism::Jobs(jobs),
            |i, _| format!("cell{i}"),
            runner,
            |i, _| merged_order.push(i),
        );
        prop_assert_eq!(&merged_order, &(0..n_cells).collect::<Vec<_>>());
        prop_assert_eq!(done.into_results().unwrap(), reference);
    }
}

/// A cell that panics mid-campaign is reported with its full
/// (preset, cluster, strategy, seed) coordinates, and sibling cells —
/// which run *real* simulations — keep their results.
#[test]
fn panicking_cell_reports_coordinates_without_poisoning_siblings() {
    let world = World::evaluation();
    let spec = small_spec();
    let cells = spec.cells();
    let opts = CellOptions::default();
    // Poison one mid-grid cell: online preset, co-backfill, second seed.
    let poisoned = spec.index_of(&nodeshare_bench::campaign::CellCoord {
        preset: 1,
        cluster: 0,
        strategy: 1,
        seed: 1,
    });

    let done = run_cells(
        &cells,
        Parallelism::Jobs(4),
        |_, c| spec.cell_label(c),
        |i, c| {
            if i == poisoned {
                panic!("injected wedge");
            }
            run_cell(&world, &spec, c, &opts)
        },
        |_, _| {},
    );

    assert_eq!(done.failures.len(), 1);
    let f = &done.failures[0];
    assert_eq!(f.index, poisoned);
    assert_eq!(f.label, "online/128n-smt2/co-backfill/seed1001");
    assert!(f.message.contains("injected wedge"));
    // The Display form carries everything needed to re-run the cell.
    let report = f.to_string();
    assert!(report.contains("online"), "{report}");
    assert!(report.contains("co-backfill"), "{report}");
    assert!(report.contains("seed1001"), "{report}");

    // Every sibling simulated to completion and kept its result.
    for (i, slot) in done.results.iter().enumerate() {
        if i == poisoned {
            assert!(slot.is_none());
        } else {
            let r = slot.as_ref().expect("sibling cell lost its result");
            assert_eq!(spec.index_of(&r.coord), i);
            assert!(r.outcome.complete());
        }
    }
    assert!(done.into_results().is_err());
}

/// End-to-end through [`run_campaign`]: a preset whose workload
/// generation panics (negative arrival rate) fails the campaign with one
/// coordinate-labeled failure per poisoned cell — and the same campaign
/// without the poison preset succeeds.
#[test]
fn run_campaign_surfaces_failed_cells_with_coordinates() {
    let world = World::evaluation();
    let mut spec = small_spec();
    spec.presets.push(PresetVariant {
        n_jobs: Some(10),
        arrival_rate: Some(-1.0),
        ..PresetVariant::saturated("poison")
    });

    let failures = run_campaign(&world, &spec, Parallelism::Jobs(4), &CellOptions::default())
        .expect_err("the poison preset must fail the campaign");
    // Exactly the poison cells failed: one per (strategy, seed).
    assert_eq!(failures.len(), spec.strategies.len() * spec.seeds.len());
    for f in &failures {
        assert!(f.label.starts_with("poison/"), "{}", f.label);
    }

    spec.presets.pop();
    let run = run_campaign(&world, &spec, Parallelism::Jobs(4), &CellOptions::default())
        .expect("without the poison preset the campaign succeeds");
    assert_eq!(run.results.len(), spec.n_cells());
}
