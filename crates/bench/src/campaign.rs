//! Declarative experiment campaigns over a (strategy × seed × preset ×
//! cluster) cell grid.
//!
//! Every experiment binary used to hand-roll its own nested
//! strategy/seed loops; a [`CampaignSpec`] replaces them with data: four
//! axes whose cartesian product is the campaign's cell grid. Each cell
//! is one **serial** simulation — determinism inside a cell is exactly
//! the source paper's serial-code contract — and cells are independent,
//! so the orchestrator ([`crate::orchestrator`]) shards them freely
//! across workers while [`run_campaign`] merges the per-cell
//! [`CampaignMetrics`] rows back in **canonical cell order**. The
//! resulting tables are bit-identical whether the campaign ran
//! `--serial`, `--jobs 1`, or `--jobs 64`.
//!
//! Canonical order is the declaration order of the axes, nested
//! preset-major: presets → clusters → strategies → seeds (seeds
//! innermost, so replications of one configuration are adjacent).

use crate::orchestrator::{run_cells, CellFailure, Parallelism};
use crate::{
    audit_requested, telemetry_dir, telemetry_sample_interval, write_telemetry_files, World,
};
use nodeshare_cluster::ClusterSpec;
use nodeshare_core::StrategyConfig;
use nodeshare_engine::{
    run, run_traced, run_traced_with_telemetry, run_with_telemetry, Auditor, DecisionTrace,
    FailureModel, SimConfig, SimOutcome, SimTelemetry,
};
use nodeshare_metrics::{CampaignMetrics, Table};
use nodeshare_workload::{ArrivalProcess, WorkloadSpec};

/// One strategy axis entry: a configuration plus the label it carries in
/// tables, telemetry paths, and failure reports.
#[derive(Clone, Debug)]
pub struct StrategyVariant {
    /// Table/log label (unique within the campaign).
    pub label: String,
    /// The scheduling policy this axis entry runs.
    pub config: StrategyConfig,
}

impl From<StrategyConfig> for StrategyVariant {
    fn from(config: StrategyConfig) -> Self {
        StrategyVariant {
            label: config.label().to_string(),
            config,
        }
    }
}

impl StrategyVariant {
    /// A variant with an explicit label (for configurations that differ
    /// only in predictor or pairing policy).
    pub fn named(label: impl Into<String>, config: StrategyConfig) -> Self {
        StrategyVariant {
            label: label.into(),
            config,
        }
    }
}

/// Which base workload a preset builds on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadBase {
    /// [`World::online_spec`]: Poisson arrivals at ~90% offered load.
    Online,
    /// [`World::saturated_spec`]: arrivals ~40% above drain rate.
    Saturated,
}

/// Pre-sampled random node failures for a preset, mirroring the F9
/// experiment's configuration. The per-cell failure stream is seeded
/// from the cell's workload seed (`seed ^ 0xfa11`), so failure campaigns
/// replicate exactly like failure-free ones.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FailurePlan {
    /// Mean time between failures per node, hours.
    pub mtbf_hours: f64,
    /// Node repair time, seconds.
    pub repair_s: f64,
    /// Horizon over which failures are pre-sampled, seconds.
    pub horizon_s: f64,
}

/// One workload-preset axis entry: a named, data-only description of the
/// campaign a cell simulates. Everything seed-dependent (workload
/// generation, failure streams) is derived inside the cell from the
/// seed axis, keeping the spec declarative.
#[derive(Clone, Debug)]
pub struct PresetVariant {
    /// Table/log label (unique within the campaign).
    pub label: String,
    /// Base workload shape.
    pub base: WorkloadBase,
    /// Override the job count (default: the base spec's 1000).
    pub n_jobs: Option<usize>,
    /// Override the Poisson arrival rate (jobs/second).
    pub arrival_rate: Option<f64>,
    /// Inject random node failures.
    pub failures: Option<FailurePlan>,
    /// Application checkpoint interval in *work* seconds.
    pub checkpoint_interval: Option<f64>,
}

impl PresetVariant {
    /// An online (~90% load) preset.
    pub fn online(label: impl Into<String>) -> Self {
        PresetVariant {
            label: label.into(),
            base: WorkloadBase::Online,
            n_jobs: None,
            arrival_rate: None,
            failures: None,
            checkpoint_interval: None,
        }
    }

    /// A saturated (headline-regime) preset.
    pub fn saturated(label: impl Into<String>) -> Self {
        PresetVariant {
            base: WorkloadBase::Saturated,
            ..PresetVariant::online(label)
        }
    }

    /// The workload spec this preset generates for one seed.
    pub fn workload_spec(&self, world: &World, seed: u64) -> WorkloadSpec {
        let mut spec = match self.base {
            WorkloadBase::Online => world.online_spec(seed),
            WorkloadBase::Saturated => world.saturated_spec(seed),
        };
        if let Some(n) = self.n_jobs {
            spec.n_jobs = n;
        }
        if let Some(rate) = self.arrival_rate {
            spec.arrival = ArrivalProcess::Poisson { rate };
        }
        spec
    }
}

/// One cluster axis entry.
#[derive(Clone, Debug)]
pub struct ClusterVariant {
    /// Table/log label (unique within the campaign).
    pub label: String,
    /// The machine this axis entry simulates.
    pub spec: ClusterSpec,
}

impl ClusterVariant {
    /// The canonical 128-node SMT-2 evaluation machine.
    pub fn evaluation() -> Self {
        ClusterVariant {
            label: "128n-smt2".to_string(),
            spec: ClusterSpec::evaluation(),
        }
    }

    /// A variant with an explicit label.
    pub fn named(label: impl Into<String>, spec: ClusterSpec) -> Self {
        ClusterVariant {
            label: label.into(),
            spec,
        }
    }
}

/// A declarative campaign: the cartesian product of four axes.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Campaign name — prefixes telemetry directories, obs log targets,
    /// and result files.
    pub name: &'static str,
    /// Workload presets (outermost canonical axis).
    pub presets: Vec<PresetVariant>,
    /// Simulated machines.
    pub clusters: Vec<ClusterVariant>,
    /// Scheduling policies.
    pub strategies: Vec<StrategyVariant>,
    /// Replication seeds (innermost canonical axis).
    pub seeds: Vec<u64>,
}

/// Coordinates of one cell: indices into the four spec axes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellCoord {
    /// Index into [`CampaignSpec::presets`].
    pub preset: usize,
    /// Index into [`CampaignSpec::clusters`].
    pub cluster: usize,
    /// Index into [`CampaignSpec::strategies`].
    pub strategy: usize,
    /// Index into [`CampaignSpec::seeds`].
    pub seed: usize,
}

impl CampaignSpec {
    /// A campaign on the evaluation cluster only.
    pub fn on_evaluation_cluster(
        name: &'static str,
        presets: Vec<PresetVariant>,
        strategies: Vec<StrategyVariant>,
        seeds: Vec<u64>,
    ) -> Self {
        CampaignSpec {
            name,
            presets,
            clusters: vec![ClusterVariant::evaluation()],
            strategies,
            seeds,
        }
    }

    /// Total cell count.
    pub fn n_cells(&self) -> usize {
        self.presets.len() * self.clusters.len() * self.strategies.len() * self.seeds.len()
    }

    /// Every cell coordinate, in canonical order.
    pub fn cells(&self) -> Vec<CellCoord> {
        let mut out = Vec::with_capacity(self.n_cells());
        for preset in 0..self.presets.len() {
            for cluster in 0..self.clusters.len() {
                for strategy in 0..self.strategies.len() {
                    for seed in 0..self.seeds.len() {
                        out.push(CellCoord {
                            preset,
                            cluster,
                            strategy,
                            seed,
                        });
                    }
                }
            }
        }
        out
    }

    /// The canonical index of a coordinate — the inverse of
    /// [`CampaignSpec::cells`] ordering.
    pub fn index_of(&self, c: &CellCoord) -> usize {
        ((c.preset * self.clusters.len() + c.cluster) * self.strategies.len() + c.strategy)
            * self.seeds.len()
            + c.seed
    }

    /// Human-readable cell coordinates:
    /// `preset/cluster/strategy/seedN`.
    pub fn cell_label(&self, c: &CellCoord) -> String {
        format!(
            "{}/{}/{}/seed{}",
            self.presets[c.preset].label,
            self.clusters[c.cluster].label,
            self.strategies[c.strategy].label,
            self.seeds[c.seed]
        )
    }

    /// Filesystem-safe cell name (telemetry subdirectory).
    pub fn cell_slug(&self, c: &CellCoord) -> String {
        self.cell_label(c)
            .chars()
            .map(|ch| {
                if ch.is_ascii_alphanumeric() || ch == '-' || ch == '_' {
                    ch
                } else {
                    '-'
                }
            })
            .collect()
    }

    /// Validates axis shapes: every axis non-empty, labels unique within
    /// their axis (duplicate labels would alias telemetry directories
    /// and make failure reports ambiguous).
    pub fn validate(&self) {
        assert!(
            !self.presets.is_empty()
                && !self.clusters.is_empty()
                && !self.strategies.is_empty()
                && !self.seeds.is_empty(),
            "campaign {}: every axis needs at least one entry",
            self.name
        );
        let unique = |labels: Vec<&str>, axis: &str| {
            // detlint: allow(D1, duplicate-slug guard; membership checks only, never iterated)
            let mut seen = std::collections::HashSet::new();
            for l in labels {
                assert!(
                    seen.insert(l.to_string()),
                    "campaign {}: duplicate {axis} label {l:?}",
                    self.name
                );
            }
        };
        unique(
            self.presets.iter().map(|p| p.label.as_str()).collect(),
            "preset",
        );
        unique(
            self.clusters.iter().map(|c| c.label.as_str()).collect(),
            "cluster",
        );
        unique(
            self.strategies.iter().map(|s| s.label.as_str()).collect(),
            "strategy",
        );
    }
}

/// Per-cell execution options.
#[derive(Clone, Copy, Debug, Default)]
pub struct CellOptions {
    /// Record a decision trace for every cell and keep its FNV-1a hash
    /// in the result — the differential tests compare these across
    /// worker counts. (Tracing also happens whenever auditing is on.)
    pub hash_traces: bool,
}

/// What one cell produced.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Where in the grid this result belongs.
    pub coord: CellCoord,
    /// The full simulation outcome (records, occupancy series, …).
    pub outcome: SimOutcome,
    /// Aggregated campaign metrics against the cell's cluster.
    pub metrics: CampaignMetrics,
    /// FNV-1a hash of the decision trace, when one was recorded.
    pub trace_hash: Option<u64>,
    /// Wall-clock seconds the cell's simulation took on its worker.
    ///
    /// Observability only: never part of the outcome, metrics, table
    /// rows, or trace hash the determinism proofs compare — two runs of
    /// one campaign are bit-identical in every compared artifact even
    /// though their wall clocks differ.
    pub wall_seconds: f64,
}

/// Stable FNV-1a hash of a decision trace (over the `Debug` rendering of
/// every event — `f64` formatting is exact for round-trip values, so
/// equal traces hash equal and diverging traces collide with
/// probability ~2⁻⁶⁴).
pub fn trace_hash(trace: &DecisionTrace) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut buf = String::new();
    for ev in trace.events() {
        use std::fmt::Write as _;
        buf.clear();
        let _ = write!(buf, "{ev:?}");
        for b in buf.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Runs one cell: generates the seeded workload, builds the policy,
/// runs the serial simulation (audited and/or telemetry-instrumented as
/// configured), and aggregates metrics.
///
/// # Panics
/// Panics when the policy wedges (incomplete campaign) or the replay
/// audit finds violations — the orchestrator turns either into a
/// [`CellFailure`] carrying this cell's coordinates.
pub fn run_cell(
    world: &World,
    spec: &CampaignSpec,
    coord: &CellCoord,
    opts: &CellOptions,
) -> CellResult {
    let sv = &spec.strategies[coord.strategy];
    let pv = &spec.presets[coord.preset];
    let cv = &spec.clusters[coord.cluster];
    let seed = spec.seeds[coord.seed];
    let label = spec.cell_label(coord);
    let slug = spec.cell_slug(coord);
    let target = format!("campaign::{}::{}", spec.name, slug);

    let workload = pv.workload_spec(world, seed).generate(&world.catalog);
    let mut sim_cfg = SimConfig::new(cv.spec);
    if audit_requested() {
        sim_cfg.audit = true;
        crate::announce_audit();
    }
    if let Some(fp) = &pv.failures {
        sim_cfg.failures = Some(FailureModel {
            mtbf_per_node: fp.mtbf_hours * 3_600.0,
            repair_time: fp.repair_s,
            seed: seed ^ 0xfa11,
        });
        sim_cfg.failure_horizon = fp.horizon_s;
    }
    sim_cfg.checkpoint_interval = pv.checkpoint_interval;

    nodeshare_obs::debug!(target.as_str(), "cell start"; jobs = workload.len());
    let mut sched = sv.config.build(&world.catalog, &world.model);
    let want_trace = sim_cfg.audit || opts.hash_traces;
    let telemetry = telemetry_dir().map(|dir| {
        (
            dir.join(spec.name).join(&slug),
            SimTelemetry::new(telemetry_sample_interval()),
        )
    });

    let audit = |trace: &DecisionTrace, out: &SimOutcome| {
        if let Err(violations) = Auditor::new(&world.matrix, &sim_cfg).audit(trace, out) {
            panic!(
                "audit of cell {label} found {} violation(s): {violations:?}",
                violations.len()
            );
        }
    };
    let sim_started = std::time::Instant::now();
    let (out, trace) = match (&telemetry, want_trace) {
        (Some((_, tele)), true) => {
            let (out, trace) =
                run_traced_with_telemetry(&workload, &world.matrix, sched.as_mut(), &sim_cfg, tele);
            (out, Some(trace))
        }
        (Some((_, tele)), false) => (
            run_with_telemetry(&workload, &world.matrix, sched.as_mut(), &sim_cfg, tele),
            None,
        ),
        (None, true) => {
            // `run_traced` never audits implicitly — we hand the trace
            // to the auditor ourselves so the panic carries the cell.
            let (out, trace) = run_traced(&workload, &world.matrix, sched.as_mut(), &sim_cfg);
            (out, Some(trace))
        }
        (None, false) => (
            run(&workload, &world.matrix, sched.as_mut(), &sim_cfg),
            None,
        ),
    };
    let wall_seconds = sim_started.elapsed().as_secs_f64();
    if sim_cfg.audit {
        if let Some(trace) = &trace {
            audit(trace, &out);
        }
    }
    let hash = trace.as_ref().map(trace_hash);
    if let Some((dir, tele)) = &telemetry {
        // One subdirectory per cell: parallel cells never interleave
        // JSONL writes, and a campaign's telemetry is browsable by cell
        // coordinates.
        write_telemetry_files(dir, "campaign", tele);
        if let Some(trace) = &trace {
            write_cell_report(dir, &label, cv.spec.total_cores(), trace);
        }
    }
    assert!(
        out.complete(),
        "cell {label}: {} jobs never scheduled",
        out.unscheduled.len()
    );
    let metrics = out.metrics(&cv.spec);
    nodeshare_obs::debug!(
        target.as_str(),
        "cell done";
        events = out.events_processed,
        makespan_h = format!("{:.2}", metrics.makespan / 3_600.0),
        wall_ms = format!("{:.1}", wall_seconds * 1e3)
    );
    CellResult {
        coord: *coord,
        outcome: out,
        metrics,
        trace_hash: hash,
        wall_seconds,
    }
}

/// Renders a cell's decision trace as observability artifacts next to
/// its telemetry files: `report.md` (human summary) and `perfetto.json`
/// (load at <https://ui.perfetto.dev>). Report rendering is pure — it
/// reads the finished trace and never feeds back into the simulation.
fn write_cell_report(dir: &std::path::Path, label: &str, total_cores: u64, trace: &DecisionTrace) {
    let opts = nodeshare_report::ReportOptions {
        title: Some(format!("cell report: {label}")),
        total_cores: Some(total_cores),
    };
    let report = nodeshare_report::Report::from_trace(trace, &opts);
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let ok = std::fs::write(dir.join("report.md"), &report.markdown).is_ok()
        && std::fs::write(dir.join("perfetto.json"), &report.perfetto_json).is_ok();
    if !ok {
        nodeshare_obs::warn!("bench", "failed to write cell report"; cell = label);
    }
}

/// A completed campaign: per-cell results in canonical order plus the
/// streamed per-cell metrics table.
#[derive(Debug)]
pub struct CampaignRun {
    /// The spec that produced this run.
    pub spec: CampaignSpec,
    /// Per-cell results, canonical order.
    pub results: Vec<CellResult>,
    /// One row per cell (canonical order), streamed as cells completed.
    pub cell_table: Table,
    /// Wall-clock seconds the whole campaign took (observability only).
    pub wall_seconds: f64,
    /// How many workers the campaign ran on.
    pub workers: usize,
}

impl CampaignRun {
    /// Total simulation events processed across all cells.
    pub fn total_events(&self) -> u64 {
        self.results
            .iter()
            .map(|r| r.outcome.events_processed)
            .sum::<u64>()
    }

    /// Campaign throughput in cells per minute of wall-clock time.
    pub fn cells_per_minute(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.results.len() as f64 * 60.0 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Renders the campaign's wall-clock profile as markdown: totals,
    /// a per-cell table in canonical order, and the slowest cells.
    ///
    /// Row *order* is deterministic (the merge delivers canonical cell
    /// order regardless of worker count); the wall-clock *values* are
    /// whatever the machine did — they never feed back into results.
    pub fn summary_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut md = String::new();
        let _ = writeln!(md, "# campaign summary: {}\n", self.spec.name);
        let _ = writeln!(md, "| total | value |");
        let _ = writeln!(md, "|---|---|");
        let _ = writeln!(md, "| cells | {} |", self.results.len());
        let _ = writeln!(md, "| workers | {} |", self.workers);
        let _ = writeln!(md, "| wall time | {:.2} s |", self.wall_seconds);
        let _ = writeln!(md, "| cells/min | {:.1} |", self.cells_per_minute());
        let _ = writeln!(md, "| events | {} |", self.total_events());
        // detlint: allow(D4, diagnostic wall-time total; machine-dependent by design and never fed back into results)
        let cell_seconds: f64 = self.results.iter().map(|r| r.wall_seconds).sum();
        if cell_seconds > 0.0 {
            let _ = writeln!(
                md,
                "| events/sec (aggregate) | {:.0} |",
                self.total_events() as f64 / cell_seconds
            );
        }
        let _ = writeln!(md, "\n## Cells\n");
        let _ = writeln!(md, "| # | cell | events | wall ms | events/sec |");
        let _ = writeln!(md, "|---|---|---|---|---|");
        for (idx, r) in self.results.iter().enumerate() {
            let _ = writeln!(
                md,
                "| {idx} | {} | {} | {:.1} | {:.0} |",
                self.spec.cell_label(&r.coord),
                r.outcome.events_processed,
                r.wall_seconds * 1e3,
                events_per_sec(r)
            );
        }
        let mut slowest: Vec<&CellResult> = self.results.iter().collect();
        slowest.sort_by(|a, b| {
            b.wall_seconds.total_cmp(&a.wall_seconds).then_with(|| {
                self.spec
                    .index_of(&a.coord)
                    .cmp(&self.spec.index_of(&b.coord))
            })
        });
        let _ = writeln!(md, "\n## Slowest cells\n");
        let _ = writeln!(md, "| cell | wall ms |");
        let _ = writeln!(md, "|---|---|");
        for r in slowest.iter().take(5) {
            let _ = writeln!(
                md,
                "| {} | {:.1} |",
                self.spec.cell_label(&r.coord),
                r.wall_seconds * 1e3
            );
        }
        md
    }
}

/// A cell's simulation throughput in events per wall-clock second.
fn events_per_sec(r: &CellResult) -> f64 {
    if r.wall_seconds > 0.0 {
        r.outcome.events_processed as f64 / r.wall_seconds
    } else {
        0.0
    }
}

impl CampaignRun {
    /// The per-seed metrics of one (preset, cluster, strategy)
    /// configuration, in seed order — the replication vector the
    /// experiment tables aggregate with [`crate::mean_of`].
    pub fn seed_metrics(
        &self,
        preset: usize,
        cluster: usize,
        strategy: usize,
    ) -> Vec<CampaignMetrics> {
        self.spec
            .seeds
            .iter()
            .enumerate()
            .map(|(seed, _)| {
                let idx = self.spec.index_of(&CellCoord {
                    preset,
                    cluster,
                    strategy,
                    seed,
                });
                self.results[idx].metrics.clone()
            })
            .collect()
    }
}

/// The columns of the streamed per-cell table.
fn cell_table_header() -> Vec<&'static str> {
    vec![
        "cell",
        "preset",
        "cluster",
        "strategy",
        "seed",
        "makespan_h",
        "e_comp",
        "e_sched",
        "util",
        "shared",
        "kills",
        "restarts",
    ]
}

fn cell_table_row(spec: &CampaignSpec, index: usize, r: &CellResult) -> Vec<String> {
    let c = &r.coord;
    let m = &r.metrics;
    vec![
        format!("{index}"),
        spec.presets[c.preset].label.clone(),
        spec.clusters[c.cluster].label.clone(),
        spec.strategies[c.strategy].label.clone(),
        format!("{}", spec.seeds[c.seed]),
        format!("{:.2}", m.makespan / 3_600.0),
        format!("{:.3}", m.computational_efficiency),
        format!("{:.3}", m.scheduling_efficiency),
        format!("{:.3}", m.utilization),
        format!("{:.3}", m.shared_fraction),
        format!("{}", m.killed),
        format!("{}", m.total_restarts),
    ]
}

/// Executes a campaign under the given parallelism and merges the
/// per-cell rows into the metrics table in canonical cell order.
///
/// On failure, sibling cells' results are still computed (and logged),
/// but the campaign as a whole reports every failed cell's coordinates.
pub fn run_campaign(
    world: &World,
    spec: &CampaignSpec,
    parallelism: Parallelism,
    opts: &CellOptions,
) -> Result<CampaignRun, Vec<CellFailure>> {
    spec.validate();
    let coords = spec.cells();
    let n = coords.len();
    let campaign_target = format!("campaign::{}", spec.name);
    nodeshare_obs::info!(
        campaign_target.as_str(),
        "campaign start";
        cells = n,
        workers = parallelism.workers(),
        serial = (parallelism == Parallelism::Serial)
    );
    let started = std::time::Instant::now();
    let mut table = Table::new(cell_table_header());
    let completed = run_cells(
        &coords,
        parallelism,
        |_, c| spec.cell_label(c),
        |_, c| run_cell(world, spec, c, opts),
        |idx, r: &CellResult| {
            table.row(cell_table_row(spec, idx, r));
            // Progress, in canonical order (the merge guarantees it):
            // one line per completed cell with its wall-clock profile.
            nodeshare_obs::info!(
                campaign_target.as_str(),
                "cell merged";
                cell = spec.cell_label(&r.coord),
                index = idx,
                of = n,
                wall_ms = format!("{:.1}", r.wall_seconds * 1e3),
                events_per_sec = format!("{:.0}", events_per_sec(r))
            );
        },
    );
    let wall_seconds = started.elapsed().as_secs_f64();
    let results = completed.into_results()?;
    let run = CampaignRun {
        spec: spec.clone(),
        results,
        cell_table: table,
        wall_seconds,
        workers: parallelism.workers(),
    };
    nodeshare_obs::info!(
        campaign_target.as_str(),
        "campaign done";
        cells = run.results.len(),
        wall_s = format!("{:.2}", run.wall_seconds),
        cells_per_min = format!("{:.1}", run.cells_per_minute()),
        events = run.total_events()
    );
    Ok(run)
}

/// Writes the streamed per-cell table to `results/<name>_cells.csv` —
/// the raw replication-level artifact behind an experiment's aggregated
/// tables, in canonical cell order by construction.
pub fn write_cell_table(name: &str, run: &CampaignRun) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(
            dir.join(format!("{name}_cells.csv")),
            run.cell_table.to_csv(),
        );
    }
}

/// Writes the campaign's wall-clock profile to
/// `results/<name>_summary.md`: totals (wall time, cells/min, aggregate
/// events/sec), a per-cell table in canonical order, and the slowest
/// cells. Companion to [`write_cell_table`] — the metrics CSV stays
/// bit-identical across worker counts, the summary carries the
/// wall-clock story.
pub fn write_campaign_summary(name: &str, run: &CampaignRun) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(
            dir.join(format!("{name}_summary.md")),
            run.summary_markdown(),
        );
    }
}

/// Binary-side failure handling: prints every failed cell with its
/// coordinates and exits non-zero.
pub fn exit_on_failures(failures: Vec<CellFailure>) -> ! {
    for f in &failures {
        nodeshare_obs::error!("campaign", f);
    }
    eprintln!(
        "campaign failed: {} cell(s) panicked or failed audit; sibling cells were unaffected",
        failures.len()
    );
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodeshare_core::StrategyKind;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::on_evaluation_cluster(
            "unit",
            vec![
                PresetVariant {
                    n_jobs: Some(20),
                    ..PresetVariant::saturated("sat")
                },
                PresetVariant {
                    n_jobs: Some(15),
                    ..PresetVariant::online("online")
                },
            ],
            vec![
                StrategyConfig::exclusive(StrategyKind::Fcfs).into(),
                StrategyConfig::sharing(StrategyKind::CoBackfill).into(),
            ],
            vec![1_000, 1_001],
        )
    }

    #[test]
    fn cell_enumeration_is_canonical_and_invertible() {
        let spec = tiny_spec();
        let cells = spec.cells();
        assert_eq!(cells.len(), spec.n_cells());
        // 2 presets x 1 cluster x 2 strategies x 2 seeds
        assert_eq!(cells.len(), 8);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(spec.index_of(c), i);
        }
        // Seeds are the innermost axis: adjacent cells replicate one
        // configuration.
        assert_eq!(cells[0].seed, 0);
        assert_eq!(cells[1].seed, 1);
        assert_eq!(cells[0].strategy, cells[1].strategy);
        assert_eq!(spec.cell_label(&cells[0]), "sat/128n-smt2/fcfs/seed1000");
    }

    #[test]
    fn campaign_runs_and_aggregates_deterministically() {
        let world = World::evaluation();
        let spec = tiny_spec();
        let opts = CellOptions { hash_traces: true };
        let serial = run_campaign(&world, &spec, Parallelism::Serial, &opts).unwrap();
        let parallel = run_campaign(&world, &spec, Parallelism::Jobs(4), &opts).unwrap();
        assert_eq!(serial.results.len(), spec.n_cells());
        for (a, b) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(a.coord, b.coord);
            assert_eq!(a.trace_hash, b.trace_hash);
            assert!(a.outcome == b.outcome);
        }
        assert_eq!(serial.cell_table.to_csv(), parallel.cell_table.to_csv());
        let ms = serial.seed_metrics(0, 0, 1);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].jobs, 20);
        // Wall-clock observability rides along without entering any
        // compared artifact above.
        for run in [&serial, &parallel] {
            assert!(run.wall_seconds > 0.0);
            assert!(run.cells_per_minute() > 0.0);
            assert!(run.results.iter().all(|r| r.wall_seconds > 0.0));
        }
        assert!(serial.total_events() > 0);
        assert_eq!(serial.total_events(), parallel.total_events());
    }

    #[test]
    fn summary_markdown_lists_every_cell_in_canonical_order() {
        let world = World::evaluation();
        let mut spec = tiny_spec();
        spec.name = "unit_summary";
        let run = run_campaign(&world, &spec, Parallelism::Jobs(4), &CellOptions::default())
            .expect("campaign completes");
        let md = run.summary_markdown();
        assert!(md.starts_with("# campaign summary: unit_summary"));
        assert!(md.contains("| cells | 8 |"));
        assert!(md.contains("## Slowest cells"));
        // Every cell appears, and the per-cell rows follow canonical
        // order no matter which worker finished first.
        let mut last = None;
        for (idx, c) in spec.cells().iter().enumerate() {
            let row = format!("| {idx} | {} |", spec.cell_label(c));
            let pos = md
                .find(&row)
                .unwrap_or_else(|| panic!("missing row {row:?}"));
            assert!(last.is_none_or(|p| p < pos), "rows out of order at {row:?}");
            last = Some(pos);
        }
    }

    #[test]
    fn telemetry_cells_get_report_artifacts() {
        let dir = std::env::temp_dir().join("nodeshare_campaign_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("NODESHARE_TELEMETRY", &dir);
        let world = World::evaluation();
        let mut spec = tiny_spec();
        spec.name = "unit_report";
        spec.presets.truncate(1);
        spec.strategies.truncate(1);
        spec.seeds.truncate(1);
        let coord = spec.cells()[0];
        let r = run_cell(&world, &spec, &coord, &CellOptions { hash_traces: true });
        std::env::remove_var("NODESHARE_TELEMETRY");
        assert!(r.trace_hash.is_some());
        let cell_dir = dir.join(spec.name).join(spec.cell_slug(&coord));
        let md = std::fs::read_to_string(cell_dir.join("report.md"))
            .expect("cell report.md written next to telemetry");
        assert!(md.contains(&format!("cell report: {}", spec.cell_label(&coord))));
        assert!(md.contains("## Queue waits"));
        let perfetto = std::fs::read_to_string(cell_dir.join("perfetto.json"))
            .expect("cell perfetto.json written next to telemetry");
        assert!(perfetto.starts_with("{\"traceEvents\":["));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "duplicate strategy label")]
    fn duplicate_labels_are_rejected() {
        let mut spec = tiny_spec();
        let dup = spec.strategies[0].clone();
        spec.strategies.push(dup);
        spec.validate();
    }
}
