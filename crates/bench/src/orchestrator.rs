//! The parallel campaign runner: shards independent cells over a worker
//! pool, isolates per-cell faults, and merges results deterministically.
//!
//! The contract mirrors the source paper's serial-to-parallel promise:
//! **parallelism must not change answers**. Each cell is one serial
//! simulation (determinism inside the cell); cells are embarrassingly
//! parallel across the grid; and the merge re-imposes the canonical cell
//! order on whatever completion order the pool produced, so every
//! downstream artifact — tables, CSVs, aggregate means — is bit-identical
//! to a `--serial` run.
//!
//! The module is generic over the cell type so its two guarantees can be
//! tested in isolation:
//!
//! * [`run_cells`] — the parallel runner: dynamic work distribution via
//!   [`rayon::dispatch`], per-cell `catch_unwind` fault isolation, and an
//!   [`OrderedMerge`] turning completion order into canonical order.
//! * [`run_cells_serial`] — the retained reference implementation: a
//!   plain loop in canonical order, no threads, no unwinding. `--serial`
//!   binds here; the differential tests prove the parallel path equal.
//! * [`run_cells_with_schedule`] — a test hook that executes cells
//!   serially but *completes* them in an injected (adversarial)
//!   permutation, exercising the merge path exactly as a hostile thread
//!   schedule would.

use nodeshare_metrics::OrderedMerge;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How many workers a campaign runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Parallelism {
    /// The serial reference implementation: a plain loop, no worker
    /// pool, no per-cell unwind isolation.
    Serial,
    /// A pool of this many workers (1 still goes through the parallel
    /// machinery — useful for differential tests).
    Jobs(usize),
}

impl Parallelism {
    /// Resolves the worker count requested by the environment:
    /// `--jobs N` / `--serial` from `args`, else `NODESHARE_JOBS`, else
    /// one worker per available core.
    ///
    /// Unrelated flags (e.g. `--audit`, handled elsewhere by
    /// [`crate::audit_requested`]) are ignored; `--quick` is surfaced via
    /// [`CampaignCli::quick`].
    pub fn from_env() -> Parallelism {
        CampaignCli::parse().parallelism
    }

    /// The worker count this setting resolves to.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Jobs(n) => n.max(1),
        }
    }
}

/// Campaign-orchestrator command-line options shared by the ported
/// experiment binaries.
#[derive(Clone, Copy, Debug)]
pub struct CampaignCli {
    /// Worker-pool setting (`--jobs N`, `--serial`, `NODESHARE_JOBS`).
    pub parallelism: Parallelism,
    /// `--quick`: shrink the grid for smoke runs (CI determinism diff).
    pub quick: bool,
}

impl CampaignCli {
    /// Parses `std::env::args()`. Panics with a usage message on an
    /// unknown option so typos don't silently run the full campaign.
    pub fn parse() -> CampaignCli {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut jobs: Option<Parallelism> = None;
        let mut quick = false;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--serial" => jobs = Some(Parallelism::Serial),
                "--jobs" => {
                    let n: usize = it
                        .next()
                        .expect("--jobs needs a worker count")
                        .parse()
                        .expect("--jobs takes an integer");
                    jobs = Some(Parallelism::Jobs(n.max(1)));
                }
                "--quick" => quick = true,
                // Handled by `audit_requested()`'s own argv scan.
                "--audit" => {}
                other => panic!("unknown option {other} (see --jobs N/--serial/--quick/--audit)"),
            }
        }
        let parallelism = jobs.unwrap_or_else(|| match std::env::var("NODESHARE_JOBS") {
            Ok(v) if v.eq_ignore_ascii_case("serial") => Parallelism::Serial,
            Ok(v) if !v.is_empty() => Parallelism::Jobs(
                v.parse::<usize>()
                    .expect("NODESHARE_JOBS takes an integer or 'serial'")
                    .max(1),
            ),
            _ => Parallelism::Jobs(rayon::current_num_threads()),
        });
        CampaignCli { parallelism, quick }
    }
}

/// One cell that did not produce a result: the coordinates (as a label)
/// plus the panic message, so a failed campaign names exactly which
/// (strategy, seed, preset, cluster) simulation to re-run.
#[derive(Clone, Debug)]
pub struct CellFailure {
    /// Canonical cell index in the campaign grid.
    pub index: usize,
    /// Human-readable cell coordinates (e.g.
    /// `saturated/128n-smt2/co-backfill/seed1001`).
    pub label: String,
    /// The panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell #{} [{}] failed: {}",
            self.index, self.label, self.message
        )
    }
}

/// The outcome of a campaign execution: per-cell results in canonical
/// order, with failed cells reported — not silently dropped, and not
/// poisoning their siblings.
#[derive(Debug)]
pub struct Completed<R> {
    /// One slot per cell in canonical order; `None` exactly for the
    /// cells listed in `failures`.
    pub results: Vec<Option<R>>,
    /// Failed cells, in canonical order.
    pub failures: Vec<CellFailure>,
}

impl<R> Completed<R> {
    /// Unwraps an all-green campaign into its canonical result vector;
    /// a campaign with any failed cell returns them as the error.
    pub fn into_results(self) -> Result<Vec<R>, Vec<CellFailure>> {
        if self.failures.is_empty() {
            Ok(self
                .results
                .into_iter()
                .map(|r| r.expect("no failure recorded, so every slot is filled"))
                .collect())
        } else {
            Err(self.failures)
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs every cell on a pool of `parallelism.workers()` workers and
/// delivers results to `on_merged` in **canonical index order**,
/// regardless of the completion order the pool produced.
///
/// A cell whose `runner` panics (a wedged policy, a failed replay audit,
/// an incomplete campaign assertion) becomes a [`CellFailure`] carrying
/// its coordinates; sibling cells keep running and keep their results.
///
/// With [`Parallelism::Serial`] this defers to [`run_cells_serial`] —
/// the reference implementation, where a panic propagates raw.
pub fn run_cells<C, R>(
    cells: &[C],
    parallelism: Parallelism,
    label_of: impl Fn(usize, &C) -> String + Sync,
    runner: impl Fn(usize, &C) -> R + Sync,
    mut on_merged: impl FnMut(usize, &R),
) -> Completed<R>
where
    C: Sync,
    R: Send,
{
    if parallelism == Parallelism::Serial {
        let results = run_cells_serial(cells, &runner, on_merged);
        return Completed {
            results: results.into_iter().map(Some).collect(),
            failures: Vec::new(),
        };
    }
    let mut results: Vec<Option<R>> = Vec::with_capacity(cells.len());
    results.resize_with(cells.len(), || None);
    let mut failures: Vec<CellFailure> = Vec::new();
    let mut merge: OrderedMerge<Result<R, CellFailure>> = OrderedMerge::new(cells.len());
    rayon::dispatch(
        parallelism.workers(),
        cells.len(),
        |i| {
            // AssertUnwindSafe: the runner only borrows shared immutable
            // state (&C and captured &world); a panicking cell cannot
            // leave partial mutations visible to its siblings.
            catch_unwind(AssertUnwindSafe(|| runner(i, &cells[i]))).map_err(|payload| CellFailure {
                index: i,
                label: label_of(i, &cells[i]),
                message: panic_message(payload),
            })
        },
        |i, outcome| {
            merge.push(i, outcome, |idx, outcome| match outcome {
                Ok(r) => {
                    on_merged(idx, &r);
                    results[idx] = Some(r);
                }
                Err(f) => failures.push(f),
            });
        },
    );
    assert!(
        merge.is_complete(),
        "orchestrator lost cells: {} of {} merged",
        merge.emitted(),
        cells.len()
    );
    Completed { results, failures }
}

/// The serial reference implementation: runs cells in canonical order on
/// the calling thread, invoking `on_merged` after each. No worker pool,
/// no unwind catching — exactly the loop the pre-orchestrator experiment
/// binaries ran, kept as the oracle the parallel path is proven against.
pub fn run_cells_serial<C, R>(
    cells: &[C],
    runner: impl Fn(usize, &C) -> R,
    mut on_merged: impl FnMut(usize, &R),
) -> Vec<R> {
    let mut results = Vec::with_capacity(cells.len());
    for (i, cell) in cells.iter().enumerate() {
        let r = runner(i, cell);
        on_merged(i, &r);
        results.push(r);
    }
    results
}

/// Test hook: executes cells one at a time but *completes* them in the
/// injected `schedule` permutation, driving the merge path exactly as an
/// adversarial thread schedule would. `on_merged` still observes
/// canonical order — that is the property under test.
///
/// # Panics
/// Panics when `schedule` is not a permutation of `0..cells.len()` (the
/// merge rejects duplicates and out-of-range indices).
pub fn run_cells_with_schedule<C, R>(
    cells: &[C],
    schedule: &[usize],
    runner: impl Fn(usize, &C) -> R,
    mut on_merged: impl FnMut(usize, &R),
) -> Vec<R> {
    assert_eq!(
        schedule.len(),
        cells.len(),
        "completion schedule must cover every cell"
    );
    let mut results: Vec<Option<R>> = Vec::with_capacity(cells.len());
    results.resize_with(cells.len(), || None);
    let mut merge: OrderedMerge<R> = OrderedMerge::new(cells.len());
    for &i in schedule {
        let r = runner(i, &cells[i]);
        merge.push(i, r, |idx, r| {
            on_merged(idx, &r);
            results[idx] = Some(r);
        });
    }
    assert!(merge.is_complete());
    results
        .into_iter()
        .map(|r| r.expect("permutation covered every cell"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_for_all_worker_counts() {
        let cells: Vec<u64> = (0..37).collect();
        let runner = |i: usize, c: &u64| c * 3 + i as u64;
        let serial = run_cells_serial(&cells, runner, |_, _| {});
        for jobs in [1, 2, 8, 64] {
            let mut merged_order = Vec::new();
            let done = run_cells(
                &cells,
                Parallelism::Jobs(jobs),
                |i, _| format!("cell{i}"),
                runner,
                |i, _| merged_order.push(i),
            );
            assert_eq!(merged_order, (0..cells.len()).collect::<Vec<_>>());
            assert_eq!(done.into_results().unwrap(), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn panicking_cell_is_isolated_and_named() {
        let cells: Vec<u64> = (0..20).collect();
        let done = run_cells(
            &cells,
            Parallelism::Jobs(4),
            |i, _| format!("grid/cell{i}"),
            |i, c| {
                if i == 7 {
                    panic!("cell seven exploded");
                }
                c + 1
            },
            |_, _| {},
        );
        assert_eq!(done.failures.len(), 1);
        let f = &done.failures[0];
        assert_eq!(f.index, 7);
        assert_eq!(f.label, "grid/cell7");
        assert!(f.message.contains("cell seven exploded"));
        assert!(f.to_string().contains("grid/cell7"));
        // Siblings kept their results.
        for (i, slot) in done.results.iter().enumerate() {
            if i == 7 {
                assert!(slot.is_none());
            } else {
                assert_eq!(*slot, Some(cells[i] + 1));
            }
        }
        assert!(done.into_results().is_err());
    }

    #[test]
    fn injected_schedule_still_merges_canonically() {
        let cells: Vec<u64> = (0..10).collect();
        let schedule = [9, 0, 5, 1, 7, 3, 2, 8, 6, 4];
        let mut order = Vec::new();
        let results =
            run_cells_with_schedule(&cells, &schedule, |_, c| c * 2, |i, _| order.push(i));
        assert_eq!(order, (0..10).collect::<Vec<_>>());
        assert_eq!(results, (0..10).map(|c| c * 2).collect::<Vec<u64>>());
    }
}
