#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! # nodeshare-bench
//!
//! Shared experiment harness behind the per-table/figure binaries in
//! `src/bin/` and the Criterion micro-benchmarks in `benches/`.
//!
//! Every experiment follows the same recipe: build the evaluation world
//! (128 Trinity-like SMT-2 nodes, the mini-app catalog, the calibrated
//! contention truth), generate seeded workloads, run each strategy, and
//! aggregate campaign metrics across replications (in parallel with
//! Rayon — replications are independent).

pub mod campaign;
pub mod orchestrator;

use nodeshare_cluster::ClusterSpec;
use nodeshare_core::StrategyConfig;
use nodeshare_engine::{
    run, run_traced_with_telemetry, run_with_telemetry, Auditor, SimConfig, SimOutcome,
    SimTelemetry,
};
use nodeshare_metrics::CampaignMetrics;
use nodeshare_perf::{AppCatalog, CoRunTruth, ContentionModel, PairMatrix};
use nodeshare_workload::{ArrivalProcess, Workload, WorkloadSpec};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// The fixed evaluation world shared by all experiments.
pub struct World {
    /// Mini-app catalog.
    pub catalog: AppCatalog,
    /// Contention ground truth.
    pub model: ContentionModel,
    /// Precomputed ground truth (pair matrix + n-way model).
    pub matrix: CoRunTruth,
    /// Pairwise view of the truth (analysis convenience).
    pub pair: PairMatrix,
    /// 128 Trinity-like nodes.
    pub cluster: ClusterSpec,
}

impl World {
    /// Builds the canonical evaluation world.
    pub fn evaluation() -> Self {
        let catalog = AppCatalog::trinity();
        let model = ContentionModel::calibrated();
        let matrix = CoRunTruth::build(&catalog, &model);
        let pair = matrix.pair_matrix().clone();
        World {
            catalog,
            model,
            matrix,
            pair,
            cluster: ClusterSpec::evaluation(),
        }
    }

    /// Engine config for this world.
    ///
    /// Replay auditing follows the build profile (on in debug, off in
    /// release benches) unless the experiment was invoked with `--audit`
    /// or `NODESHARE_AUDIT=1`, which forces it on so a release campaign
    /// can be re-run under the full invariant check.
    pub fn config(&self) -> SimConfig {
        let mut cfg = SimConfig::new(self.cluster);
        if audit_requested() {
            cfg.audit = true;
            announce_audit();
        }
        cfg
    }

    /// The *online* campaign: Poisson arrivals at ~90% offered load
    /// (wait-time regime).
    pub fn online_spec(&self, seed: u64) -> WorkloadSpec {
        WorkloadSpec::evaluation(&self.catalog, seed)
    }

    /// The *saturated* campaign used for the headline table: the same job
    /// mix arriving ~40% faster than the machine drains it, so the queue
    /// stays deep and throughput — not arrival timing — limits the
    /// makespan. This is the regime where node sharing pays.
    pub fn saturated_spec(&self, seed: u64) -> WorkloadSpec {
        let mut spec = WorkloadSpec::evaluation(&self.catalog, seed);
        spec.arrival = ArrivalProcess::Poisson { rate: 0.0080 };
        spec
    }

    /// Runs `workload` under a strategy and returns outcome + metrics.
    ///
    /// When `NODESHARE_TELEMETRY` names a directory, the campaign runs
    /// under the telemetry layer and its JSONL sample stream plus
    /// Prometheus exposition are written there, one file pair per
    /// campaign (see [`telemetry_dir`]).
    pub fn run_strategy(
        &self,
        workload: &Workload,
        cfg: &StrategyConfig,
    ) -> (SimOutcome, CampaignMetrics) {
        let mut sched = cfg.build(&self.catalog, &self.model);
        let sim_cfg = self.config();
        let out = match telemetry_dir() {
            Some(dir) => {
                let telemetry = SimTelemetry::new(telemetry_sample_interval());
                let out = if sim_cfg.audit {
                    // Telemetry must not cost the campaign its audit:
                    // trace and re-verify exactly as `run` would.
                    let (out, trace) = run_traced_with_telemetry(
                        workload,
                        &self.matrix,
                        sched.as_mut(),
                        &sim_cfg,
                        &telemetry,
                    );
                    if let Err(violations) =
                        Auditor::new(&self.matrix, &sim_cfg).audit(&trace, &out)
                    {
                        panic!(
                            "audit of {} found {} violation(s): {violations:?}",
                            cfg.label(),
                            violations.len()
                        );
                    }
                    out
                } else {
                    run_with_telemetry(workload, &self.matrix, sched.as_mut(), &sim_cfg, &telemetry)
                };
                write_campaign_telemetry(&dir, cfg.label(), &telemetry);
                out
            }
            None => run(workload, &self.matrix, sched.as_mut(), &sim_cfg),
        };
        assert!(
            out.complete(),
            "{}: {} jobs never scheduled",
            cfg.label(),
            out.unscheduled.len()
        );
        let m = out.metrics(&self.cluster);
        (out, m)
    }

    /// Runs a strategy over `seeds.len()` independent replications in
    /// parallel and returns per-seed metrics.
    pub fn replicate(
        &self,
        cfg: &StrategyConfig,
        seeds: &[u64],
        spec_of: impl Fn(u64) -> WorkloadSpec + Sync,
    ) -> Vec<CampaignMetrics> {
        seeds
            .par_iter()
            .map(|&seed| {
                let workload = spec_of(seed).generate(&self.catalog);
                self.run_strategy(&workload, cfg).1
            })
            .collect()
    }
}

/// True when the current process was asked to audit its simulations,
/// either via a `--audit` argument or the `NODESHARE_AUDIT` environment
/// variable (any value except `0`/empty).
pub fn audit_requested() -> bool {
    if std::env::args().any(|a| a == "--audit") {
        return true;
    }
    std::env::var("NODESHARE_AUDIT").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Says once, on stderr, that the replay auditor is forced on: a silent
/// auditor is indistinguishable from a disabled one in a recorded
/// experiment log.
pub(crate) fn announce_audit() {
    static ANNOUNCE: std::sync::Once = std::sync::Once::new();
    ANNOUNCE.call_once(|| {
        nodeshare_obs::info!(
            "bench",
            "replay audit ON: every campaign is traced and re-verified"
        );
    });
}

/// The directory campaigns dump telemetry into, from the
/// `NODESHARE_TELEMETRY` environment variable (`0`/empty disables).
pub fn telemetry_dir() -> Option<std::path::PathBuf> {
    match std::env::var("NODESHARE_TELEMETRY") {
        Ok(dir) if !dir.is_empty() && dir != "0" => Some(std::path::PathBuf::from(dir)),
        _ => None,
    }
}

/// Telemetry sampling period in simulated seconds:
/// `NODESHARE_SAMPLE_INTERVAL` when set and positive, else 300.
pub(crate) fn telemetry_sample_interval() -> f64 {
    std::env::var("NODESHARE_SAMPLE_INTERVAL")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|s| s.is_finite() && *s > 0.0)
        .unwrap_or(300.0)
}

/// Writes one campaign's JSONL samples and Prometheus exposition into
/// `dir` under a sanitized strategy label with a process-wide sequence
/// number (replications run in parallel and must not collide).
fn write_campaign_telemetry(dir: &std::path::Path, label: &str, telemetry: &SimTelemetry) {
    static CAMPAIGN: AtomicU64 = AtomicU64::new(0);
    let n = CAMPAIGN.fetch_add(1, Ordering::Relaxed);
    let slug: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    if std::fs::create_dir_all(dir).is_err() {
        nodeshare_obs::warn!("bench", "cannot create telemetry directory"; dir = dir.display());
        return;
    }
    let stem = format!("{slug}-{n:04}");
    write_files(dir, &stem, telemetry);
}

/// Writes one simulation's JSONL samples and Prometheus exposition as
/// `<dir>/<stem>.jsonl` / `<dir>/<stem>.prom`, creating `dir` as needed.
/// Campaign cells call this with a per-cell directory so parallel cells
/// never interleave writes into one file.
pub(crate) fn write_telemetry_files(dir: &std::path::Path, stem: &str, telemetry: &SimTelemetry) {
    if std::fs::create_dir_all(dir).is_err() {
        nodeshare_obs::warn!("bench", "cannot create telemetry directory"; dir = dir.display());
        return;
    }
    write_files(dir, stem, telemetry);
}

fn write_files(dir: &std::path::Path, stem: &str, telemetry: &SimTelemetry) {
    let jsonl = dir.join(format!("{stem}.jsonl"));
    let prom = dir.join(format!("{stem}.prom"));
    let ok = std::fs::write(&jsonl, telemetry.jsonl()).is_ok()
        && std::fs::write(&prom, telemetry.prometheus()).is_ok();
    if ok {
        nodeshare_obs::debug!(
            "bench",
            "campaign telemetry written";
            samples = telemetry.samples().len(),
            jsonl = jsonl.display(),
            prometheus = prom.display()
        );
    } else {
        nodeshare_obs::warn!("bench", "failed to write campaign telemetry"; stem = stem);
    }
}

/// Mean of a field across replications.
pub fn mean_of(metrics: &[CampaignMetrics], f: impl Fn(&CampaignMetrics) -> f64) -> f64 {
    if metrics.is_empty() {
        return 0.0;
    }
    // detlint: allow(D4, replications summed in fixed seed order; serial reduction is deterministic)
    metrics.iter().map(f).sum::<f64>() / metrics.len() as f64
}

/// The default replication seeds.
pub fn seeds(n: u64) -> Vec<u64> {
    (0..n).map(|i| 1_000 + i).collect()
}

/// Writes experiment output both to stdout and to `results/<name>.txt`,
/// plus CSV to `results/<name>.csv` when provided.
pub fn emit(name: &str, text: &str, csv: Option<&str>) {
    println!("{text}");
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{name}.txt")), text);
        if let Some(csv) = csv {
            let _ = std::fs::write(dir.join(format!("{name}.csv")), csv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodeshare_core::StrategyKind;

    #[test]
    fn world_builds_and_runs_small_campaign() {
        let world = World::evaluation();
        let mut spec = world.online_spec(7);
        spec.n_jobs = 40;
        let workload = spec.generate(&world.catalog);
        let (out, m) = world.run_strategy(
            &workload,
            &StrategyConfig::exclusive(StrategyKind::EasyBackfill),
        );
        assert_eq!(out.records.len(), 40);
        assert!(m.computational_efficiency <= 1.0 + 1e-9);
    }

    #[test]
    fn replicate_is_parallel_and_deterministic() {
        let world = World::evaluation();
        let cfg = StrategyConfig::exclusive(StrategyKind::FirstFit);
        let spec_of = |seed| WorkloadSpec {
            n_jobs: 30,
            ..world.online_spec(seed)
        };
        let a = world.replicate(&cfg, &seeds(3), spec_of);
        let b = world.replicate(&cfg, &seeds(3), spec_of);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.makespan, y.makespan);
        }
    }

    #[test]
    fn telemetry_env_dumps_campaign_files() {
        let dir = std::env::temp_dir().join("nodeshare_bench_telemetry_test");
        let _ = std::fs::remove_dir_all(&dir);
        // Campaigns started while the variable is set dump telemetry;
        // concurrent tests may also write here, which is harmless.
        std::env::set_var("NODESHARE_TELEMETRY", &dir);
        let world = World::evaluation();
        let mut spec = world.online_spec(13);
        spec.n_jobs = 25;
        let workload = spec.generate(&world.catalog);
        let cfg = StrategyConfig::exclusive(StrategyKind::Conservative);
        let (out, _) = world.run_strategy(&workload, &cfg);
        std::env::remove_var("NODESHARE_TELEMETRY");
        assert!(out.complete());
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        let slug_jsonl = names
            .iter()
            .find(|n| n.starts_with("conservative") && n.ends_with(".jsonl"))
            .unwrap_or_else(|| panic!("no conservative jsonl in {names:?}"));
        let jsonl = std::fs::read_to_string(dir.join(slug_jsonl)).unwrap();
        assert!(jsonl.lines().count() >= 2);
        assert!(jsonl.lines().all(|l| l.starts_with("{\"t\":")));
        let prom_name = slug_jsonl.replace(".jsonl", ".prom");
        let prom = std::fs::read_to_string(dir.join(prom_name)).unwrap();
        assert!(prom.contains("# TYPE sched_decisions_total counter"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mean_of_works() {
        let world = World::evaluation();
        let cfg = StrategyConfig::exclusive(StrategyKind::Fcfs);
        let spec_of = |seed| WorkloadSpec {
            n_jobs: 10,
            ..world.online_spec(seed)
        };
        let ms = world.replicate(&cfg, &seeds(2), spec_of);
        let mean = mean_of(&ms, |m| m.jobs as f64);
        assert_eq!(mean, 10.0);
    }
}
