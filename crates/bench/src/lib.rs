//! # nodeshare-bench
//!
//! Shared experiment harness behind the per-table/figure binaries in
//! `src/bin/` and the Criterion micro-benchmarks in `benches/`.
//!
//! Every experiment follows the same recipe: build the evaluation world
//! (128 Trinity-like SMT-2 nodes, the mini-app catalog, the calibrated
//! contention truth), generate seeded workloads, run each strategy, and
//! aggregate campaign metrics across replications (in parallel with
//! Rayon — replications are independent).

use nodeshare_cluster::ClusterSpec;
use nodeshare_core::StrategyConfig;
use nodeshare_engine::{run, SimConfig, SimOutcome};
use nodeshare_metrics::CampaignMetrics;
use nodeshare_perf::{AppCatalog, CoRunTruth, ContentionModel, PairMatrix};
use nodeshare_workload::{ArrivalProcess, Workload, WorkloadSpec};
use rayon::prelude::*;

/// The fixed evaluation world shared by all experiments.
pub struct World {
    /// Mini-app catalog.
    pub catalog: AppCatalog,
    /// Contention ground truth.
    pub model: ContentionModel,
    /// Precomputed ground truth (pair matrix + n-way model).
    pub matrix: CoRunTruth,
    /// Pairwise view of the truth (analysis convenience).
    pub pair: PairMatrix,
    /// 128 Trinity-like nodes.
    pub cluster: ClusterSpec,
}

impl World {
    /// Builds the canonical evaluation world.
    pub fn evaluation() -> Self {
        let catalog = AppCatalog::trinity();
        let model = ContentionModel::calibrated();
        let matrix = CoRunTruth::build(&catalog, &model);
        let pair = matrix.pair_matrix().clone();
        World {
            catalog,
            model,
            matrix,
            pair,
            cluster: ClusterSpec::evaluation(),
        }
    }

    /// Engine config for this world.
    ///
    /// Replay auditing follows the build profile (on in debug, off in
    /// release benches) unless the experiment was invoked with `--audit`
    /// or `NODESHARE_AUDIT=1`, which forces it on so a release campaign
    /// can be re-run under the full invariant check.
    pub fn config(&self) -> SimConfig {
        let mut cfg = SimConfig::new(self.cluster);
        if audit_requested() {
            cfg.audit = true;
            // Say so once: a silent auditor is indistinguishable from a
            // disabled one in a recorded experiment log.
            static ANNOUNCE: std::sync::Once = std::sync::Once::new();
            ANNOUNCE.call_once(|| {
                eprintln!(
                    "[nodeshare-bench] replay audit ON: every campaign is traced and re-verified"
                );
            });
        }
        cfg
    }

    /// The *online* campaign: Poisson arrivals at ~90% offered load
    /// (wait-time regime).
    pub fn online_spec(&self, seed: u64) -> WorkloadSpec {
        WorkloadSpec::evaluation(&self.catalog, seed)
    }

    /// The *saturated* campaign used for the headline table: the same job
    /// mix arriving ~40% faster than the machine drains it, so the queue
    /// stays deep and throughput — not arrival timing — limits the
    /// makespan. This is the regime where node sharing pays.
    pub fn saturated_spec(&self, seed: u64) -> WorkloadSpec {
        let mut spec = WorkloadSpec::evaluation(&self.catalog, seed);
        spec.arrival = ArrivalProcess::Poisson { rate: 0.0080 };
        spec
    }

    /// Runs `workload` under a strategy and returns outcome + metrics.
    pub fn run_strategy(
        &self,
        workload: &Workload,
        cfg: &StrategyConfig,
    ) -> (SimOutcome, CampaignMetrics) {
        let mut sched = cfg.build(&self.catalog, &self.model);
        let out = run(workload, &self.matrix, sched.as_mut(), &self.config());
        assert!(
            out.complete(),
            "{}: {} jobs never scheduled",
            cfg.label(),
            out.unscheduled.len()
        );
        let m = out.metrics(&self.cluster);
        (out, m)
    }

    /// Runs a strategy over `seeds.len()` independent replications in
    /// parallel and returns per-seed metrics.
    pub fn replicate(
        &self,
        cfg: &StrategyConfig,
        seeds: &[u64],
        spec_of: impl Fn(u64) -> WorkloadSpec + Sync,
    ) -> Vec<CampaignMetrics> {
        seeds
            .par_iter()
            .map(|&seed| {
                let workload = spec_of(seed).generate(&self.catalog);
                self.run_strategy(&workload, cfg).1
            })
            .collect()
    }
}

/// True when the current process was asked to audit its simulations,
/// either via a `--audit` argument or the `NODESHARE_AUDIT` environment
/// variable (any value except `0`/empty).
pub fn audit_requested() -> bool {
    if std::env::args().any(|a| a == "--audit") {
        return true;
    }
    std::env::var("NODESHARE_AUDIT").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Mean of a field across replications.
pub fn mean_of(metrics: &[CampaignMetrics], f: impl Fn(&CampaignMetrics) -> f64) -> f64 {
    if metrics.is_empty() {
        return 0.0;
    }
    metrics.iter().map(f).sum::<f64>() / metrics.len() as f64
}

/// The default replication seeds.
pub fn seeds(n: u64) -> Vec<u64> {
    (0..n).map(|i| 1_000 + i).collect()
}

/// Writes experiment output both to stdout and to `results/<name>.txt`,
/// plus CSV to `results/<name>.csv` when provided.
pub fn emit(name: &str, text: &str, csv: Option<&str>) {
    println!("{text}");
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{name}.txt")), text);
        if let Some(csv) = csv {
            let _ = std::fs::write(dir.join(format!("{name}.csv")), csv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodeshare_core::StrategyKind;

    #[test]
    fn world_builds_and_runs_small_campaign() {
        let world = World::evaluation();
        let mut spec = world.online_spec(7);
        spec.n_jobs = 40;
        let workload = spec.generate(&world.catalog);
        let (out, m) = world.run_strategy(
            &workload,
            &StrategyConfig::exclusive(StrategyKind::EasyBackfill),
        );
        assert_eq!(out.records.len(), 40);
        assert!(m.computational_efficiency <= 1.0 + 1e-9);
    }

    #[test]
    fn replicate_is_parallel_and_deterministic() {
        let world = World::evaluation();
        let cfg = StrategyConfig::exclusive(StrategyKind::FirstFit);
        let spec_of = |seed| WorkloadSpec {
            n_jobs: 30,
            ..world.online_spec(seed)
        };
        let a = world.replicate(&cfg, &seeds(3), spec_of);
        let b = world.replicate(&cfg, &seeds(3), spec_of);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.makespan, y.makespan);
        }
    }

    #[test]
    fn mean_of_works() {
        let world = World::evaluation();
        let cfg = StrategyConfig::exclusive(StrategyKind::Fcfs);
        let spec_of = |seed| WorkloadSpec {
            n_jobs: 10,
            ..world.online_spec(seed)
        };
        let ms = world.replicate(&cfg, &seeds(2), spec_of);
        let mean = mean_of(&ms, |m| m.jobs as f64);
        assert_eq!(mean, 10.0);
    }
}
