#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! **F2 — pairwise co-run matrix.** The 8×8 heatmap of combined node
//! throughput for every mini-app pair, plus each direction's rate. The
//! block structure (compute×memory bright, memory×memory dark) is what
//! the sharing strategies exploit.
//!
//! ```text
//! cargo run --release -p nodeshare-bench --bin exp_f2_pair_matrix
//! ```

use nodeshare_bench::{emit, World};
use nodeshare_metrics::Table;

fn main() {
    let world = World::evaluation();
    let names: Vec<String> = world.catalog.iter().map(|a| a.name.clone()).collect();

    // Combined-throughput heatmap.
    let mut header = vec!["combined".to_string()];
    header.extend(names.iter().cloned());
    let mut heat = Table::new(header);
    for a in world.catalog.iter() {
        let mut row = vec![a.name.clone()];
        for b in world.catalog.iter() {
            row.push(format!("{:.2}", world.pair.combined_throughput(a.id, b.id)));
        }
        heat.row(row);
    }

    // Per-direction rates (dilation⁻¹ of the row app next to the column app).
    let mut header = vec!["rate(row|col)".to_string()];
    header.extend(names.iter().cloned());
    let mut rates = Table::new(header);
    for a in world.catalog.iter() {
        let mut row = vec![a.name.clone()];
        for b in world.catalog.iter() {
            row.push(format!("{:.2}", world.pair.rate(a.id, b.id)));
        }
        rates.row(row);
    }

    let text = format!(
        "F2 — pairwise co-run matrix (SMT-2 lane sharing)\n\n\
         combined node throughput (1.0 = exclusive node; 2.0 = free co-residency):\n{}\n\
         per-app rate when co-resident (row app next to column app):\n{}",
        heat.render(),
        rates.render()
    );
    emit("exp_f2_pair_matrix", &text, Some(&heat.to_csv()));
}
