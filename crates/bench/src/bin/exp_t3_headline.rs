#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! **T3 — headline reproduction.** CoBackfill vs. standard (exclusive
//! EASY) allocation on the saturated evaluation campaign:
//!
//! * computational-efficiency gain (paper: **+19%**),
//! * scheduling-efficiency gain (paper: **+25.2%**),
//! * co-allocation overhead (paper: **≈ none**).
//!
//! ```text
//! cargo run --release -p nodeshare-bench --bin exp_t3_headline
//! ```

use nodeshare_bench::{emit, mean_of, seeds, World};
use nodeshare_core::{StrategyConfig, StrategyKind};
use nodeshare_metrics::{pct, relative_gain, Table};

fn main() {
    let world = World::evaluation();
    let reps = seeds(5);
    let spec_of = |seed| world.saturated_spec(seed);

    let base_cfg = StrategyConfig::exclusive(StrategyKind::EasyBackfill);
    let co_cfg = StrategyConfig::sharing(StrategyKind::CoBackfill);
    let base = world.replicate(&base_cfg, &reps, spec_of);
    let co = world.replicate(&co_cfg, &reps, spec_of);

    let e_comp_base = mean_of(&base, |m| m.computational_efficiency);
    let e_comp_co = mean_of(&co, |m| m.computational_efficiency);
    let e_sched_base = mean_of(&base, |m| m.scheduling_efficiency);
    let e_sched_co = mean_of(&co, |m| m.scheduling_efficiency);
    let dil_co = mean_of(&co, |m| m.dilation.median);
    let kills_co = mean_of(&co, |m| m.killed as f64);
    let shared = mean_of(&co, |m| m.shared_fraction);
    let wait_base = mean_of(&base, |m| m.wait.mean);
    let wait_co = mean_of(&co, |m| m.wait.mean);
    let mk_base = mean_of(&base, |m| m.makespan);
    let mk_co = mean_of(&co, |m| m.makespan);

    let mut t = Table::new(vec!["quantity", "paper", "measured"]);
    t.row(vec![
        "computational efficiency gain".to_string(),
        "+19.0%".to_string(),
        pct(relative_gain(e_comp_co, e_comp_base)),
    ]);
    t.row(vec![
        "scheduling efficiency gain".to_string(),
        "+25.2%".to_string(),
        pct(relative_gain(e_sched_co, e_sched_base)),
    ]);
    t.row(vec![
        "co-allocation overhead (median dilation)".to_string(),
        "none".to_string(),
        format!("{:.3}x", dil_co),
    ]);
    t.row(vec![
        "walltime kills caused by sharing".to_string(),
        "none".to_string(),
        format!("{kills_co:.1}/campaign"),
    ]);
    let text = format!(
        "T3 — headline: CoBackfill vs standard allocation (EASY), saturated campaign\n\
         {} replications x 1000 jobs, 128 nodes\n\n{}\n\
         detail: E_comp {:.3} -> {:.3} | E_sched {:.3} -> {:.3} | \
         makespan {:.1}h -> {:.1}h | mean wait {:.0}m -> {:.0}m | shared node-time {}\n",
        reps.len(),
        t.render(),
        e_comp_base,
        e_comp_co,
        e_sched_base,
        e_sched_co,
        mk_base / 3600.0,
        mk_co / 3600.0,
        wait_base / 60.0,
        wait_co / 60.0,
        pct(shared),
    );
    emit("exp_t3_headline", &text, Some(&t.to_csv()));
}
