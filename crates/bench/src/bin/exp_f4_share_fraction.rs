#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! **F4 — share-fraction sweep.** How the efficiency gains scale with
//! the fraction of jobs that opt into sharing (the paper's deployment
//! knob: users/admins whitelist applications gradually).
//!
//! ```text
//! cargo run --release -p nodeshare-bench --bin exp_f4_share_fraction
//! ```

use nodeshare_bench::{emit, mean_of, seeds, World};
use nodeshare_core::{StrategyConfig, StrategyKind};
use nodeshare_metrics::{pct, relative_gain, Table};

fn main() {
    let world = World::evaluation();
    let reps = seeds(3);
    let co = StrategyConfig::sharing(StrategyKind::CoBackfill);
    let easy = StrategyConfig::exclusive(StrategyKind::EasyBackfill);

    // Baseline: nothing shares.
    let base = world.replicate(&easy, &reps, |s| {
        let mut spec = world.saturated_spec(s);
        spec.share_fraction = 0.0;
        spec
    });
    let base_comp = mean_of(&base, |m| m.computational_efficiency);
    let base_sched = mean_of(&base, |m| m.scheduling_efficiency);

    let mut t = Table::new(vec![
        "share-eligible",
        "E_comp gain",
        "E_sched gain",
        "shared node-time",
        "mean wait(m)",
    ]);
    for frac in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let ms = world.replicate(&co, &reps, |s| {
            let mut spec = world.saturated_spec(s);
            spec.share_fraction = frac;
            spec
        });
        t.row(vec![
            format!("{:.0}%", frac * 100.0),
            pct(relative_gain(
                mean_of(&ms, |m| m.computational_efficiency),
                base_comp,
            )),
            pct(relative_gain(
                mean_of(&ms, |m| m.scheduling_efficiency),
                base_sched,
            )),
            pct(mean_of(&ms, |m| m.shared_fraction)),
            format!("{:.0}", mean_of(&ms, |m| m.wait.mean) / 60.0),
        ]);
    }
    let text = format!(
        "F4 — CoBackfill gains vs share-eligible job fraction \
         (saturated campaign, {} replications; baseline: exclusive EASY)\n\n{}\n\
         expected shape: monotone growth; most of the benefit already at partial adoption.\n",
        reps.len(),
        t.render()
    );
    emit("exp_f4_share_fraction", &text, Some(&t.to_csv()));
}
