#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! **F10 — who pays for sharing? (extension).** Per-application dilation
//! and wait outcomes under CoBackfill, plus Jain's fairness index over
//! per-user slowdowns for both strategies. Sharing must not buy its
//! efficiency by taxing one application class or one user population.
//!
//! ```text
//! cargo run --release -p nodeshare-bench --bin exp_f10_fairness
//! ```

use nodeshare_bench::{emit, World};
use nodeshare_core::{StrategyConfig, StrategyKind};
use nodeshare_metrics::{by_app, pct, user_slowdown_fairness, Table};

fn main() {
    let world = World::evaluation();
    let workload = world.saturated_spec(42).generate(&world.catalog);

    let (easy_out, easy_m) = world.run_strategy(
        &workload,
        &StrategyConfig::exclusive(StrategyKind::EasyBackfill),
    );
    let (co_out, co_m) = world.run_strategy(
        &workload,
        &StrategyConfig::sharing(StrategyKind::CoBackfill),
    );

    let mut t = Table::new(vec![
        "app",
        "class",
        "jobs",
        "shared",
        "dil p50",
        "dil p95",
        "wait easy(m)",
        "wait co(m)",
    ]);
    let easy_apps = by_app(&easy_out.records);
    let co_apps = by_app(&co_out.records);
    for app in world.catalog.iter() {
        let co_g = &co_apps[&app.id];
        let easy_g = &easy_apps[&app.id];
        t.row(vec![
            app.name.clone(),
            app.class.label().to_string(),
            co_g.jobs.to_string(),
            pct(co_g.shared_fraction),
            format!("{:.2}", co_g.dilation.median),
            format!("{:.2}", co_g.dilation.p95),
            format!("{:.0}", easy_g.wait.mean / 60.0),
            format!("{:.0}", co_g.wait.mean / 60.0),
        ]);
    }

    let jain_easy = user_slowdown_fairness(&easy_out.records);
    let jain_co = user_slowdown_fairness(&co_out.records);

    let text = format!(
        "F10 — per-application outcomes under CoBackfill (saturated campaign, 1000 jobs)\n\n{}\n\
         Jain fairness over per-user mean slowdowns: easy {:.3} -> co-backfill {:.3}\n\
         campaign waits: easy {:.0} min -> co {:.0} min (everyone gains; dilation is the price\n\
         the co-allocated pay, bounded by the pairing threshold)\n",
        t.render(),
        jain_easy,
        jain_co,
        easy_m.wait.mean / 60.0,
        co_m.wait.mean / 60.0,
    );
    emit("exp_f10_fairness", &text, Some(&t.to_csv()));
}
