#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! **F14 — SMT co-scheduling vs gang time-slicing (extension).** SLURM's
//! own oversubscription alternative is `OverSubscribe=FORCE` with gang
//! scheduling: two jobs time-slice a node, each getting half the machine
//! minus context-switch overhead — app-agnostic but throughput-neutral.
//! This experiment runs the *same* CoBackfill skeleton over both
//! mechanisms and asks where the paper's SMT lane sharing actually earns
//! its complexity.
//!
//! ```text
//! cargo run --release -p nodeshare-bench --bin exp_f14_gang_vs_smt
//! ```

use nodeshare_bench::{emit, mean_of, seeds, World};
use nodeshare_core::{Backfill, Pairing, PairingPolicy, StrategyConfig, StrategyKind};
use nodeshare_metrics::{pct, relative_gain, CampaignMetrics, Table};
use nodeshare_perf::{CoRunTruth, Predictor};
use rayon::prelude::*;

fn main() {
    let world = World::evaluation();
    let reps = seeds(3);
    const SLICE_OVERHEAD: f64 = 0.05;

    // Gang truth + the matching exact predictor: every pairing runs at
    // (1-ε)/2, so the scheduler predicts it pessimistically-but-exactly
    // and accepts any pairing (compatibility is meaningless here).
    let gang_truth = CoRunTruth::time_slicing(&world.catalog, SLICE_OVERHEAD);
    let gang_rate = (1.0 - SLICE_OVERHEAD) / 2.0;

    let run = |cfg: &StrategyConfig, truth: &CoRunTruth, grace: f64| -> Vec<CampaignMetrics> {
        reps.par_iter()
            .map(|&seed| {
                let workload = world.saturated_spec(seed).generate(&world.catalog);
                let mut config = world.config();
                config.shared_walltime_grace = grace;
                let mut sched = cfg.build(&world.catalog, &world.model);
                let out = nodeshare_engine::run(&workload, truth, sched.as_mut(), &config);
                assert!(out.complete());
                out.metrics(&world.cluster)
            })
            .collect()
    };

    let easy = StrategyConfig::exclusive(StrategyKind::EasyBackfill);
    let smt = StrategyConfig::sharing(StrategyKind::CoBackfill);

    let base = run(&easy, &world.matrix, 1.5);
    let smt_ms = run(&smt, &world.matrix, 1.5);
    // Gang shares for responsiveness, not throughput: negative net-gain
    // floor admits every slice. Dilation is exactly 2/(1-ε); grant enough
    // grace to avoid kills.
    let gang_ms: Vec<CampaignMetrics> = reps
        .par_iter()
        .map(|&seed| {
            let workload = world.saturated_spec(seed).generate(&world.catalog);
            let mut config = world.config();
            config.shared_walltime_grace = 2.0 / (1.0 - SLICE_OVERHEAD) + 0.2;
            let pairing = Pairing::new(
                PairingPolicy::Any,
                Predictor::Pessimistic { rate: gang_rate },
            )
            .with_net_gain_floor(f64::NEG_INFINITY);
            let mut sched = Backfill::co(pairing);
            let out = nodeshare_engine::run(&workload, &gang_truth, &mut sched, &config);
            assert!(out.complete());
            out.metrics(&world.cluster)
        })
        .collect();

    let base_comp = mean_of(&base, |m| m.computational_efficiency);
    let base_sched = mean_of(&base, |m| m.scheduling_efficiency);
    let mut t = Table::new(vec![
        "mechanism",
        "E_comp gain",
        "E_sched gain",
        "wait:mean(m)",
        "dil p95",
        "shared",
        "kills",
    ]);
    for (label, ms) in [
        ("exclusive (easy)", &base),
        ("SMT lane sharing (paper)", &smt_ms),
        ("gang time-slicing", &gang_ms),
    ] {
        t.row(vec![
            label.to_string(),
            pct(relative_gain(
                mean_of(ms, |m| m.computational_efficiency),
                base_comp,
            )),
            pct(relative_gain(
                mean_of(ms, |m| m.scheduling_efficiency),
                base_sched,
            )),
            format!("{:.0}", mean_of(ms, |m| m.wait.mean) / 60.0),
            format!("{:.2}", mean_of(ms, |m| m.dilation.p95)),
            pct(mean_of(ms, |m| m.shared_fraction)),
            format!("{:.1}", mean_of(ms, |m| m.killed as f64)),
        ]);
    }
    let text = format!(
        "F14 — SMT lane sharing vs gang time-slicing under the same CoBackfill \
         skeleton\n(saturated campaign, {} replications; slice overhead {}%)\n\n{}\n\
         reading: gang scheduling cuts waits (anything can pair) but is\n\
         throughput-NEGATIVE — each slice pays the overhead, so machine\n\
         efficiency drops below exclusive. SMT lane sharing is the only\n\
         mechanism of the two that adds throughput, because complementary\n\
         jobs genuinely overlap resource use. This is the paper's case in\n\
         one table.\n",
        reps.len(),
        SLICE_OVERHEAD * 100.0,
        t.render()
    );
    emit("exp_f14_gang_vs_smt", &text, Some(&t.to_csv()));
}
