#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! **F3 — efficiency vs. load.** Sweeps the arrival intensity from well
//! below saturation to well above it and plots the scheduling-efficiency
//! and wait-time advantage of CoBackfill over EASY. The expected shape:
//! sharing gains grow with load (an uncontended machine has nothing to
//! share for) and flatten once the machine saturates.
//!
//! Runs as a declarative campaign — every load factor is a preset axis
//! entry, and the (strategy × seed × preset) grid is sharded over a
//! worker pool with a deterministic merge, so the table is bit-identical
//! under `--serial`, `--jobs 1`, or `--jobs 8`.
//!
//! ```text
//! cargo run --release -p nodeshare-bench --bin exp_f3_load_sweep -- [--jobs N|--serial] [--quick]
//! ```

use nodeshare_bench::campaign::{
    exit_on_failures, run_campaign, write_campaign_summary, write_cell_table, CampaignSpec,
    CellOptions, PresetVariant,
};
use nodeshare_bench::orchestrator::CampaignCli;
use nodeshare_bench::{emit, mean_of, seeds, World};
use nodeshare_core::{StrategyConfig, StrategyKind};
use nodeshare_metrics::{pct, relative_gain, Table};

fn main() {
    let cli = CampaignCli::parse();
    let world = World::evaluation();
    // Offered load ≈ 1.0 near rate 0.0047 (see WorkloadSpec::evaluation).
    let base_rate = 0.0047;
    let factors: &[f64] = if cli.quick {
        &[0.7, 1.0, 1.5]
    } else {
        &[0.5, 0.7, 0.85, 1.0, 1.15, 1.3, 1.5, 1.7]
    };
    let n_jobs = if cli.quick { 80 } else { 600 };
    let n_seeds = if cli.quick { 2 } else { 3 };

    let spec = CampaignSpec::on_evaluation_cluster(
        "f3",
        factors
            .iter()
            .map(|&f| PresetVariant {
                n_jobs: Some(n_jobs),
                arrival_rate: Some(base_rate * f),
                ..PresetVariant::online(format!("{f:.2}x"))
            })
            .collect(),
        vec![
            StrategyConfig::exclusive(StrategyKind::EasyBackfill).into(),
            StrategyConfig::sharing(StrategyKind::CoBackfill).into(),
        ],
        seeds(n_seeds),
    );
    let run = run_campaign(&world, &spec, cli.parallelism, &CellOptions::default())
        .unwrap_or_else(|failures| exit_on_failures(failures));

    let mut t = Table::new(vec![
        "load",
        "E_sched easy",
        "E_sched co",
        "gain",
        "wait easy(m)",
        "wait co(m)",
        "shared",
    ]);
    for (p, pv) in spec.presets.iter().enumerate() {
        let me = run.seed_metrics(p, 0, 0);
        let mc = run.seed_metrics(p, 0, 1);
        let es_e = mean_of(&me, |m| m.scheduling_efficiency);
        let es_c = mean_of(&mc, |m| m.scheduling_efficiency);
        t.row(vec![
            pv.label.clone(),
            format!("{es_e:.3}"),
            format!("{es_c:.3}"),
            pct(relative_gain(es_c, es_e)),
            format!("{:.0}", mean_of(&me, |m| m.wait.mean) / 60.0),
            format!("{:.0}", mean_of(&mc, |m| m.wait.mean) / 60.0),
            pct(mean_of(&mc, |m| m.shared_fraction)),
        ]);
    }
    let quick_note = if cli.quick { " [quick]" } else { "" };
    let text = format!(
        "F3 — CoBackfill gain vs offered load ({} replications x {} jobs per point){}\n\n{}\n\
         expected shape: gains grow with load, flatten at deep saturation.\n",
        spec.seeds.len(),
        n_jobs,
        quick_note,
        t.render()
    );
    emit("exp_f3_load_sweep", &text, Some(&t.to_csv()));
    write_cell_table("exp_f3_load_sweep", &run);
    write_campaign_summary("exp_f3_load_sweep", &run);
}
