//! **F3 — efficiency vs. load.** Sweeps the arrival intensity from well
//! below saturation to well above it and plots the scheduling-efficiency
//! and wait-time advantage of CoBackfill over EASY. The expected shape:
//! sharing gains grow with load (an uncontended machine has nothing to
//! share for) and flatten once the machine saturates.
//!
//! ```text
//! cargo run --release -p nodeshare-bench --bin exp_f3_load_sweep
//! ```

use nodeshare_bench::{emit, mean_of, seeds, World};
use nodeshare_core::{StrategyConfig, StrategyKind};
use nodeshare_metrics::{pct, relative_gain, Table};
use nodeshare_workload::ArrivalProcess;

fn main() {
    let world = World::evaluation();
    let reps = seeds(3);
    // Offered load ≈ 1.0 near rate 0.0047 (see WorkloadSpec::evaluation).
    let base_rate = 0.0047;
    let factors = [0.5, 0.7, 0.85, 1.0, 1.15, 1.3, 1.5, 1.7];

    let easy = StrategyConfig::exclusive(StrategyKind::EasyBackfill);
    let co = StrategyConfig::sharing(StrategyKind::CoBackfill);

    let mut t = Table::new(vec![
        "load",
        "E_sched easy",
        "E_sched co",
        "gain",
        "wait easy(m)",
        "wait co(m)",
        "shared",
    ]);
    for &f in &factors {
        let spec_of = |seed| {
            let mut s = world.online_spec(seed);
            s.arrival = ArrivalProcess::Poisson {
                rate: base_rate * f,
            };
            s.n_jobs = 600;
            s
        };
        let me = world.replicate(&easy, &reps, spec_of);
        let mc = world.replicate(&co, &reps, spec_of);
        let es_e = mean_of(&me, |m| m.scheduling_efficiency);
        let es_c = mean_of(&mc, |m| m.scheduling_efficiency);
        t.row(vec![
            format!("{f:.2}x"),
            format!("{es_e:.3}"),
            format!("{es_c:.3}"),
            pct(relative_gain(es_c, es_e)),
            format!("{:.0}", mean_of(&me, |m| m.wait.mean) / 60.0),
            format!("{:.0}", mean_of(&mc, |m| m.wait.mean) / 60.0),
            pct(mean_of(&mc, |m| m.shared_fraction)),
        ]);
    }
    let text = format!(
        "F3 — CoBackfill gain vs offered load ({} replications x 600 jobs per point)\n\n{}\n\
         expected shape: gains grow with load, flatten at deep saturation.\n",
        reps.len(),
        t.render()
    );
    emit("exp_f3_load_sweep", &text, Some(&t.to_csv()));
}
