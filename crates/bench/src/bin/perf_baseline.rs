#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! **Machine-readable scheduler performance baseline.**
//!
//! Times fixed saturated campaigns (128 evaluation nodes) under the
//! strategies whose hot paths this workspace optimizes — EASY backfill,
//! CoBackfill, and conservative backfill — and writes the results as
//! JSON so CI can detect throughput regressions mechanically.
//!
//! ```text
//! # full baseline (slow; regenerates BENCH_sched.json at the repo root,
//! # including the quick campaigns the CI smoke compares against)
//! cargo run --release -p nodeshare-bench --bin perf_baseline
//!
//! # CI smoke: small campaigns only, compare against the committed file
//! cargo run --release -p nodeshare-bench --bin perf_baseline -- \
//!     --quick --check BENCH_sched.json --out /tmp/BENCH_sched.json
//! ```
//!
//! Options:
//!
//! * `--quick` — run only the small campaigns (seconds, not minutes).
//!   This also skips the million-job streamed EASY campaign that a full
//!   baseline appends (mode `stream`): one million generated jobs pulled
//!   through the chunked [`nodeshare_workload::JobSource`] in lean mode,
//!   recording events/sec *and* the process peak RSS so `--check` can
//!   fail a run whose streamed memory footprint stopped being bounded.
//! * `--out FILE` — where to write the JSON (default `BENCH_sched.json`).
//! * `--check FILE` — read a previously committed baseline and **exit
//!   non-zero** when any matching campaign (same
//!   strategy/mode/jobs/nodes/reps) regresses below the baseline's
//!   statistical bound, or when a baseline campaign of the current run's
//!   mode is missing from the fresh run entirely (a silently dropped
//!   campaign must not pass the gate).
//! * `--reference` — time the retained pre-optimization scheduler
//!   implementations instead (see `StrategyConfig::build_reference`), so
//!   the fast-path speedup can be measured on one build.
//! * `--campaign` — additionally time the saturated multi-seed campaign
//!   through the parallel orchestrator at 1 worker and at every
//!   available core, recording aggregate events/sec per worker count
//!   (mode `campaign`; the `reps` field carries the worker count and the
//!   top-level `cores` field the machine's parallelism). These entries
//!   are informational on other machines — the mode-scoped coverage gate
//!   never requires them during a `--quick` CI smoke.
//! * `--only LABEL` — restrict the grid to one strategy (e.g. time just
//!   the conservative reference without paying for the 20 000-job
//!   backfill campaigns).
//! * `--samples N` — timing replications per campaign (default 3). The
//!   committed samples give `--check` a spread to gate on: a fresh run
//!   fails when it lands below `mean - 3·max(σ, 0.10·mean)` of the
//!   baseline samples (the 10 % floor keeps near-deterministic campaigns
//!   from gating on vanishing σ).
//! * `--reps N` — additionally time N independent replications of each
//!   campaign executed in parallel with Rayon, reporting aggregate
//!   events/sec (demonstrates multi-core scaling of the harness).
//!
//! Timing methodology: audit and telemetry are off (the committed numbers
//! are release-mode hot-path figures), workload generation is outside the
//! timed region, and each sample runs the whole campaign — scheduler
//! construction is cheap and campaigns are long enough to dominate noise.
//! The event count must be identical across samples (the simulation is
//! deterministic; a drift is a bug, not noise) and outcomes stay
//! bit-identical to the audited runs; only the clock is new here.

use nodeshare_bench::campaign::{run_campaign, CampaignSpec, CellOptions, PresetVariant};
use nodeshare_bench::orchestrator::Parallelism;
use nodeshare_bench::{seeds, World};
use nodeshare_core::{StrategyConfig, StrategyKind};
use nodeshare_engine::{run, run_streamed, SimConfig};
use rayon::prelude::*;
use std::fmt::Write as _;
use std::time::Instant;

/// One timed campaign.
struct Entry {
    strategy: &'static str,
    /// "full", "quick", "campaign", or "stream" — which grid the entry
    /// belongs to.
    mode: &'static str,
    jobs: u32,
    nodes: u32,
    reps: u32,
    events: u64,
    wall_s: f64,
    /// Mean over `samples`.
    events_per_sec: f64,
    /// Per-sample events/sec, in run order.
    samples: Vec<f64>,
    peak_queue_depth: u64,
    /// Process peak RSS (`VmHWM`) in MiB after the campaign, 0 when
    /// unknown (non-Linux, or entries that don't gate on memory). Only
    /// the streamed entries record it: the point of the streamed path is
    /// that resident memory is bounded by queue depth, not job count, so
    /// a blow-up here means streaming silently re-materialized.
    peak_rss_mib: f64,
}

/// A parsed baseline entry (see [`parse_baseline`]).
struct BaselineEntry {
    strategy: String,
    /// `None` on legacy schema-1 files, which carried no per-entry mode.
    mode: Option<String>,
    jobs: u32,
    nodes: u32,
    reps: u32,
    events_per_sec: f64,
    /// Empty on legacy single-sample baselines.
    samples: Vec<f64>,
    /// 0 on entries (or legacy files) that never measured memory.
    peak_rss_mib: f64,
}

/// Peak resident set (`VmHWM`) of this process in MiB, or 0 when the
/// platform doesn't expose it. A process-lifetime high-water mark: read
/// it right after the campaign whose footprint is being gated.
fn process_peak_rss_mib() -> f64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    if let Some(kib) = rest
                        .split_whitespace()
                        .next()
                        .and_then(|v| v.parse::<f64>().ok())
                    {
                        return kib / 1024.0;
                    }
                }
            }
        }
    }
    0.0
}

/// The campaign grid: (label, config, full jobs, quick jobs, malleable
/// fraction). The adaptive entry runs with a third of the jobs carrying
/// reshape contracts so its timing covers the reshape hot path, not just
/// the EASY pass-through.
fn campaigns() -> Vec<(&'static str, StrategyConfig, u32, u32, f64)> {
    vec![
        (
            "easy-backfill",
            StrategyConfig::exclusive(StrategyKind::EasyBackfill),
            20_000,
            2_000,
            0.0,
        ),
        (
            "co-backfill",
            StrategyConfig::sharing(StrategyKind::CoBackfill),
            20_000,
            1_000,
            0.0,
        ),
        (
            "conservative",
            StrategyConfig::exclusive(StrategyKind::Conservative),
            4_000,
            500,
            0.0,
        ),
        (
            "adaptive",
            StrategyConfig::exclusive(StrategyKind::Adaptive),
            20_000,
            2_000,
            0.35,
        ),
    ]
}

/// Times one saturated campaign; audit/telemetry off so the clock sees
/// only the engine + policy hot path.
fn time_campaign(
    world: &World,
    cfg: &StrategyConfig,
    jobs: u32,
    malleable_fraction: f64,
    seed: u64,
    reference: bool,
) -> (u64, f64, u64) {
    let mut spec = world.saturated_spec(seed);
    spec.n_jobs = jobs as usize;
    spec.malleable_fraction = malleable_fraction;
    let workload = spec.generate(&world.catalog);
    let mut sim_cfg = SimConfig::new(world.cluster);
    sim_cfg.audit = false;
    let mut sched = if reference {
        cfg.build_reference(&world.catalog, &world.model)
    } else {
        cfg.build(&world.catalog, &world.model)
    };
    let started = Instant::now();
    let out = run(&workload, &world.matrix, sched.as_mut(), &sim_cfg);
    let wall = started.elapsed().as_secs_f64();
    assert!(
        out.complete(),
        "{}: {} jobs never scheduled",
        cfg.label(),
        out.unscheduled.len()
    );
    (
        out.events_processed,
        wall,
        out.queue_depth.max_value().max(0.0) as u64,
    )
}

/// Times `samples_n` replications of one campaign and folds them into an
/// [`Entry`]; the deterministic event count must not drift across
/// samples.
#[allow(clippy::too_many_arguments)]
fn sample_campaign(
    world: &World,
    label: &'static str,
    mode: &'static str,
    cfg: &StrategyConfig,
    jobs: u32,
    malleable_fraction: f64,
    nodes: u32,
    samples_n: u32,
    reference: bool,
) -> Entry {
    let mut samples = Vec::with_capacity(samples_n as usize);
    let mut walls = Vec::with_capacity(samples_n as usize);
    let mut events = 0u64;
    let mut peak = 0u64;
    for s in 0..samples_n.max(1) {
        let (ev, wall, pk) = time_campaign(world, cfg, jobs, malleable_fraction, 1_000, reference);
        if s == 0 {
            events = ev;
            peak = pk;
        } else {
            assert_eq!(
                ev, events,
                "{label}: event count drifted between samples — nondeterminism"
            );
        }
        samples.push(ev as f64 / wall.max(1e-9));
        walls.push(wall);
    }
    // detlint: allow(D4, wall-clock sample statistics; never a bit-compared artifact)
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    // detlint: allow(D4, wall-clock sample statistics; never a bit-compared artifact)
    let wall_mean = walls.iter().sum::<f64>() / walls.len() as f64;
    Entry {
        strategy: label,
        mode,
        jobs,
        nodes,
        reps: 1,
        events,
        wall_s: wall_mean,
        events_per_sec: mean,
        samples,
        peak_queue_depth: peak,
        peak_rss_mib: 0.0,
    }
}

fn measure(
    world: &World,
    quick: bool,
    reps: u32,
    reference: bool,
    samples_n: u32,
    only: Option<&str>,
) -> Vec<Entry> {
    let nodes = world.cluster.node_count;
    let mut entries = Vec::new();
    // A full baseline also times the quick grid, so one committed file
    // carries the campaigns the CI quick smoke checks against.
    let modes: &[&'static str] = if quick {
        &["quick"]
    } else {
        &["full", "quick"]
    };
    for &mode in modes {
        for (label, cfg, full_jobs, quick_jobs, mf) in campaigns() {
            if only.is_some_and(|o| o != label) {
                continue;
            }
            let jobs = if mode == "quick" {
                quick_jobs
            } else {
                full_jobs
            };
            eprintln!("timing {label} ({mode}): {jobs} jobs on {nodes} nodes x{samples_n} ...");
            entries.push(sample_campaign(
                world, label, mode, &cfg, jobs, mf, nodes, samples_n, reference,
            ));
            if reps > 1 {
                eprintln!("timing {label} ({mode}): {reps} parallel replications ...");
                let started = Instant::now();
                let per_rep: Vec<(u64, f64, u64)> = seeds(u64::from(reps))
                    .par_iter()
                    .map(|&seed| time_campaign(world, &cfg, jobs, mf, seed, reference))
                    .collect();
                let wall = started.elapsed().as_secs_f64();
                let events: u64 = per_rep.iter().map(|r| r.0).sum();
                let peak = per_rep.iter().map(|r| r.2).max().unwrap_or(0);
                let eps = events as f64 / wall.max(1e-9);
                entries.push(Entry {
                    strategy: label,
                    mode,
                    jobs,
                    nodes,
                    reps,
                    events,
                    wall_s: wall,
                    events_per_sec: eps,
                    samples: vec![eps],
                    peak_queue_depth: peak,
                    peak_rss_mib: 0.0,
                });
            }
        }
    }
    entries
}

/// Hand-written JSON (the vendored serde is a derive-marker stand-in;
/// structured output in this workspace is emitted directly). One entry
/// object per line, `samples` last so the line-oriented parser's scalar
/// field extraction never crosses the array.
fn to_json(entries: &[Entry], quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": 2,");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "baseline" }
    );
    // Context for the campaign-mode entries: parallel speedup is a
    // property of the machine that produced the file.
    let _ = writeln!(out, "  \"cores\": {},", rayon::current_num_threads());
    let _ = writeln!(out, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let samples = e
            .samples
            .iter()
            .map(|s| format!("{s:.0}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "    {{\"strategy\": \"{}\", \"mode\": \"{}\", \"jobs\": {}, \"nodes\": {}, \
             \"reps\": {}, \"events\": {}, \"wall_s\": {:.3}, \"events_per_sec\": {:.0}, \
             \"peak_queue_depth\": {}, \"peak_rss_mib\": {:.0}, \
             \"samples\": [{samples}]}}{comma}",
            e.strategy,
            e.mode,
            e.jobs,
            e.nodes,
            e.reps,
            e.events,
            e.wall_s,
            e.events_per_sec,
            e.peak_queue_depth,
            e.peak_rss_mib,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Minimal field extraction from the baseline file this binary itself
/// writes (one entry object per line — see [`to_json`]). Accepts legacy
/// schema-1 lines (no `mode`, no `samples`) for older committed files.
fn parse_baseline(text: &str) -> Vec<BaselineEntry> {
    fn field(line: &str, key: &str) -> Option<String> {
        let pat = format!("\"{key}\": ");
        let start = line.find(&pat)? + pat.len();
        let rest = &line[start..];
        let rest = rest.strip_prefix('"').unwrap_or(rest);
        let end = rest.find([',', '"', '}', ']']).unwrap_or(rest.len());
        Some(rest[..end].trim().to_string())
    }
    fn samples(line: &str) -> Vec<f64> {
        let Some(start) = line.find("\"samples\": [") else {
            return Vec::new();
        };
        let rest = &line[start + "\"samples\": [".len()..];
        let Some(end) = rest.find(']') else {
            return Vec::new();
        };
        rest[..end]
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect()
    }
    text.lines()
        .filter(|l| l.contains("\"strategy\""))
        .filter_map(|l| {
            Some(BaselineEntry {
                strategy: field(l, "strategy")?,
                mode: field(l, "mode"),
                jobs: field(l, "jobs")?.parse().ok()?,
                nodes: field(l, "nodes")?.parse().ok()?,
                reps: field(l, "reps")?.parse().ok()?,
                events_per_sec: field(l, "events_per_sec")?.parse().ok()?,
                samples: samples(l),
                peak_rss_mib: field(l, "peak_rss_mib")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0.0),
            })
        })
        .collect()
}

/// Whether a fresh entry and a baseline entry describe the same
/// campaign. Legacy baselines carry no mode; they match on shape alone.
fn matches(e: &Entry, b: &BaselineEntry) -> bool {
    b.strategy == e.strategy
        && b.mode.as_deref().is_none_or(|m| m == e.mode)
        && b.jobs == e.jobs
        && b.nodes == e.nodes
        && b.reps == e.reps
}

/// Compares `entries` against a committed baseline; returns the failure
/// messages (empty = pass).
///
/// Three gates:
///
/// * **Throughput.** With baseline samples, the bound is statistical:
///   fail below `mean − 3·max(σ, 0.10·mean)` of the recorded samples.
///   Legacy single-number baselines fall back to the blanket >2×
///   (ratio < 0.5) gate.
/// * **Memory.** When both sides measured peak RSS (streamed entries),
///   fail if the fresh run's high-water mark exceeds 1.5× the
///   baseline's — the streamed path's memory must stay a function of
///   queue depth, never of job count, and a materialization regression
///   shows up as a multiple, not a few percent.
/// * **Coverage.** Every baseline campaign of a mode this run measured
///   must have a fresh counterpart; a campaign that silently vanished
///   from the grid fails the check rather than being skipped.
fn check_against(entries: &[Entry], baseline: &[BaselineEntry]) -> Vec<String> {
    let mut failures = Vec::new();
    for e in entries {
        if e.peak_rss_mib > 0.0 {
            if let Some(b) = baseline
                .iter()
                .find(|b| matches(e, b) && b.peak_rss_mib > 0.0)
            {
                println!(
                    "check {}/{} jobs ({}): peak RSS {:.0} MiB vs baseline {:.0} MiB (limit 1.5x)",
                    e.strategy, e.jobs, e.mode, e.peak_rss_mib, b.peak_rss_mib
                );
                if e.peak_rss_mib > 1.5 * b.peak_rss_mib {
                    failures.push(format!(
                        "{} ({} jobs, {}) memory blow-up: peak RSS {:.0} MiB exceeds 1.5x \
                         baseline {:.0} MiB — streaming is no longer bounded",
                        e.strategy, e.jobs, e.mode, e.peak_rss_mib, b.peak_rss_mib
                    ));
                }
            }
        }
        match baseline.iter().find(|b| matches(e, b)) {
            Some(b) if b.samples.len() >= 2 => {
                let n = b.samples.len() as f64;
                // detlint: allow(D4, wall-clock sample statistics; never a bit-compared artifact)
                let mean = b.samples.iter().sum::<f64>() / n;
                let var = b
                    .samples
                    .iter()
                    .map(|s| (s - mean) * (s - mean))
                    // detlint: allow(D4, wall-clock sample statistics; never a bit-compared artifact)
                    .sum::<f64>()
                    / n;
                let sigma = var.sqrt().max(0.10 * mean);
                let bound = mean - 3.0 * sigma;
                println!(
                    "check {}/{} jobs/reps={}: {:.0} events/s vs baseline mean {:.0} - 3σ bound {:.0}",
                    e.strategy, e.jobs, e.reps, e.events_per_sec, mean, bound
                );
                if e.events_per_sec < bound {
                    failures.push(format!(
                        "{} ({} jobs, reps={}) regressed: {:.0} events/s below mean-3σ bound \
                         {:.0} (baseline mean {:.0} over {} samples)",
                        e.strategy,
                        e.jobs,
                        e.reps,
                        e.events_per_sec,
                        bound,
                        mean,
                        b.samples.len()
                    ));
                }
            }
            Some(b) => {
                let base_eps = b.events_per_sec;
                let ratio = e.events_per_sec / base_eps.max(1e-9);
                println!(
                    "check {}/{} jobs/reps={}: {:.0} events/s vs baseline {:.0} ({:.2}x, legacy gate)",
                    e.strategy, e.jobs, e.reps, e.events_per_sec, base_eps, ratio
                );
                if ratio < 0.5 {
                    failures.push(format!(
                        "{} ({} jobs, reps={}) regressed >2x: {:.0} events/s vs baseline {:.0}",
                        e.strategy, e.jobs, e.reps, e.events_per_sec, base_eps
                    ));
                }
            }
            None => println!(
                "check {}/{} jobs/reps={}: no matching baseline entry, skipped",
                e.strategy, e.jobs, e.reps
            ),
        }
    }
    // Coverage gate: a baseline campaign of a measured mode with no
    // fresh counterpart means the run silently dropped it.
    let measured_modes: Vec<&str> = entries.iter().map(|e| e.mode).collect();
    for b in baseline {
        let Some(mode) = b.mode.as_deref() else {
            continue; // legacy entries carry no mode to scope the check
        };
        if !measured_modes.contains(&mode) {
            continue; // e.g. full-grid baselines during a --quick smoke
        }
        if !entries.iter().any(|e| matches(e, b)) {
            failures.push(format!(
                "baseline entry {} ({mode}, {} jobs, reps={}) missing from the fresh run — \
                 campaign dropped without updating the baseline",
                b.strategy, b.jobs, b.reps
            ));
        }
    }
    failures
}

/// Times the saturated multi-seed co-backfill campaign through the
/// parallel orchestrator at one worker and at every available core,
/// recording aggregate events/sec per worker count (the `reps` field
/// carries the worker count). The speedup these entries document is
/// machine-dependent — the committed file's top-level `cores` field says
/// how many cores produced it — so the CI quick smoke never gates on
/// `campaign`-mode entries (its `--quick` run measures mode "quick"
/// only, and the coverage gate is mode-scoped).
fn measure_orchestrator(world: &World, quick: bool) -> Vec<Entry> {
    let n_jobs: u32 = if quick { 300 } else { 1_500 };
    let spec = CampaignSpec::on_evaluation_cluster(
        "perf",
        vec![PresetVariant {
            n_jobs: Some(n_jobs as usize),
            ..PresetVariant::saturated("saturated")
        }],
        vec![StrategyConfig::sharing(StrategyKind::CoBackfill).into()],
        seeds(6),
    );
    let mut workers = vec![1usize, rayon::current_num_threads()];
    workers.dedup();
    let mut entries = Vec::new();
    let mut serial_wall = None;
    for w in workers {
        eprintln!(
            "timing campaign orchestrator: {} cells x {n_jobs} jobs at {w} worker(s) ...",
            spec.n_cells()
        );
        let started = Instant::now();
        let run = run_campaign(world, &spec, Parallelism::Jobs(w), &CellOptions::default())
            .unwrap_or_else(|f| panic!("perf campaign failed: {}", f[0]));
        let wall = started.elapsed().as_secs_f64();
        let events: u64 = run.results.iter().map(|r| r.outcome.events_processed).sum();
        let peak = run
            .results
            .iter()
            .map(|r| r.outcome.queue_depth.max_value().max(0.0) as u64)
            .max()
            .unwrap_or(0);
        let eps = events as f64 / wall.max(1e-9);
        if w == 1 {
            serial_wall = Some(wall);
        } else if let Some(base) = serial_wall {
            eprintln!(
                "campaign speedup at {w} workers: {:.2}x over 1 worker",
                base / wall.max(1e-9)
            );
        }
        entries.push(Entry {
            strategy: "campaign-co-backfill",
            mode: "campaign",
            jobs: n_jobs,
            nodes: world.cluster.node_count,
            reps: w as u32,
            events,
            wall_s: wall,
            events_per_sec: eps,
            samples: vec![eps],
            peak_queue_depth: peak,
            peak_rss_mib: 0.0,
        });
    }
    entries
}

/// Times the million-job streamed EASY campaign: jobs are pulled from
/// the generator source chunk by chunk (8 192 at a time), the simulation
/// runs in lean mode (counters + occupancy accumulators, no per-job
/// records), and the process peak RSS is recorded alongside events/sec.
/// Only queued + in-flight jobs are ever resident, so `peak_rss_mib` is
/// a function of queue depth — not of the million — and `--check` gates
/// on it (mode `stream`; excluded from `--quick`, the mode-scoped
/// coverage gate never requires it there).
fn measure_streamed(world: &World) -> Entry {
    const STREAM_JOBS: u32 = 1_000_000;
    const CHUNK: usize = 8_192;
    // The ~90 % offered-load online mix: the queue drains, so depth (and
    // with it resident memory) stays bounded no matter how many jobs
    // flow through.
    let mut spec = world.online_spec(1_000);
    spec.n_jobs = STREAM_JOBS as usize;
    let cfg = StrategyConfig::exclusive(StrategyKind::EasyBackfill);
    let mut sched = cfg.build(&world.catalog, &world.model);
    let mut sim_cfg = SimConfig::new(world.cluster);
    sim_cfg.audit = false;
    sim_cfg.retain_detail = false;
    eprintln!(
        "timing easy-backfill (stream): {STREAM_JOBS} jobs, chunks of {CHUNK}, lean mode ..."
    );
    let mut source = spec.stream(&world.catalog, CHUNK);
    let started = Instant::now();
    let out = run_streamed(&mut source, &world.matrix, sched.as_mut(), &sim_cfg);
    let wall = started.elapsed().as_secs_f64();
    let rss = process_peak_rss_mib();
    assert!(
        out.complete(),
        "streamed campaign left {} jobs unscheduled",
        out.unscheduled.len()
    );
    assert_eq!(
        out.completed_jobs + out.rejected.len() as u64,
        u64::from(STREAM_JOBS),
        "streamed campaign lost jobs"
    );
    let eps = out.events_processed as f64 / wall.max(1e-9);
    eprintln!(
        "streamed: {} events in {wall:.1}s ({eps:.0} events/s), peak queue {:.0}, peak RSS {rss:.0} MiB",
        out.events_processed, out.peak_queue_depth
    );
    Entry {
        strategy: "easy-backfill",
        mode: "stream",
        jobs: STREAM_JOBS,
        nodes: world.cluster.node_count,
        reps: 1,
        events: out.events_processed,
        wall_s: wall,
        events_per_sec: eps,
        samples: vec![eps],
        peak_queue_depth: out.peak_queue_depth.max(0.0) as u64,
        peak_rss_mib: rss,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path = String::from("BENCH_sched.json");
    let mut check_path: Option<String> = None;
    let mut reps: u32 = 1;
    let mut samples_n: u32 = 3;
    let mut reference = false;
    let mut campaign = false;
    let mut only: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--reference" => reference = true,
            "--campaign" => campaign = true,
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            "--check" => check_path = Some(it.next().expect("--check needs a path").clone()),
            "--only" => only = Some(it.next().expect("--only needs a strategy label").clone()),
            "--samples" => {
                samples_n = it
                    .next()
                    .expect("--samples needs a count")
                    .parse()
                    .expect("--samples takes an integer");
            }
            "--reps" => {
                reps = it
                    .next()
                    .expect("--reps needs a count")
                    .parse()
                    .expect("--reps takes an integer");
            }
            other => panic!(
                "unknown option {other} \
                 (see --quick/--reference/--campaign/--only/--out/--check/--samples/--reps)"
            ),
        }
    }

    let world = World::evaluation();
    let mut entries = measure(&world, quick, reps, reference, samples_n, only.as_deref());
    if campaign {
        entries.extend(measure_orchestrator(&world, quick));
    }
    // The million-job streamed campaign rides the full baseline only:
    // it takes whole seconds and its point — RSS bounded by queue depth,
    // not job count — needs the million to mean anything.
    if !quick && only.as_deref().is_none_or(|o| o == "easy-backfill") && !reference {
        entries.push(measure_streamed(&world));
    }
    for e in &entries {
        println!(
            "{:>14} {:>5} jobs={:<7} reps={} events={:<8} wall={:>8.3}s {:>9.0} events/s \
             ({} samples) peak_queue={} peak_rss_mib={:.0}",
            e.strategy,
            e.mode,
            e.jobs,
            e.reps,
            e.events,
            e.wall_s,
            e.events_per_sec,
            e.samples.len(),
            e.peak_queue_depth,
            e.peak_rss_mib
        );
    }
    let json = to_json(&entries, quick);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");

    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let failures = check_against(&entries, &parse_baseline(&text));
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("PERF REGRESSION: {f}");
            }
            std::process::exit(1);
        }
        println!("perf check against {path}: OK");
    }
}
