//! **Machine-readable scheduler performance baseline.**
//!
//! Times fixed saturated campaigns (128 evaluation nodes) under the
//! strategies whose hot paths this workspace optimizes — EASY backfill,
//! CoBackfill, and conservative backfill — and writes the results as
//! JSON so CI can detect throughput regressions mechanically.
//!
//! ```text
//! # full baseline (slow; regenerates BENCH_sched.json at the repo root)
//! cargo run --release -p nodeshare-bench --bin perf_baseline
//!
//! # CI smoke: small campaigns only, compare against the committed file
//! cargo run --release -p nodeshare-bench --bin perf_baseline -- \
//!     --quick --check BENCH_sched.json --out /tmp/BENCH_sched.json
//! ```
//!
//! Options:
//!
//! * `--quick` — run only the small campaigns (seconds, not minutes).
//! * `--out FILE` — where to write the JSON (default `BENCH_sched.json`).
//! * `--check FILE` — read a previously committed baseline and **exit
//!   non-zero** when any matching campaign (same strategy/jobs/nodes/reps)
//!   now runs at less than half its recorded events/sec.
//! * `--reference` — time the retained pre-optimization scheduler
//!   implementations instead (see `StrategyConfig::build_reference`), so
//!   the fast-path speedup can be measured on one build.
//! * `--reps N` — additionally time N independent replications of each
//!   campaign executed in parallel with Rayon, reporting aggregate
//!   events/sec (demonstrates multi-core scaling of the harness).
//!
//! Timing methodology: audit and telemetry are off (the committed numbers
//! are release-mode hot-path figures), workload generation is outside the
//! timed region, and each campaign runs once — scheduler construction is
//! cheap and campaigns are long enough to dominate noise. Outcomes stay
//! bit-identical to the audited runs; only the clock is new here.

use nodeshare_bench::{seeds, World};
use nodeshare_core::{StrategyConfig, StrategyKind};
use nodeshare_engine::{run, SimConfig};
use rayon::prelude::*;
use std::fmt::Write as _;
use std::time::Instant;

/// One timed campaign.
struct Entry {
    strategy: &'static str,
    jobs: u32,
    nodes: u32,
    reps: u32,
    events: u64,
    wall_s: f64,
    events_per_sec: f64,
    peak_queue_depth: u64,
}

/// The campaign grid: (label, config, full jobs, quick jobs).
fn campaigns() -> Vec<(&'static str, StrategyConfig, u32, u32)> {
    vec![
        (
            "easy-backfill",
            StrategyConfig::exclusive(StrategyKind::EasyBackfill),
            20_000,
            2_000,
        ),
        (
            "co-backfill",
            StrategyConfig::sharing(StrategyKind::CoBackfill),
            20_000,
            1_000,
        ),
        (
            "conservative",
            StrategyConfig::exclusive(StrategyKind::Conservative),
            4_000,
            500,
        ),
    ]
}

/// Times one saturated campaign; audit/telemetry off so the clock sees
/// only the engine + policy hot path.
fn time_campaign(
    world: &World,
    cfg: &StrategyConfig,
    jobs: u32,
    seed: u64,
    reference: bool,
) -> (u64, f64, u64) {
    let mut spec = world.saturated_spec(seed);
    spec.n_jobs = jobs as usize;
    let workload = spec.generate(&world.catalog);
    let mut sim_cfg = SimConfig::new(world.cluster);
    sim_cfg.audit = false;
    let mut sched = if reference {
        cfg.build_reference(&world.catalog, &world.model)
    } else {
        cfg.build(&world.catalog, &world.model)
    };
    let started = Instant::now();
    let out = run(&workload, &world.matrix, sched.as_mut(), &sim_cfg);
    let wall = started.elapsed().as_secs_f64();
    assert!(
        out.complete(),
        "{}: {} jobs never scheduled",
        cfg.label(),
        out.unscheduled.len()
    );
    (
        out.events_processed,
        wall,
        out.queue_depth.max_value().max(0.0) as u64,
    )
}

fn measure(world: &World, quick: bool, reps: u32, reference: bool) -> Vec<Entry> {
    let nodes = world.cluster.node_count;
    let mut entries = Vec::new();
    for (label, cfg, full_jobs, quick_jobs) in campaigns() {
        let jobs = if quick { quick_jobs } else { full_jobs };
        eprintln!("timing {label}: {jobs} jobs on {nodes} nodes ...");
        let (events, wall, peak) = time_campaign(world, &cfg, jobs, 1_000, reference);
        entries.push(Entry {
            strategy: label,
            jobs,
            nodes,
            reps: 1,
            events,
            wall_s: wall,
            events_per_sec: events as f64 / wall.max(1e-9),
            peak_queue_depth: peak,
        });
        if reps > 1 {
            eprintln!("timing {label}: {reps} parallel replications ...");
            let started = Instant::now();
            let per_rep: Vec<(u64, f64, u64)> = seeds(u64::from(reps))
                .par_iter()
                .map(|&seed| time_campaign(world, &cfg, jobs, seed, reference))
                .collect();
            let wall = started.elapsed().as_secs_f64();
            let events: u64 = per_rep.iter().map(|r| r.0).sum();
            let peak = per_rep.iter().map(|r| r.2).max().unwrap_or(0);
            entries.push(Entry {
                strategy: label,
                jobs,
                nodes,
                reps,
                events,
                wall_s: wall,
                events_per_sec: events as f64 / wall.max(1e-9),
                peak_queue_depth: peak,
            });
        }
    }
    entries
}

/// Hand-written JSON (the vendored serde is a derive-marker stand-in;
/// structured output in this workspace is emitted directly).
fn to_json(entries: &[Entry], quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(out, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"strategy\": \"{}\", \"jobs\": {}, \"nodes\": {}, \"reps\": {}, \
             \"events\": {}, \"wall_s\": {:.3}, \"events_per_sec\": {:.0}, \
             \"peak_queue_depth\": {}}}{comma}",
            e.strategy,
            e.jobs,
            e.nodes,
            e.reps,
            e.events,
            e.wall_s,
            e.events_per_sec,
            e.peak_queue_depth,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Minimal field extraction from the baseline file this binary itself
/// writes (one entry object per line — see [`to_json`]). Returns
/// `(strategy, jobs, nodes, reps, events_per_sec)` per entry.
fn parse_baseline(text: &str) -> Vec<(String, u32, u32, u32, f64)> {
    fn field(line: &str, key: &str) -> Option<String> {
        let pat = format!("\"{key}\": ");
        let start = line.find(&pat)? + pat.len();
        let rest = &line[start..];
        let rest = rest.strip_prefix('"').unwrap_or(rest);
        let end = rest.find([',', '"', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().to_string())
    }
    text.lines()
        .filter(|l| l.contains("\"strategy\""))
        .filter_map(|l| {
            Some((
                field(l, "strategy")?,
                field(l, "jobs")?.parse().ok()?,
                field(l, "nodes")?.parse().ok()?,
                field(l, "reps")?.parse().ok()?,
                field(l, "events_per_sec")?.parse().ok()?,
            ))
        })
        .collect()
}

/// Compares `entries` against a committed baseline; returns the failure
/// messages (empty = pass). Campaigns absent from the baseline are
/// reported informationally but do not fail the check.
fn check_against(entries: &[Entry], baseline: &[(String, u32, u32, u32, f64)]) -> Vec<String> {
    let mut failures = Vec::new();
    for e in entries {
        let matched = baseline.iter().find(|(s, j, n, r, _)| {
            s == e.strategy && *j == e.jobs && *n == e.nodes && *r == e.reps
        });
        match matched {
            Some((_, _, _, _, base_eps)) => {
                let ratio = e.events_per_sec / base_eps.max(1e-9);
                println!(
                    "check {}/{} jobs/reps={}: {:.0} events/s vs baseline {:.0} ({:.2}x)",
                    e.strategy, e.jobs, e.reps, e.events_per_sec, base_eps, ratio
                );
                if ratio < 0.5 {
                    failures.push(format!(
                        "{} ({} jobs, reps={}) regressed >2x: {:.0} events/s vs baseline {:.0}",
                        e.strategy, e.jobs, e.reps, e.events_per_sec, base_eps
                    ));
                }
            }
            None => println!(
                "check {}/{} jobs/reps={}: no matching baseline entry, skipped",
                e.strategy, e.jobs, e.reps
            ),
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path = String::from("BENCH_sched.json");
    let mut check_path: Option<String> = None;
    let mut reps: u32 = 1;
    let mut reference = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--reference" => reference = true,
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            "--check" => check_path = Some(it.next().expect("--check needs a path").clone()),
            "--reps" => {
                reps = it
                    .next()
                    .expect("--reps needs a count")
                    .parse()
                    .expect("--reps takes an integer");
            }
            other => {
                panic!("unknown option {other} (see --quick/--reference/--out/--check/--reps)")
            }
        }
    }

    let world = World::evaluation();
    let entries = measure(&world, quick, reps, reference);
    for e in &entries {
        println!(
            "{:>14} jobs={:<6} reps={} events={:<8} wall={:>8.3}s {:>9.0} events/s peak_queue={}",
            e.strategy, e.jobs, e.reps, e.events, e.wall_s, e.events_per_sec, e.peak_queue_depth
        );
    }
    let json = to_json(&entries, quick);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");

    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let failures = check_against(&entries, &parse_baseline(&text));
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("PERF REGRESSION: {f}");
            }
            std::process::exit(1);
        }
        println!("perf check against {path}: OK");
    }
}
