#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! **F5 — co-allocation overhead.** The distribution of per-job runtime
//! dilation under CoBackfill with compatibility pairing — the paper's
//! "no overhead" claim — contrasted with naive any-pairing (the scenario
//! administrators fear) and the exclusive baseline.
//!
//! ```text
//! cargo run --release -p nodeshare-bench --bin exp_f5_overhead
//! ```

use nodeshare_bench::{emit, World};
use nodeshare_core::{PairingPolicy, PredictorKind, StrategyConfig, StrategyKind};
use nodeshare_metrics::{percentile_sorted, Buckets, Histogram, Table};

fn main() {
    let world = World::evaluation();
    let workload = world.saturated_spec(42).generate(&world.catalog);

    let variants: Vec<(&str, StrategyConfig)> = vec![
        (
            "exclusive (easy)",
            StrategyConfig::exclusive(StrategyKind::EasyBackfill),
        ),
        (
            "co-backfill / threshold pairing",
            StrategyConfig::sharing(StrategyKind::CoBackfill),
        ),
        ("co-backfill / threshold + oracle", {
            let mut cfg = StrategyConfig::sharing(StrategyKind::CoBackfill);
            cfg.predictor = PredictorKind::Oracle;
            cfg
        }),
        ("co-backfill / any pairing", {
            let mut cfg = StrategyConfig::sharing(StrategyKind::CoBackfill);
            cfg.pairing = PairingPolicy::Any;
            cfg.predictor = PredictorKind::Oblivious;
            cfg
        }),
    ];

    let mut t = Table::new(vec![
        "variant", "p50", "p90", "p99", "max", "kills", "E_comp",
    ]);
    for (label, cfg) in &variants {
        let (out, m) = world.run_strategy(&workload, cfg);
        let mut dil: Vec<f64> = out
            .records
            .iter()
            .filter(|r| !r.killed)
            .map(|r| r.dilation())
            .collect();
        dil.sort_by(f64::total_cmp);
        t.row(vec![
            label.to_string(),
            format!("{:.3}", percentile_sorted(&dil, 0.50)),
            format!("{:.3}", percentile_sorted(&dil, 0.90)),
            format!("{:.3}", percentile_sorted(&dil, 0.99)),
            format!("{:.3}", percentile_sorted(&dil, 1.0)),
            m.killed.to_string(),
            format!("{:.3}", m.computational_efficiency),
        ]);
    }
    // Distribution detail for the deployable configuration.
    let (out, _) = world.run_strategy(
        &workload,
        &StrategyConfig::sharing(StrategyKind::CoBackfill),
    );
    let hist = Histogram::of(
        out.records
            .iter()
            .filter(|r| !r.killed)
            // exclusive-speed jobs sit at 1.0 minus float epsilon
            .map(|r| r.dilation().max(1.0)),
        &Buckets::Linear {
            lo: 1.0,
            hi: 2.0,
            count: 10,
        },
    );
    let text = format!(
        "F5 — per-job runtime dilation (finish/start span over exclusive runtime), \
         saturated campaign, 1000 jobs\n\n{}\n\
         dilation histogram, co-backfill with threshold pairing:\n{}\n\
         reading: threshold pairing keeps the distribution tight near 1.0 (the paper's\n\
         \"no overhead\"); naive any-pairing produces the heavy tail administrators fear.\n",
        t.render(),
        hist.render(40)
    );
    emit("exp_f5_overhead", &text, Some(&t.to_csv()));
}
