#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! **F12 — duration-matched pairing (extension).** A simple heuristic a
//! site might bolt onto co-allocation: only pair jobs whose remaining
//! walltime bounds overlap by at least θ. Does it help on top of the
//! net-gain planner, or just cost coverage?
//!
//! ```text
//! cargo run --release -p nodeshare-bench --bin exp_f12_duration_match
//! ```

use nodeshare_bench::{emit, mean_of, seeds, World};
use nodeshare_core::{Backfill, Pairing, PairingPolicy, StrategyConfig, StrategyKind};
use nodeshare_metrics::{pct, relative_gain, CampaignMetrics, Table};
use nodeshare_perf::Predictor;
use rayon::prelude::*;

fn main() {
    let world = World::evaluation();
    let reps = seeds(3);

    let base = world.replicate(
        &StrategyConfig::exclusive(StrategyKind::EasyBackfill),
        &reps,
        |s| world.saturated_spec(s),
    );
    let base_comp = mean_of(&base, |m| m.computational_efficiency);

    let run_theta = |theta: Option<f64>| -> Vec<CampaignMetrics> {
        reps.par_iter()
            .map(|&seed| {
                let workload = world.saturated_spec(seed).generate(&world.catalog);
                let mut pairing = Pairing::new(
                    PairingPolicy::default_threshold(),
                    Predictor::class_based(&world.catalog, &world.model),
                );
                if let Some(theta) = theta {
                    pairing = pairing.with_duration_match(theta);
                }
                let mut sched = Backfill::co(pairing);
                let out =
                    nodeshare_engine::run(&workload, &world.matrix, &mut sched, &world.config());
                assert!(out.complete());
                out.metrics(&world.cluster)
            })
            .collect()
    };

    let mut t = Table::new(vec![
        "duration match θ",
        "E_comp gain",
        "shared",
        "dil p95",
        "mean wait(m)",
    ]);
    for (label, theta) in [
        ("off", None),
        ("0.25", Some(0.25)),
        ("0.50", Some(0.50)),
        ("0.75", Some(0.75)),
    ] {
        let ms = run_theta(theta);
        t.row(vec![
            label.to_string(),
            pct(relative_gain(
                mean_of(&ms, |m| m.computational_efficiency),
                base_comp,
            )),
            pct(mean_of(&ms, |m| m.shared_fraction)),
            format!("{:.2}", mean_of(&ms, |m| m.dilation.p95)),
            format!("{:.0}", mean_of(&ms, |m| m.wait.mean) / 60.0),
        ]);
    }
    let text = format!(
        "F12 — duration-matched pairing on top of CoBackfill \
         (saturated campaign, {} replications; gains vs exclusive EASY)\n\n{}\n\
         reading: the net-gain planner already avoids pathological pairings, so\n\
         duration matching mostly trades coverage for little; aggressive θ\n\
         forfeits a visible slice of the efficiency gain.\n",
        reps.len(),
        t.render()
    );
    emit("exp_f12_duration_match", &text, Some(&t.to_csv()));
}
