#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! **F7 — pairing-policy ablation.** How much of CoBackfill's gain comes
//! from *which* pairings it accepts and how well it predicts them:
//! never / any+oblivious / threshold with class-based, oracle, and
//! pessimistic predictors.
//!
//! ```text
//! cargo run --release -p nodeshare-bench --bin exp_f7_pairing_ablation
//! ```

use nodeshare_bench::{emit, mean_of, seeds, World};
use nodeshare_core::{PairingPolicy, PredictorKind, StrategyConfig, StrategyKind};
use nodeshare_metrics::{pct, relative_gain, Table};

fn main() {
    let world = World::evaluation();
    let reps = seeds(3);
    let spec_of = |s| world.saturated_spec(s);

    let base = world.replicate(
        &StrategyConfig::exclusive(StrategyKind::EasyBackfill),
        &reps,
        spec_of,
    );
    let base_comp = mean_of(&base, |m| m.computational_efficiency);
    let base_sched = mean_of(&base, |m| m.scheduling_efficiency);

    let mk = |pairing, predictor| StrategyConfig {
        kind: StrategyKind::CoBackfill,
        pairing,
        predictor,
    };
    let variants: Vec<(&str, StrategyConfig)> = vec![
        (
            "never (exclusive)",
            mk(PairingPolicy::Never, PredictorKind::Oblivious),
        ),
        (
            "any + oblivious",
            mk(PairingPolicy::Any, PredictorKind::Oblivious),
        ),
        (
            "threshold + pessimistic(0.75)",
            mk(
                PairingPolicy::Threshold {
                    min_rate: 0.7,
                    min_combined: 1.2,
                },
                PredictorKind::Pessimistic { rate: 0.75 },
            ),
        ),
        (
            "threshold + class-based",
            mk(
                PairingPolicy::default_threshold(),
                PredictorKind::ClassBased,
            ),
        ),
        (
            "threshold + oracle",
            mk(PairingPolicy::default_threshold(), PredictorKind::Oracle),
        ),
        (
            "backfill-only sharing",
            StrategyConfig {
                kind: StrategyKind::CoBackfillOnly,
                pairing: PairingPolicy::default_threshold(),
                predictor: PredictorKind::ClassBased,
            },
        ),
    ];

    let mut t = Table::new(vec![
        "pairing",
        "E_comp gain",
        "E_sched gain",
        "dil p95",
        "kills",
        "shared",
    ]);
    for (label, cfg) in &variants {
        let ms = world.replicate(cfg, &reps, spec_of);
        t.row(vec![
            label.to_string(),
            pct(relative_gain(
                mean_of(&ms, |m| m.computational_efficiency),
                base_comp,
            )),
            pct(relative_gain(
                mean_of(&ms, |m| m.scheduling_efficiency),
                base_sched,
            )),
            format!("{:.2}", mean_of(&ms, |m| m.dilation.p95)),
            format!("{:.1}", mean_of(&ms, |m| m.killed as f64)),
            pct(mean_of(&ms, |m| m.shared_fraction)),
        ]);
    }
    let text = format!(
        "F7 — pairing-policy / predictor ablation for CoBackfill \
         (saturated campaign, {} replications; gains vs exclusive EASY)\n\n{}\n\
         reading: compatibility awareness (threshold) is what separates the paper's\n\
         strategy from naive oversubscription; oracle vs class-based shows how much\n\
         prediction quality buys.\n",
        reps.len(),
        t.render()
    );
    emit("exp_f7_pairing_ablation", &text, Some(&t.to_csv()));
}
