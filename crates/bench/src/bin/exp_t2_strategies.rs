#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! **T2 — strategy comparison.** All six strategies on the saturated
//! evaluation campaign: makespan, waits, slowdown, utilization, and the
//! two efficiency metrics.
//!
//! Runs as a declarative campaign: the (strategy × seed × preset) grid
//! is sharded over a worker pool and merged deterministically, so the
//! tables below are bit-identical under `--serial`, `--jobs 1`, or
//! `--jobs 8`.
//!
//! ```text
//! cargo run --release -p nodeshare-bench --bin exp_t2_strategies -- [--jobs N|--serial] [--quick]
//! ```

use nodeshare_bench::campaign::{
    exit_on_failures, run_campaign, write_campaign_summary, write_cell_table, CampaignSpec,
    CellOptions, PresetVariant,
};
use nodeshare_bench::orchestrator::CampaignCli;
use nodeshare_bench::{emit, mean_of, seeds, World};
use nodeshare_core::StrategyConfig;
use nodeshare_metrics::{pct, Table};

fn main() {
    let cli = CampaignCli::parse();
    let world = World::evaluation();
    let n_seeds = if cli.quick { 2 } else { 3 };
    let quick_jobs = if cli.quick { Some(60) } else { None };

    let spec = CampaignSpec::on_evaluation_cluster(
        "t2",
        vec![
            PresetVariant {
                n_jobs: quick_jobs,
                ..PresetVariant::saturated("saturated")
            },
            PresetVariant {
                n_jobs: quick_jobs,
                ..PresetVariant::online("online")
            },
        ],
        StrategyConfig::lineup()
            .into_iter()
            .map(Into::into)
            .collect(),
        seeds(n_seeds),
    );
    let run = run_campaign(&world, &spec, cli.parallelism, &CellOptions::default())
        .unwrap_or_else(|failures| exit_on_failures(failures));

    let mut t = Table::new(vec![
        "strategy",
        "makespan(h)",
        "wait:mean(m)",
        "wait:p95(m)",
        "bsld:p95",
        "util",
        "E_comp",
        "E_sched",
        "shared",
        "kills",
    ]);
    let mut csv_rows = String::new();
    for (s, sv) in spec.strategies.iter().enumerate() {
        let ms = run.seed_metrics(0, 0, s);
        let row = [
            sv.label.clone(),
            format!("{:.1}", mean_of(&ms, |m| m.makespan) / 3600.0),
            format!("{:.0}", mean_of(&ms, |m| m.wait.mean) / 60.0),
            format!("{:.0}", mean_of(&ms, |m| m.wait.p95) / 60.0),
            format!("{:.1}", mean_of(&ms, |m| m.bounded_slowdown.p95)),
            format!("{:.3}", mean_of(&ms, |m| m.utilization)),
            format!("{:.3}", mean_of(&ms, |m| m.computational_efficiency)),
            format!("{:.3}", mean_of(&ms, |m| m.scheduling_efficiency)),
            pct(mean_of(&ms, |m| m.shared_fraction)),
            format!("{:.1}", mean_of(&ms, |m| m.killed as f64)),
        ];
        csv_rows.push_str(&row.join(","));
        csv_rows.push('\n');
        t.row(row.to_vec());
    }
    // Second table: the online (~90% load) regime, where waits rather
    // than makespan tell the story.
    let mut t2 = Table::new(vec![
        "strategy",
        "wait:mean(m)",
        "wait:p95(m)",
        "bsld:p95",
        "E_comp",
        "shared",
    ]);
    for (s, sv) in spec.strategies.iter().enumerate() {
        let ms = run.seed_metrics(1, 0, s);
        t2.row(vec![
            sv.label.clone(),
            format!("{:.0}", mean_of(&ms, |m| m.wait.mean) / 60.0),
            format!("{:.0}", mean_of(&ms, |m| m.wait.p95) / 60.0),
            format!("{:.1}", mean_of(&ms, |m| m.bounded_slowdown.p95)),
            format!("{:.3}", mean_of(&ms, |m| m.computational_efficiency)),
            pct(mean_of(&ms, |m| m.shared_fraction)),
        ]);
    }
    let jobs_note = if cli.quick { " [quick]" } else { "" };
    let text = format!(
        "T2 — strategy comparison, saturated campaign ({} replications x {} jobs, 128 nodes){}\n\n{}\n\
         T2b — the same lineup in the online (~90% load) regime:\n\n{}",
        spec.seeds.len(),
        quick_jobs.unwrap_or(1000),
        jobs_note,
        t.render(),
        t2.render()
    );
    let csv = format!(
        "strategy,makespan_h,wait_mean_m,wait_p95_m,bsld_p95,util,e_comp,e_sched,shared,kills\n{csv_rows}"
    );
    emit("exp_t2_strategies", &text, Some(&csv));
    write_cell_table("exp_t2_strategies", &run);
    write_campaign_summary("exp_t2_strategies", &run);
}
