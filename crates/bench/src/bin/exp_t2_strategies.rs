//! **T2 — strategy comparison.** All six strategies on the saturated
//! evaluation campaign: makespan, waits, slowdown, utilization, and the
//! two efficiency metrics.
//!
//! ```text
//! cargo run --release -p nodeshare-bench --bin exp_t2_strategies
//! ```

use nodeshare_bench::{emit, mean_of, seeds, World};
use nodeshare_core::StrategyConfig;
use nodeshare_metrics::{pct, Table};

fn main() {
    let world = World::evaluation();
    let reps = seeds(3);

    let mut t = Table::new(vec![
        "strategy",
        "makespan(h)",
        "wait:mean(m)",
        "wait:p95(m)",
        "bsld:p95",
        "util",
        "E_comp",
        "E_sched",
        "shared",
        "kills",
    ]);
    let mut csv_rows = String::new();
    for cfg in StrategyConfig::lineup() {
        let ms = world.replicate(&cfg, &reps, |s| world.saturated_spec(s));
        let row = [
            cfg.label().to_string(),
            format!("{:.1}", mean_of(&ms, |m| m.makespan) / 3600.0),
            format!("{:.0}", mean_of(&ms, |m| m.wait.mean) / 60.0),
            format!("{:.0}", mean_of(&ms, |m| m.wait.p95) / 60.0),
            format!("{:.1}", mean_of(&ms, |m| m.bounded_slowdown.p95)),
            format!("{:.3}", mean_of(&ms, |m| m.utilization)),
            format!("{:.3}", mean_of(&ms, |m| m.computational_efficiency)),
            format!("{:.3}", mean_of(&ms, |m| m.scheduling_efficiency)),
            pct(mean_of(&ms, |m| m.shared_fraction)),
            format!("{:.1}", mean_of(&ms, |m| m.killed as f64)),
        ];
        csv_rows.push_str(&row.join(","));
        csv_rows.push('\n');
        t.row(row.to_vec());
    }
    // Second table: the online (~90% load) regime, where waits rather
    // than makespan tell the story.
    let mut t2 = Table::new(vec![
        "strategy",
        "wait:mean(m)",
        "wait:p95(m)",
        "bsld:p95",
        "E_comp",
        "shared",
    ]);
    for cfg in StrategyConfig::lineup() {
        let ms = world.replicate(&cfg, &reps, |s| world.online_spec(s));
        t2.row(vec![
            cfg.label().to_string(),
            format!("{:.0}", mean_of(&ms, |m| m.wait.mean) / 60.0),
            format!("{:.0}", mean_of(&ms, |m| m.wait.p95) / 60.0),
            format!("{:.1}", mean_of(&ms, |m| m.bounded_slowdown.p95)),
            format!("{:.3}", mean_of(&ms, |m| m.computational_efficiency)),
            pct(mean_of(&ms, |m| m.shared_fraction)),
        ]);
    }
    let text = format!(
        "T2 — strategy comparison, saturated campaign ({} replications x 1000 jobs, 128 nodes)\n\n{}\n\
         T2b — the same lineup in the online (~90% load) regime:\n\n{}",
        reps.len(),
        t.render(),
        t2.render()
    );
    let csv = format!(
        "strategy,makespan_h,wait_mean_m,wait_p95_m,bsld_p95,util,e_comp,e_sched,shared,kills\n{csv_rows}"
    );
    emit("exp_t2_strategies", &text, Some(&csv));
}
