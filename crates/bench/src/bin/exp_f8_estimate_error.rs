#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! **F8 — walltime-estimate sensitivity.** Backfill quality depends on
//! user estimates; this sweep varies the mean over-estimation factor
//! from perfect to 5× and reports both strategies' scheduling efficiency
//! and waits.
//!
//! ```text
//! cargo run --release -p nodeshare-bench --bin exp_f8_estimate_error
//! ```

use nodeshare_bench::{emit, mean_of, seeds, World};
use nodeshare_core::{StrategyConfig, StrategyKind};
use nodeshare_metrics::{pct, relative_gain, Table};
use nodeshare_workload::EstimateModel;

fn main() {
    let world = World::evaluation();
    let reps = seeds(3);
    let easy = StrategyConfig::exclusive(StrategyKind::EasyBackfill);
    let co = StrategyConfig::sharing(StrategyKind::CoBackfill);

    let mut t = Table::new(vec![
        "over-estimate",
        "E_sched easy",
        "E_sched co",
        "gain",
        "wait easy(m)",
        "wait co(m)",
        "kills co",
    ]);
    for (label, factor) in [
        ("perfect", -1.0),
        ("1.5x mean", 0.5),
        ("2x mean", 1.0),
        ("3x mean", 2.0),
        ("5x mean", 4.0),
    ] {
        let spec_of = |seed| {
            let mut s = world.saturated_spec(seed);
            s.estimates = if factor < 0.0 {
                EstimateModel::perfect()
            } else {
                EstimateModel {
                    mean_over_factor: factor,
                    ..EstimateModel::evaluation()
                }
            };
            s
        };
        let me = world.replicate(&easy, &reps, spec_of);
        let mc = world.replicate(&co, &reps, spec_of);
        let es_e = mean_of(&me, |m| m.scheduling_efficiency);
        let es_c = mean_of(&mc, |m| m.scheduling_efficiency);
        t.row(vec![
            label.to_string(),
            format!("{es_e:.3}"),
            format!("{es_c:.3}"),
            pct(relative_gain(es_c, es_e)),
            format!("{:.0}", mean_of(&me, |m| m.wait.mean) / 60.0),
            format!("{:.0}", mean_of(&mc, |m| m.wait.mean) / 60.0),
            format!("{:.1}", mean_of(&mc, |m| m.killed as f64)),
        ]);
    }
    let text = format!(
        "F8 — sensitivity to walltime over-estimation \
         (saturated campaign, {} replications)\n\n{}\n\
         note: with perfect estimates any dilation means a kill, so the shared\n\
         walltime grace is what keeps sharing safe at low over-estimation.\n",
        reps.len(),
        t.render()
    );
    emit("exp_f8_estimate_error", &text, Some(&t.to_csv()));
}
