//! **F11 — wider SMT (extension).** The paper studies SMT-2
//! oversubscription; this experiment asks what SMT-4 hardware (e.g.
//! POWER-style cores) would add. Up to four jobs may stack per node; the
//! n-way contention model prices the extra residents, and the pairing
//! policy requires *pairwise* compatibility within the stack.
//!
//! ```text
//! cargo run --release -p nodeshare-bench --bin exp_f11_smt4
//! ```

use nodeshare_bench::{emit, mean_of, seeds, World};
use nodeshare_cluster::{ClusterSpec, NodeSpec};
use nodeshare_core::{StrategyConfig, StrategyKind};
use nodeshare_engine::SimConfig;
use nodeshare_metrics::{pct, relative_gain, CampaignMetrics, Table};
use rayon::prelude::*;

fn main() {
    let world = World::evaluation();
    let reps = seeds(3);

    let run_smt = |cfg: &StrategyConfig, smt: u8| -> Vec<CampaignMetrics> {
        let node = NodeSpec {
            smt,
            ..NodeSpec::trinity_like()
        };
        let cluster = ClusterSpec::new(128, node);
        reps.par_iter()
            .map(|&seed| {
                let workload = world.saturated_spec(seed).generate(&world.catalog);
                let mut sched = cfg.build(&world.catalog, &world.model);
                let out = nodeshare_engine::run(
                    &workload,
                    &world.matrix,
                    sched.as_mut(),
                    &SimConfig::new(cluster),
                );
                assert!(out.complete(), "{}: stuck", cfg.label());
                out.metrics(&cluster)
            })
            .collect()
    };

    let easy = StrategyConfig::exclusive(StrategyKind::EasyBackfill);
    let co = StrategyConfig::sharing(StrategyKind::CoBackfill);
    let mut co_nway = StrategyConfig::sharing(StrategyKind::CoBackfill);
    co_nway.predictor = nodeshare_core::PredictorKind::NWayOracle;

    let mut t = Table::new(vec![
        "SMT width / predictor",
        "E_comp gain",
        "E_sched gain",
        "shared",
        "dil p95",
        "kills",
    ]);
    for (smt, cfg, label) in [
        (2u8, &co, "SMT-2 pairwise"),
        (3, &co, "SMT-3 pairwise"),
        (4, &co, "SMT-4 pairwise"),
        (3, &co_nway, "SMT-3 n-way oracle"),
        (4, &co_nway, "SMT-4 n-way oracle"),
    ] {
        let base = run_smt(&easy, smt);
        let shared = run_smt(cfg, smt);
        t.row(vec![
            label.to_string(),
            pct(relative_gain(
                mean_of(&shared, |m| m.computational_efficiency),
                mean_of(&base, |m| m.computational_efficiency),
            )),
            pct(relative_gain(
                mean_of(&shared, |m| m.scheduling_efficiency),
                mean_of(&base, |m| m.scheduling_efficiency),
            )),
            pct(mean_of(&shared, |m| m.shared_fraction)),
            format!("{:.2}", mean_of(&shared, |m| m.dilation.p95)),
            format!("{:.1}", mean_of(&shared, |m| m.killed as f64)),
        ]);
    }
    let text = format!(
        "F11 — node-sharing gains vs SMT width (saturated campaign, {} replications)\n\n{}\n\
         two findings: (1) with *pairwise* prediction, wider SMT backfires —\n\
         three/four-way contention is underestimated, stacks get admitted that\n\
         dilate and kill their residents; (2) with *n-way-aware* prediction the\n\
         damage disappears, but the gains merely return to the SMT-2 level:\n\
         the threshold admits essentially no triples (mutually complementary\n\
         triples are scarce — a third job always crowds someone's bottleneck).\n\
         Both support the paper's SMT-2 focus: pairwise profiling is sound\n\
         there, and wider SMT has little to offer this workload class anyway.\n",
        reps.len(),
        t.render()
    );
    emit("exp_f11_smt4", &text, Some(&t.to_csv()));
}
