#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! **F11 — wider SMT (extension).** The paper studies SMT-2
//! oversubscription; this experiment asks what SMT-4 hardware (e.g.
//! POWER-style cores) would add. Up to four jobs may stack per node; the
//! n-way contention model prices the extra residents, and the pairing
//! policy requires *pairwise* compatibility within the stack.
//!
//! Runs as a declarative campaign over a genuine cluster axis — one
//! [`ClusterVariant`] per SMT width — sharded over a worker pool with a
//! deterministic merge, so the table is bit-identical under `--serial`,
//! `--jobs 1`, or `--jobs 8`.
//!
//! ```text
//! cargo run --release -p nodeshare-bench --bin exp_f11_smt4 -- [--jobs N|--serial] [--quick]
//! ```

use nodeshare_bench::campaign::{
    exit_on_failures, run_campaign, write_campaign_summary, write_cell_table, CampaignSpec,
    CellOptions, ClusterVariant, PresetVariant, StrategyVariant,
};
use nodeshare_bench::orchestrator::CampaignCli;
use nodeshare_bench::{emit, mean_of, seeds, World};
use nodeshare_cluster::{ClusterSpec, NodeSpec};
use nodeshare_core::{StrategyConfig, StrategyKind};
use nodeshare_metrics::{pct, relative_gain, Table};

fn main() {
    let cli = CampaignCli::parse();
    let world = World::evaluation();
    let n_seeds = if cli.quick { 2 } else { 3 };
    let quick_jobs = if cli.quick { Some(80) } else { None };

    let smt_cluster = |smt: u8| {
        let node = NodeSpec {
            smt,
            ..NodeSpec::trinity_like()
        };
        ClusterVariant::named(format!("128n-smt{smt}"), ClusterSpec::new(128, node))
    };
    let mut co_nway = StrategyConfig::sharing(StrategyKind::CoBackfill);
    co_nway.predictor = nodeshare_core::PredictorKind::NWayOracle;

    let spec = CampaignSpec {
        name: "f11",
        presets: vec![PresetVariant {
            n_jobs: quick_jobs,
            ..PresetVariant::saturated("saturated")
        }],
        clusters: vec![smt_cluster(2), smt_cluster(3), smt_cluster(4)],
        strategies: vec![
            StrategyConfig::exclusive(StrategyKind::EasyBackfill).into(),
            StrategyConfig::sharing(StrategyKind::CoBackfill).into(),
            StrategyVariant::named("co-backfill+nway", co_nway),
        ],
        seeds: seeds(n_seeds),
    };
    let run = run_campaign(&world, &spec, cli.parallelism, &CellOptions::default())
        .unwrap_or_else(|failures| exit_on_failures(failures));

    let mut t = Table::new(vec![
        "SMT width / predictor",
        "E_comp gain",
        "E_sched gain",
        "shared",
        "dil p95",
        "kills",
    ]);
    // (cluster index, sharing-strategy index, display label); the EASY
    // baseline is strategy 0 at the same SMT width.
    for (cluster, strategy, label) in [
        (0usize, 1usize, "SMT-2 pairwise"),
        (1, 1, "SMT-3 pairwise"),
        (2, 1, "SMT-4 pairwise"),
        (1, 2, "SMT-3 n-way oracle"),
        (2, 2, "SMT-4 n-way oracle"),
    ] {
        let base = run.seed_metrics(0, cluster, 0);
        let shared = run.seed_metrics(0, cluster, strategy);
        t.row(vec![
            label.to_string(),
            pct(relative_gain(
                mean_of(&shared, |m| m.computational_efficiency),
                mean_of(&base, |m| m.computational_efficiency),
            )),
            pct(relative_gain(
                mean_of(&shared, |m| m.scheduling_efficiency),
                mean_of(&base, |m| m.scheduling_efficiency),
            )),
            pct(mean_of(&shared, |m| m.shared_fraction)),
            format!("{:.2}", mean_of(&shared, |m| m.dilation.p95)),
            format!("{:.1}", mean_of(&shared, |m| m.killed as f64)),
        ]);
    }
    let quick_note = if cli.quick { " [quick]" } else { "" };
    let text = format!(
        "F11 — node-sharing gains vs SMT width (saturated campaign, {} replications){}\n\n{}\n\
         two findings: (1) with *pairwise* prediction, wider SMT backfires —\n\
         three/four-way contention is underestimated, stacks get admitted that\n\
         dilate and kill their residents; (2) with *n-way-aware* prediction the\n\
         damage disappears, but the gains merely return to the SMT-2 level:\n\
         the threshold admits essentially no triples (mutually complementary\n\
         triples are scarce — a third job always crowds someone's bottleneck).\n\
         Both support the paper's SMT-2 focus: pairwise profiling is sound\n\
         there, and wider SMT has little to offer this workload class anyway.\n",
        spec.seeds.len(),
        quick_note,
        t.render()
    );
    emit("exp_f11_smt4", &text, Some(&t.to_csv()));
    write_cell_table("exp_f11_smt4", &run);
    write_campaign_summary("exp_f11_smt4", &run);
}
