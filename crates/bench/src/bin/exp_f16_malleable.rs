#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! **F16 — malleable jobs under load spikes (extension).** The rigid
//! lineup can only react to a queue burst by waiting for running jobs to
//! drain. This experiment gives half the jobs a width-malleability
//! contract and runs the [`Adaptive`](nodeshare_core::Adaptive) policy —
//! EASY backfill plus shrink-to-admit and grow-to-fill reshaping —
//! against every rigid strategy on the `spike` preset (an 8-hour arrival
//! wave swinging between near-idle lulls and past-capacity bursts).
//!
//! During a burst, shrinking wide malleable jobs toward their contract
//! minimum admits the queue head immediately; during a lull, growing
//! them into idle nodes converts stranded capacity into work. Both ends
//! of the wave attack the same quantity — makespan — so the headline
//! metric is mean scheduling efficiency.
//!
//! ```text
//! cargo run --release -p nodeshare-bench --bin exp_f16_malleable [-- --quick]
//! ```

use nodeshare_bench::{emit, mean_of, seeds, World};
use nodeshare_core::{StrategyConfig, StrategyKind};
use nodeshare_metrics::{pct, relative_gain, CampaignMetrics, Table};
use nodeshare_workload::Preset;
use rayon::prelude::*;

const MALLEABLE_FRACTION: f64 = 0.5;

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let world = World::evaluation();
    let reps = if quick { seeds(2) } else { seeds(5) };
    let n_jobs = if quick { 150 } else { 600 };

    let run = |cfg: &StrategyConfig| -> Vec<CampaignMetrics> {
        reps.par_iter()
            .map(|&seed| {
                let mut spec = Preset::Spike.spec(&world.catalog, seed);
                spec.n_jobs = n_jobs;
                spec.malleable_fraction = MALLEABLE_FRACTION;
                let workload = spec.generate(&world.catalog);
                let mut sched = cfg.build(&world.catalog, &world.model);
                let out = nodeshare_engine::run(
                    &workload,
                    &world.matrix,
                    sched.as_mut(),
                    &world.config(),
                );
                assert!(out.complete(), "{}: campaign wedged", cfg.label());
                out.metrics(&world.cluster)
            })
            .collect()
    };

    let mut variants = StrategyConfig::lineup();
    variants.push(StrategyConfig::exclusive(StrategyKind::Adaptive));

    let mut base_sched = 0.0;
    let mut best_rigid: Option<(&'static str, f64)> = None;
    let mut adaptive_sched = 0.0;
    let mut t = Table::new(vec![
        "strategy",
        "E_sched",
        "gain vs easy",
        "makespan(h)",
        "wait:mean(m)",
        "wait:p95(m)",
        "bsld:p95",
    ]);
    for cfg in &variants {
        let label = cfg.label();
        let ms = run(cfg);
        let es = mean_of(&ms, |m| m.scheduling_efficiency);
        if label == "easy-backfill" {
            base_sched = es;
        }
        if cfg.kind == StrategyKind::Adaptive {
            adaptive_sched = es;
        } else if best_rigid.is_none_or(|(_, b)| es > b) {
            best_rigid = Some((label, es));
        }
        t.row(vec![
            label.to_string(),
            format!("{es:.3}"),
            pct(relative_gain(es, base_sched)),
            format!("{:.1}", mean_of(&ms, |m| m.makespan) / 3_600.0),
            format!("{:.0}", mean_of(&ms, |m| m.wait.mean) / 60.0),
            format!("{:.0}", mean_of(&ms, |m| m.wait.p95) / 60.0),
            format!("{:.1}", mean_of(&ms, |m| m.bounded_slowdown.p95)),
        ]);
    }

    let (best_label, best_sched) = best_rigid.expect("lineup is non-empty");
    // The acceptance bar: reshaping must beat every rigid policy —
    // sharing ones included — on mean efficiency in the spike regime.
    assert!(
        adaptive_sched > best_sched,
        "adaptive E_sched {adaptive_sched:.3} does not beat best rigid \
         ({best_label}: {best_sched:.3})"
    );

    let text = format!(
        "F16 — width-malleable jobs under load spikes ({}% malleable, spike \
         preset, {} jobs, {} replications{})\n\n{}\n\
         reading: adaptive (EASY + reshape) beats the best rigid strategy\n\
         ({best_label}: E_sched {best_sched:.3} -> {adaptive_sched:.3},\n\
         {} relative). Shrinking wide malleable jobs admits burst arrivals\n\
         that rigid backfill must queue; re-growing them in the lulls soaks\n\
         idle nodes the rigid lineup strands. Both moves shorten the\n\
         campaign, which is where scheduling efficiency lives.\n",
        (MALLEABLE_FRACTION * 100.0) as u32,
        n_jobs,
        reps.len(),
        if quick { ", --quick" } else { "" },
        t.render(),
        pct(relative_gain(adaptive_sched, best_sched)),
    );
    emit("exp_f16_malleable", &text, Some(&t.to_csv()));
}
