#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! **T1 — mini-app characterization.** Per-application resource class,
//! normalized demands, derived SMT self-speedup, and best co-run partner
//! — the table that motivates pairing complementary applications.
//!
//! ```text
//! cargo run --release -p nodeshare-bench --bin exp_t1_miniapps
//! ```

use nodeshare_bench::{emit, World};
use nodeshare_metrics::Table;
use nodeshare_perf::Resource;

fn main() {
    let world = World::evaluation();
    let mut t = Table::new(vec![
        "app",
        "class",
        "issue",
        "membw",
        "llc",
        "net",
        "mem/node",
        "smt-self",
        "best partner",
        "combined",
    ]);
    for app in world.catalog.iter() {
        let smt_self = world.model.smt_self_speedup(&app.demand);
        let others: Vec<_> = world.catalog.ids().filter(|&i| i != app.id).collect();
        let (best, combined) = world
            .pair
            .best_partner(app.id, &others)
            .expect("catalog has partners");
        t.row(vec![
            app.name.clone(),
            app.class.label().to_string(),
            format!("{:.2}", app.demand.get(Resource::IssueSlots)),
            format!("{:.2}", app.demand.get(Resource::MemBandwidth)),
            format!("{:.2}", app.demand.get(Resource::LlcCapacity)),
            format!("{:.2}", app.demand.get(Resource::Network)),
            format!("{} GiB", app.mem_per_node_mib / 1024),
            format!("{smt_self:.2}x"),
            world.catalog.profile(best).name.clone(),
            format!("{combined:.2}x"),
        ]);
    }
    let text = format!(
        "T1 — Trinity mini-app characterization (demands normalized to node capacity)\n\n{}\n\
         mean combined throughput over all ordered pairs: {:.2}x\n",
        t.render(),
        world.pair.mean_combined_throughput()
    );
    emit("exp_t1_miniapps", &text, Some(&t.to_csv()));
}
