#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! **F9 — failure resilience (extension).** Node sharing doubles a node
//! failure's blast radius (two jobs per node), so this experiment asks
//! whether the efficiency gains survive realistic failure rates: MTBF
//! sweep, EASY vs CoBackfill, counting requeues and re-measuring the
//! headline metrics.
//!
//! Runs as a declarative campaign — every MTBF/checkpoint variant is a
//! preset axis entry with its own [`FailurePlan`], and the grid is
//! sharded over a worker pool with a deterministic merge, so the table
//! is bit-identical under `--serial`, `--jobs 1`, or `--jobs 8`.
//!
//! ```text
//! cargo run --release -p nodeshare-bench --bin exp_f9_failures -- [--jobs N|--serial] [--quick]
//! ```

use nodeshare_bench::campaign::{
    exit_on_failures, run_campaign, write_campaign_summary, write_cell_table, CampaignSpec,
    CellOptions, FailurePlan, PresetVariant,
};
use nodeshare_bench::orchestrator::CampaignCli;
use nodeshare_bench::{emit, mean_of, seeds, World};
use nodeshare_core::{StrategyConfig, StrategyKind};
use nodeshare_metrics::{pct, relative_gain, Table};

fn main() {
    let cli = CampaignCli::parse();
    let world = World::evaluation();
    let n_seeds = if cli.quick { 2 } else { 3 };
    let quick_jobs = if cli.quick { Some(80) } else { None };

    let variants: [(&str, f64, Option<f64>); 5] = [
        ("no failures", f64::INFINITY, None),
        ("1000 h", 1_000.0, None),
        ("300 h", 300.0, None),
        ("100 h", 100.0, None),
        ("100 h + 15min ckpt", 100.0, Some(900.0)),
    ];
    let spec = CampaignSpec::on_evaluation_cluster(
        "f9",
        variants
            .iter()
            .map(|&(label, mtbf_h, ckpt)| PresetVariant {
                n_jobs: quick_jobs,
                failures: mtbf_h.is_finite().then_some(FailurePlan {
                    mtbf_hours: mtbf_h,
                    repair_s: 1_800.0,
                    horizon_s: 30.0 * 86_400.0,
                }),
                checkpoint_interval: ckpt,
                ..PresetVariant::saturated(label)
            })
            .collect(),
        vec![
            StrategyConfig::exclusive(StrategyKind::EasyBackfill).into(),
            StrategyConfig::sharing(StrategyKind::CoBackfill).into(),
        ],
        seeds(n_seeds),
    );
    let run = run_campaign(&world, &spec, cli.parallelism, &CellOptions::default())
        .unwrap_or_else(|failures| exit_on_failures(failures));

    let mut t = Table::new(vec![
        "MTBF/node",
        "restarts easy",
        "restarts co",
        "E_comp gain",
        "E_sched gain",
        "makespan easy(h)",
        "makespan co(h)",
    ]);
    for (p, pv) in spec.presets.iter().enumerate() {
        let me = run.seed_metrics(p, 0, 0);
        let mc = run.seed_metrics(p, 0, 1);
        t.row(vec![
            pv.label.clone(),
            format!("{:.0}", mean_of(&me, |m| m.total_restarts as f64)),
            format!("{:.0}", mean_of(&mc, |m| m.total_restarts as f64)),
            pct(relative_gain(
                mean_of(&mc, |m| m.computational_efficiency),
                mean_of(&me, |m| m.computational_efficiency),
            )),
            pct(relative_gain(
                mean_of(&mc, |m| m.scheduling_efficiency),
                mean_of(&me, |m| m.scheduling_efficiency),
            )),
            format!("{:.1}", mean_of(&me, |m| m.makespan) / 3_600.0),
            format!("{:.1}", mean_of(&mc, |m| m.makespan) / 3_600.0),
        ]);
    }
    let quick_note = if cli.quick { " [quick]" } else { "" };
    let text = format!(
        "F9 — node-failure resilience (saturated campaign, {} replications; repair 30 min){}\n\n{}\n\
         reading: sharing roughly doubles the jobs hit per failure, but the\n\
         efficiency advantage persists because restarts cost both variants\n\
         similar node-time fractions; application checkpointing recovers most\n\
         of the failure-induced makespan loss for both.\n",
        spec.seeds.len(),
        quick_note,
        t.render()
    );
    emit("exp_f9_failures", &text, Some(&t.to_csv()));
    write_cell_table("exp_f9_failures", &run);
    write_campaign_summary("exp_f9_failures", &run);
}
