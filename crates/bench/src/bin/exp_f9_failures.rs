//! **F9 — failure resilience (extension).** Node sharing doubles a node
//! failure's blast radius (two jobs per node), so this experiment asks
//! whether the efficiency gains survive realistic failure rates: MTBF
//! sweep, EASY vs CoBackfill, counting requeues and re-measuring the
//! headline metrics.
//!
//! ```text
//! cargo run --release -p nodeshare-bench --bin exp_f9_failures
//! ```

use nodeshare_bench::{emit, mean_of, seeds, World};
use nodeshare_core::{StrategyConfig, StrategyKind};
use nodeshare_engine::FailureModel;
use nodeshare_metrics::{pct, relative_gain, CampaignMetrics, Table};
use rayon::prelude::*;

fn main() {
    let world = World::evaluation();
    let reps = seeds(3);
    let easy = StrategyConfig::exclusive(StrategyKind::EasyBackfill);
    let co = StrategyConfig::sharing(StrategyKind::CoBackfill);

    let run_with = |cfg: &StrategyConfig, mtbf_h: f64, ckpt: Option<f64>| -> Vec<CampaignMetrics> {
        reps.par_iter()
            .map(|&seed| {
                let workload = world.saturated_spec(seed).generate(&world.catalog);
                let mut config = world.config();
                config.checkpoint_interval = ckpt;
                if mtbf_h.is_finite() {
                    config.failures = Some(FailureModel {
                        mtbf_per_node: mtbf_h * 3_600.0,
                        repair_time: 1_800.0,
                        seed: seed ^ 0xfa11,
                    });
                    config.failure_horizon = 30.0 * 86_400.0;
                }
                let mut sched = cfg.build(&world.catalog, &world.model);
                let out = nodeshare_engine::run(&workload, &world.matrix, sched.as_mut(), &config);
                assert!(out.complete(), "{}: stuck", cfg.label());
                out.metrics(&world.cluster)
            })
            .collect()
    };

    let mut t = Table::new(vec![
        "MTBF/node",
        "restarts easy",
        "restarts co",
        "E_comp gain",
        "E_sched gain",
        "makespan easy(h)",
        "makespan co(h)",
    ]);
    for (label, mtbf_h, ckpt) in [
        ("no failures", f64::INFINITY, None),
        ("1000 h", 1_000.0, None),
        ("300 h", 300.0, None),
        ("100 h", 100.0, None),
        ("100 h + 15min ckpt", 100.0, Some(900.0)),
    ] {
        let me = run_with(&easy, mtbf_h, ckpt);
        let mc = run_with(&co, mtbf_h, ckpt);
        t.row(vec![
            label.to_string(),
            format!("{:.0}", mean_of(&me, |m| m.total_restarts as f64)),
            format!("{:.0}", mean_of(&mc, |m| m.total_restarts as f64)),
            pct(relative_gain(
                mean_of(&mc, |m| m.computational_efficiency),
                mean_of(&me, |m| m.computational_efficiency),
            )),
            pct(relative_gain(
                mean_of(&mc, |m| m.scheduling_efficiency),
                mean_of(&me, |m| m.scheduling_efficiency),
            )),
            format!("{:.1}", mean_of(&me, |m| m.makespan) / 3_600.0),
            format!("{:.1}", mean_of(&mc, |m| m.makespan) / 3_600.0),
        ]);
    }
    let text = format!(
        "F9 — node-failure resilience (saturated campaign, {} replications; repair 30 min)\n\n{}\n\
         reading: sharing roughly doubles the jobs hit per failure, but the\n\
         efficiency advantage persists because restarts cost both variants\n\
         similar node-time fractions; application checkpointing recovers most\n\
         of the failure-induced makespan loss for both.\n",
        reps.len(),
        t.render()
    );
    emit("exp_f9_failures", &text, Some(&t.to_csv()));
}
