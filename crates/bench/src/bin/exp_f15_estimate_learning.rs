#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! **F15 — learned estimate correction (extension).** Backfill quality is
//! limited by user walltime over-estimation (F8). This experiment wraps
//! both EASY and CoBackfill in the Tsafrir-style [`EstimateLearning`]
//! layer — per-user runtime/estimate quantiles learned online from
//! completed jobs — and measures what corrected planning buys.
//!
//! ```text
//! cargo run --release -p nodeshare-bench --bin exp_f15_estimate_learning
//! ```

use nodeshare_bench::{emit, mean_of, seeds, World};
use nodeshare_core::{Backfill, EstimateLearning, Pairing, PairingPolicy};
use nodeshare_engine::Scheduler;
use nodeshare_metrics::{pct, relative_gain, CampaignMetrics, Table};
use nodeshare_perf::Predictor;
use rayon::prelude::*;

/// A thunk producing a fresh scheduler per replication (borrows the world).
type SchedFactory<'a> = Box<dyn Fn() -> Box<dyn Scheduler> + Sync + 'a>;

fn main() {
    let world = World::evaluation();
    let reps = seeds(3);

    let co_pairing = || {
        Pairing::new(
            PairingPolicy::default_threshold(),
            Predictor::class_based(&world.catalog, &world.model),
        )
    };
    let run = |mk: &(dyn Fn() -> Box<dyn Scheduler> + Sync)| -> Vec<CampaignMetrics> {
        reps.par_iter()
            .map(|&seed| {
                // Users over-estimate persistently (3× mean) so there is
                // real signal to learn, and more users repeat (16) so the
                // learner converges within the campaign.
                let mut spec = world.saturated_spec(seed);
                spec.estimates.mean_over_factor = 2.0;
                spec.n_users = 16;
                let workload = spec.generate(&world.catalog);
                let mut sched = mk();
                let out = nodeshare_engine::run(
                    &workload,
                    &world.matrix,
                    sched.as_mut(),
                    &world.config(),
                );
                assert!(out.complete());
                out.metrics(&world.cluster)
            })
            .collect()
    };

    let variants: Vec<(&str, SchedFactory<'_>)> = vec![
        ("easy", Box::new(|| Box::new(Backfill::easy()))),
        (
            "easy + learning",
            Box::new(|| Box::new(EstimateLearning::new(Backfill::easy(), 0.9, 3))),
        ),
        (
            "co-backfill",
            Box::new(move || Box::new(Backfill::co(co_pairing()))),
        ),
        (
            "co-backfill + learning",
            Box::new(move || Box::new(EstimateLearning::new(Backfill::co(co_pairing()), 0.9, 3))),
        ),
    ];

    let mut base_sched = 0.0;
    let mut t = Table::new(vec![
        "scheduler",
        "E_sched",
        "gain vs easy",
        "wait:mean(m)",
        "wait:p95(m)",
        "bsld:p95",
    ]);
    for (label, mk) in &variants {
        let ms = run(mk.as_ref());
        let es = mean_of(&ms, |m| m.scheduling_efficiency);
        if *label == "easy" {
            base_sched = es;
        }
        t.row(vec![
            label.to_string(),
            format!("{es:.3}"),
            pct(relative_gain(es, base_sched)),
            format!("{:.0}", mean_of(&ms, |m| m.wait.mean) / 60.0),
            format!("{:.0}", mean_of(&ms, |m| m.wait.p95) / 60.0),
            format!("{:.1}", mean_of(&ms, |m| m.bounded_slowdown.p95)),
        ]);
    }
    let text = format!(
        "F15 — learned walltime-estimate correction (3x mean over-estimation, \
         16 users, saturated campaign, {} replications)\n\n{}\n\
         reading: correction tightens planned bounds, letting backfill pack\n\
         more work behind reservations — it composes with co-allocation: the\n\
         two optimizations attack independent slack (estimate slack vs.\n\
         intra-node slack).\n",
        reps.len(),
        t.render()
    );
    emit("exp_f15_estimate_learning", &text, Some(&t.to_csv()));
}
