#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! **F13 — where does node sharing pay? (extension).** The headline
//! numbers come from the paper-style evaluation mix; this experiment runs
//! CoBackfill vs. EASY across qualitatively different site profiles to
//! map the benefit's boundary conditions.
//!
//! ```text
//! cargo run --release -p nodeshare-bench --bin exp_f13_site_profiles
//! ```

use nodeshare_bench::{emit, mean_of, seeds, World};
use nodeshare_core::{StrategyConfig, StrategyKind};
use nodeshare_metrics::{pct, relative_gain, Table};
use nodeshare_workload::Preset;

fn main() {
    let world = World::evaluation();
    let reps = seeds(3);
    let easy = StrategyConfig::exclusive(StrategyKind::EasyBackfill);
    let co = StrategyConfig::sharing(StrategyKind::CoBackfill);

    let mut t = Table::new(vec![
        "site profile",
        "E_comp gain",
        "E_sched gain",
        "wait easy(m)",
        "wait co(m)",
        "shared",
        "kills",
    ]);
    for preset in Preset::ALL {
        let spec_of = |seed| {
            let mut s = preset.spec(&world.catalog, seed);
            s.n_jobs = 700;
            s
        };
        let me = world.replicate(&easy, &reps, spec_of);
        let mc = world.replicate(&co, &reps, spec_of);
        t.row(vec![
            preset.name().to_string(),
            pct(relative_gain(
                mean_of(&mc, |m| m.computational_efficiency),
                mean_of(&me, |m| m.computational_efficiency),
            )),
            pct(relative_gain(
                mean_of(&mc, |m| m.scheduling_efficiency),
                mean_of(&me, |m| m.scheduling_efficiency),
            )),
            format!("{:.0}", mean_of(&me, |m| m.wait.mean) / 60.0),
            format!("{:.0}", mean_of(&mc, |m| m.wait.mean) / 60.0),
            pct(mean_of(&mc, |m| m.shared_fraction)),
            format!("{:.1}", mean_of(&mc, |m| m.killed as f64)),
        ]);
    }
    let text = format!(
        "F13 — sharing gains across site profiles ({} replications x 700 jobs)\n\n{}\n\
         reading: the benefit needs (a) load pressure and (b) complementary\n\
         applications. Lightly loaded capability sites and bandwidth-homogeneous\n\
         mixes gain little; saturated mixed workloads gain the paper's ~20%.\n",
        reps.len(),
        t.render()
    );
    emit("exp_f13_site_profiles", &text, Some(&t.to_csv()));
}
