//! F6c — scheduling-decision latency vs queue depth (EASY vs CoBackfill
//! vs Conservative), plus end-to-end simulation throughput. This is the
//! figure that answers "can the strategy run inside a real batch system's
//! scheduling interval".
#![allow(missing_docs)] // criterion_main! generates an undocumented fn main

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nodeshare_bench::World;
use nodeshare_cluster::{Cluster, JobId, NodeId};
use nodeshare_core::{Backfill, Conservative, Pairing, PairingPolicy};
use nodeshare_engine::{RunningSummary, SchedContext, Scheduler};
use nodeshare_perf::{AppId, Predictor};
use nodeshare_workload::JobSpec;
use std::collections::BTreeMap;
use std::hint::black_box;

/// Builds a half-loaded cluster plus a deep queue: the state a scheduler
/// faces at saturation.
struct Fixture {
    cluster: Cluster,
    running: BTreeMap<JobId, RunningSummary>,
    queue: Vec<JobSpec>,
}

fn fixture(queue_depth: usize) -> Fixture {
    let world = World::evaluation();
    let mut cluster = Cluster::new(world.cluster);
    let mut running = BTreeMap::new();
    // 96 of 128 nodes busy with 24 running 4-node jobs (shared mode so
    // CoBackfill sees real co-allocation candidates).
    for i in 0..24u64 {
        let job = JobId(1_000_000 + i);
        let nodes: Vec<NodeId> = (0..4).map(|k| NodeId((i * 4 + k) as u32)).collect();
        cluster.allocate_shared(job, &nodes, 1024).unwrap();
        running.insert(
            job,
            RunningSummary {
                job,
                app: AppId((i % 8) as u8),
                nodes: 4,
                requested_nodes: 4,
                malleable: Default::default(),
                start: 0.0,
                walltime_estimate: 4_000.0 + i as f64 * 200.0,
                kill_at: 6_000.0 + i as f64 * 300.0,
                share_eligible: true,
                mode: nodeshare_cluster::ShareMode::Shared,
            },
        );
    }
    let queue: Vec<JobSpec> = (0..queue_depth as u64)
        .map(|i| JobSpec {
            malleable: Default::default(),
            id: JobId(i),
            app: AppId((i % 8) as u8),
            // Large requests so the policy scans the whole queue instead
            // of starting the first candidate (worst-case latency).
            nodes: 64 + (i % 64) as u32,
            submit: i as f64,
            runtime_exclusive: 3_600.0,
            walltime_estimate: 7_200.0,
            mem_per_node_mib: 1024,
            share_eligible: true,
            user: (i % 50) as u32,
        })
        .collect();
    Fixture {
        cluster,
        running,
        queue,
    }
}

fn bench_decision_latency(c: &mut Criterion) {
    let world = World::evaluation();
    let mut group = c.benchmark_group("sched_latency");
    // 1024/4096 are the deep-queue regimes where the indexed planner's
    // caches pay off; 100 keeps a shallow point for the latency floor.
    for &depth in &[100usize, 1_024, 4_096] {
        let fx = fixture(depth);
        let ctx = || SchedContext {
            now: 100.0,
            queue: &fx.queue,
            cluster: &fx.cluster,
            running: &fx.running,
            shared_grace: 1.5,
            completed: &[],
            telemetry: None,
        };
        group.bench_with_input(BenchmarkId::new("easy", depth), &depth, |b, _| {
            let mut sched = Backfill::easy();
            b.iter(|| black_box(sched.schedule(&ctx())));
        });
        group.bench_with_input(BenchmarkId::new("co_backfill", depth), &depth, |b, _| {
            let pairing = Pairing::new(
                PairingPolicy::default_threshold(),
                Predictor::class_based(&world.catalog, &world.model),
            );
            let mut sched = Backfill::co(pairing);
            b.iter(|| black_box(sched.schedule(&ctx())));
        });
        group.bench_with_input(
            BenchmarkId::new("co_backfill_reference", depth),
            &depth,
            |b, _| {
                let pairing = Pairing::new(
                    PairingPolicy::default_threshold(),
                    Predictor::class_based(&world.catalog, &world.model),
                );
                let mut sched = Backfill::co(pairing).reference();
                b.iter(|| black_box(sched.schedule(&ctx())));
            },
        );
        // Warm path: repeated identical passes hit the cross-pass prefix
        // memo (what an engine sees while the cluster stamp is unchanged).
        group.bench_with_input(BenchmarkId::new("conservative", depth), &depth, |b, _| {
            let mut sched = Conservative::new();
            b.iter(|| black_box(sched.schedule(&ctx())));
        });
        // Cold path: a fresh scheduler per pass, so every iteration pays
        // the full rebuild + plan + reserve sweep with no memo.
        group.bench_with_input(
            BenchmarkId::new("conservative_cold", depth),
            &depth,
            |b, _| {
                b.iter_batched(
                    Conservative::new,
                    |mut sched| black_box(sched.schedule(&ctx())),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("conservative_reference", depth),
            &depth,
            |b, _| {
                let mut sched = Conservative::new().reference();
                b.iter(|| black_box(sched.schedule(&ctx())));
            },
        );
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let world = World::evaluation();
    let mut spec = world.saturated_spec(3);
    spec.n_jobs = 200;
    let workload = spec.generate(&world.catalog);
    let mut group = c.benchmark_group("simulation/200_jobs_128_nodes");
    group.sample_size(20);
    group.bench_function("easy", |b| {
        b.iter(|| {
            let mut sched = Backfill::easy();
            black_box(nodeshare_engine::run(
                &workload,
                &world.matrix,
                &mut sched,
                &world.config(),
            ))
        });
    });
    group.bench_function("co_backfill", |b| {
        b.iter(|| {
            let pairing = Pairing::new(
                PairingPolicy::default_threshold(),
                Predictor::class_based(&world.catalog, &world.model),
            );
            let mut sched = Backfill::co(pairing);
            black_box(nodeshare_engine::run(
                &workload,
                &world.matrix,
                &mut sched,
                &world.config(),
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_decision_latency, bench_end_to_end);
criterion_main!(benches);
