//! F6b — contention-model cost: single pair-rate evaluations, full
//! matrix construction, and predictor lookups. These sit on the engine's
//! hot re-rate path, so their constant factors matter.
#![allow(missing_docs)] // criterion_main! generates an undocumented fn main

use criterion::{criterion_group, criterion_main, Criterion};
use nodeshare_perf::{AppCatalog, AppId, ContentionModel, PairMatrix, Predictor};
use std::hint::black_box;

fn bench_pair_rates(c: &mut Criterion) {
    let catalog = AppCatalog::trinity();
    let model = ContentionModel::calibrated();
    let a = &catalog.profile(AppId(0)).demand;
    let b = &catalog.profile(AppId(5)).demand;
    c.bench_function("contention/pair_rates", |bch| {
        bch.iter(|| black_box(model.pair_rates(black_box(a), black_box(b))));
    });
}

fn bench_matrix_build(c: &mut Criterion) {
    let catalog = AppCatalog::trinity();
    let model = ContentionModel::calibrated();
    c.bench_function("contention/matrix_build_8apps", |bch| {
        bch.iter(|| black_box(PairMatrix::build(black_box(&catalog), &model)));
    });
}

fn bench_lookups(c: &mut Criterion) {
    let catalog = AppCatalog::trinity();
    let model = ContentionModel::calibrated();
    let matrix = PairMatrix::build(&catalog, &model);
    let oracle = Predictor::oracle(&catalog, &model);
    let class = Predictor::class_based(&catalog, &model);
    c.bench_function("contention/matrix_lookup_64pairs", |bch| {
        bch.iter(|| {
            let mut acc = 0.0;
            for a in 0..8u8 {
                for b in 0..8u8 {
                    acc += matrix.rate(AppId(a), AppId(b));
                }
            }
            black_box(acc)
        });
    });
    c.bench_function("contention/predictor_oracle", |bch| {
        bch.iter(|| black_box(oracle.rates(AppId(2), AppId(5))));
    });
    c.bench_function("contention/predictor_class_based", |bch| {
        bch.iter(|| black_box(class.rates(AppId(2), AppId(5))));
    });
}

criterion_group!(benches, bench_pair_rates, bench_matrix_build, bench_lookups);
criterion_main!(benches);
