//! F6a — event-queue throughput: push/pop cost of the engine's
//! generation-stamped queue at several fill levels, and calendar vs.
//! binary-heap backend at million-event scale (the calendar's O(1)
//! amortized push/pop is what makes million-job streamed campaigns pay).
#![allow(missing_docs)] // criterion_main! generates an undocumented fn main

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nodeshare_cluster::JobId;
use nodeshare_engine::{Event, EventQueue, QueueBackend};
use std::hint::black_box;

fn bench_push_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue/push_drain");
    for &n in &[1_000usize, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            // Deterministic pseudo-random times without RNG state.
            let times: Vec<f64> = (0..n)
                .map(|i| ((i as u64).wrapping_mul(2_654_435_761) % 1_000_000) as f64)
                .collect();
            b.iter(|| {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.push(
                        t,
                        Event::Completion {
                            job: JobId(i as u64),
                            generation: 0,
                        },
                    );
                }
                let mut last = f64::NEG_INFINITY;
                while let Some((t, e)) = q.pop() {
                    debug_assert!(t >= last);
                    last = t;
                    black_box(e);
                }
                black_box(last)
            });
        });
    }
    group.finish();
}

fn bench_interleaved(c: &mut Criterion) {
    // The simulation's real access pattern: pop one, push a couple.
    c.bench_function("event_queue/interleaved_steady_state", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..256u64 {
                q.push(i as f64, Event::Arrival(i as usize));
            }
            for step in 0..4_096u64 {
                let (t, _) = q.pop().expect("queue never drains");
                q.push(t + 7.0, Event::SchedulerTick);
                if step % 2 == 0 {
                    q.push(
                        t + 13.0,
                        Event::WalltimeKill {
                            job: JobId(step),
                            arm: 0,
                        },
                    );
                } else {
                    q.pop();
                }
            }
            black_box(q.len())
        });
    });
}

fn bench_backends(c: &mut Criterion) {
    // Head-to-head at scale: both backends see the identical operation
    // stream and produce the identical pop order (proven by the
    // differential and property tests); only the clock differs. 1M is
    // the streamed-campaign regime where heap log-factors add up.
    let mut group = c.benchmark_group("event_queue/backend_push_drain");
    group.sample_size(10);
    for &n in &[100_000usize, 1_000_000] {
        let times: Vec<f64> = (0..n)
            .map(|i| ((i as u64).wrapping_mul(2_654_435_761) % 10_000_000) as f64 * 0.5)
            .collect();
        for backend in [QueueBackend::Calendar, QueueBackend::BinaryHeap] {
            let label = match backend {
                QueueBackend::Calendar => "calendar",
                QueueBackend::BinaryHeap => "heap",
            };
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let mut q = EventQueue::with_backend(backend);
                    for (i, &t) in times.iter().enumerate() {
                        q.push(
                            t,
                            Event::Completion {
                                job: JobId(i as u64),
                                generation: 0,
                            },
                        );
                    }
                    let mut last = f64::NEG_INFINITY;
                    while let Some((t, e)) = q.pop() {
                        debug_assert!(t >= last);
                        last = t;
                        black_box(e);
                    }
                    black_box(last)
                });
            });
        }
    }
    group.finish();
}

fn bench_backend_steady_state(c: &mut Criterion) {
    // The simulation's hold-model shape — pop one, push a couple slightly
    // in the future — at a deep fill, per backend.
    let mut group = c.benchmark_group("event_queue/backend_steady_state");
    for backend in [QueueBackend::Calendar, QueueBackend::BinaryHeap] {
        let label = match backend {
            QueueBackend::Calendar => "calendar",
            QueueBackend::BinaryHeap => "heap",
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut q = EventQueue::with_backend(backend);
                for i in 0..65_536u64 {
                    q.push(i as f64 * 0.25, Event::Arrival(i as usize));
                }
                for step in 0..131_072u64 {
                    let (t, _) = q.pop().expect("queue never drains");
                    q.push(
                        t + 7.0,
                        Event::Completion {
                            job: JobId(step),
                            generation: 0,
                        },
                    );
                    q.pop();
                }
                black_box(q.len())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_push_drain,
    bench_interleaved,
    bench_backends,
    bench_backend_steady_state
);
criterion_main!(benches);
