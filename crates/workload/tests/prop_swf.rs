//! Property tests: SWF serialization round-trips arbitrary valid
//! workloads, and the parser never panics on arbitrary text.

use nodeshare_cluster::JobId;
use nodeshare_perf::{AppCatalog, AppId};
use nodeshare_workload::{swf, JobSpec, Workload};
use proptest::prelude::*;

fn job_strategy() -> impl Strategy<Value = (u32, f64, f64, f64, u8, u32)> {
    (
        1u32..=64,           // nodes
        1.0f64..100_000.0,   // runtime
        0.0f64..1_000_000.0, // submit
        1.0f64..4.0,         // over-estimate factor
        0u8..8,              // app
        0u32..1_000,         // user
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Write → parse → import preserves every field SWF can carry.
    #[test]
    fn roundtrip_preserves_fields(raw in prop::collection::vec(job_strategy(), 1..40)) {
        let catalog = AppCatalog::trinity();
        let jobs: Vec<JobSpec> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (nodes, runtime, submit, over, app, user))| JobSpec {
                malleable: Default::default(),
                id: JobId(i as u64),
                app: AppId(app),
                nodes,
                submit,
                runtime_exclusive: runtime,
                walltime_estimate: runtime * over,
                mem_per_node_mib: 1024,
                share_eligible: true,
                user,
            })
            .collect();
        let workload = Workload::new(jobs).unwrap();
        let cores_per_node = 32;
        let text = swf::write(&workload, cores_per_node);
        let records = swf::parse(&text).unwrap();
        prop_assert_eq!(records.len(), workload.len());
        let (back, skipped) = swf::to_workload(
            &records,
            &catalog,
            &swf::SwfImportOptions {
                cores_per_node,
                ..Default::default()
            },
        );
        prop_assert_eq!(skipped, 0);
        prop_assert_eq!(back.len(), workload.len());
        for (a, b) in workload.jobs().iter().zip(back.jobs()) {
            prop_assert_eq!(a.nodes, b.nodes);
            prop_assert_eq!(a.app, b.app);
            prop_assert_eq!(a.user, b.user);
            prop_assert!((a.submit - b.submit).abs() <= 0.5);
            prop_assert!((a.runtime_exclusive - b.runtime_exclusive).abs() <= 0.5);
            prop_assert!(b.walltime_estimate >= b.runtime_exclusive);
        }
    }

    /// The parser returns Ok or Err but never panics, on arbitrary junk.
    #[test]
    fn parser_never_panics(text in "(?s).{0,400}") {
        let _ = swf::parse(&text);
    }

    /// Lines of arbitrary integers with ≥18 fields always parse.
    #[test]
    fn wide_integer_lines_parse(fields in prop::collection::vec(-5i64..1_000_000, 18..24)) {
        let line = fields
            .iter()
            .map(i64::to_string)
            .collect::<Vec<_>>()
            .join(" ");
        let parsed = swf::parse(&line).unwrap();
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(parsed[0].job, fields[0]);
        prop_assert_eq!(parsed[0].submit, fields[1]);
    }
}
