//! Standard Workload Format (SWF) trace I/O.
//!
//! SWF is the lingua franca of the parallel-workload-archive ecosystem:
//! one job per line, 18 whitespace-separated integer fields, `;` comment
//! headers. Supporting it lets nodeshare replay real traces in place of
//! the paper's site-local workload, and export generated campaigns for
//! other simulators.
//!
//! Field reference (1-based, as in the SWF definition):
//! 1 job number · 2 submit · 3 wait · 4 run time · 5 allocated procs ·
//! 6 avg CPU time · 7 used memory · 8 requested procs · 9 requested time ·
//! 10 requested memory · 11 status · 12 user · 13 group · 14 executable ·
//! 15 queue · 16 partition · 17 preceding job · 18 think time. Unknown
//! values are `-1`.

use crate::job::{JobSpec, Seconds, Workload};
use nodeshare_cluster::JobId;
use nodeshare_perf::{AppCatalog, AppId};
use serde::{Deserialize, Serialize};

/// One parsed SWF line.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SwfRecord {
    /// Field 1: job number.
    pub job: i64,
    /// Field 2: submit time, seconds from trace epoch.
    pub submit: i64,
    /// Field 3: wait time in seconds (−1 unknown).
    pub wait: i64,
    /// Field 4: run time in seconds (−1 unknown).
    pub run_time: i64,
    /// Field 5: allocated processors (−1 unknown).
    pub alloc_procs: i64,
    /// Field 8: requested processors (−1 unknown).
    pub req_procs: i64,
    /// Field 9: requested (wall) time in seconds (−1 unknown).
    pub req_time: i64,
    /// Field 11: completion status.
    pub status: i64,
    /// Field 12: user id (−1 unknown).
    pub user: i64,
    /// Field 14: executable/application number (−1 unknown).
    pub executable: i64,
}

/// Errors from SWF parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SwfError {
    /// A data line had fewer than 18 fields.
    TooFewFields {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        found: usize,
    },
    /// A field failed integer parsing.
    BadField {
        /// 1-based line number.
        line: usize,
        /// 1-based field index.
        field: usize,
        /// Offending token.
        token: String,
    },
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwfError::TooFewFields { line, found } => {
                write!(f, "line {line}: expected 18 fields, found {found}")
            }
            SwfError::BadField { line, field, token } => {
                write!(f, "line {line}, field {field}: cannot parse {token:?}")
            }
        }
    }
}

impl std::error::Error for SwfError {}

/// Parses SWF text (comments and blank lines skipped).
pub fn parse(text: &str) -> Result<Vec<SwfRecord>, SwfError> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 18 {
            return Err(SwfError::TooFewFields {
                line: lineno + 1,
                found: fields.len(),
            });
        }
        let get = |i: usize| -> Result<i64, SwfError> {
            fields[i - 1].parse().map_err(|_| SwfError::BadField {
                line: lineno + 1,
                field: i,
                token: fields[i - 1].to_string(),
            })
        };
        out.push(SwfRecord {
            job: get(1)?,
            submit: get(2)?,
            wait: get(3)?,
            run_time: get(4)?,
            alloc_procs: get(5)?,
            req_procs: get(8)?,
            req_time: get(9)?,
            status: get(11)?,
            user: get(12)?,
            executable: get(14)?,
        });
    }
    Ok(out)
}

/// Options controlling SWF → [`Workload`] conversion.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SwfImportOptions {
    /// Cores per node of the target cluster (processor counts become
    /// `ceil(procs / cores_per_node)` nodes).
    pub cores_per_node: u32,
    /// Memory charged per node when the trace gives none, MiB.
    pub default_mem_per_node_mib: u64,
    /// Whether imported jobs opt into sharing.
    pub share_eligible: bool,
}

impl Default for SwfImportOptions {
    fn default() -> Self {
        SwfImportOptions {
            cores_per_node: 32,
            default_mem_per_node_mib: 4 * 1024,
            share_eligible: true,
        }
    }
}

/// Converts parsed records into a workload, mapping each record's
/// executable number onto the catalog (stable modulo mapping). Records
/// with unusable sizes or runtimes (≤ 0) are skipped; the count of skipped
/// records is returned alongside.
pub fn to_workload(
    records: &[SwfRecord],
    catalog: &AppCatalog,
    opts: &SwfImportOptions,
) -> (Workload, usize) {
    let mut jobs = Vec::with_capacity(records.len());
    let mut skipped = 0usize;
    let mut next_id = 0u64;
    for r in records {
        let procs = if r.req_procs > 0 {
            r.req_procs
        } else {
            r.alloc_procs
        };
        if procs <= 0 || r.run_time <= 0 || r.submit < 0 {
            skipped += 1;
            continue;
        }
        let nodes = (procs as u64).div_ceil(opts.cores_per_node as u64) as u32;
        let runtime = r.run_time as Seconds;
        let estimate = if r.req_time > 0 {
            (r.req_time as Seconds).max(runtime)
        } else {
            runtime
        };
        let app_idx = if r.executable >= 0 {
            (r.executable as usize) % catalog.len()
        } else {
            (r.job.unsigned_abs() as usize) % catalog.len()
        };
        let app = AppId(app_idx as u8);
        jobs.push(JobSpec {
            id: JobId(next_id),
            app,
            nodes,
            submit: r.submit as Seconds,
            runtime_exclusive: runtime,
            walltime_estimate: estimate,
            mem_per_node_mib: catalog
                .get(app)
                .map(|a| a.mem_per_node_mib)
                .unwrap_or(opts.default_mem_per_node_mib),
            share_eligible: opts.share_eligible,
            user: r.user.max(0) as u32,
        });
        next_id += 1;
    }
    (
        Workload::new(jobs).expect("imported jobs are validated above"),
        skipped,
    )
}

/// Serializes a workload to SWF text (with a descriptive comment header).
///
/// Times are rounded to whole seconds, as the format requires. The
/// executable field carries the app id, so an export/import cycle through
/// the same catalog preserves app assignments.
pub fn write(workload: &Workload, cores_per_node: u32) -> String {
    let mut out = String::with_capacity(workload.len() * 80 + 128);
    out.push_str("; SWF export from nodeshare\n");
    out.push_str("; MaxNodes: see importing cluster\n");
    for j in workload.jobs() {
        let procs = j.nodes as u64 * cores_per_node as u64;
        // 18 fields; unknowns are -1.
        out.push_str(&format!(
            "{} {} -1 {} {} -1 -1 {} {} -1 1 {} -1 {} -1 -1 -1 -1\n",
            j.id.0 + 1,
            j.submit.round() as i64,
            j.runtime_exclusive.round().max(1.0) as i64,
            procs,
            procs,
            j.walltime_estimate.ceil() as i64,
            j.user,
            j.app.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadSpec;

    const SAMPLE: &str = "\
; Comment header
; UnixStartTime: 0

1 0 10 3600 64 -1 -1 64 7200 -1 1 5 -1 2 -1 -1 -1 -1
2 30 -1 100 -1 -1 -1 32 -1 -1 1 6 -1 -1 -1 -1 -1 -1
3 60 0 -1 16 -1 -1 16 600 -1 0 7 -1 1 -1 -1 -1 -1
";

    #[test]
    fn parses_sample_records() {
        let recs = parse(SAMPLE).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].job, 1);
        assert_eq!(recs[0].run_time, 3600);
        assert_eq!(recs[0].req_procs, 64);
        assert_eq!(recs[0].executable, 2);
        assert_eq!(recs[1].req_time, -1);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = parse("1 2 3\n").unwrap_err();
        assert_eq!(err, SwfError::TooFewFields { line: 1, found: 3 });
        let err = parse("1 x 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18\n").unwrap_err();
        assert!(matches!(err, SwfError::BadField { field: 2, .. }));
    }

    #[test]
    fn conversion_skips_unusable_records() {
        let catalog = AppCatalog::trinity();
        let recs = parse(SAMPLE).unwrap();
        let (w, skipped) = to_workload(&recs, &catalog, &SwfImportOptions::default());
        assert_eq!(w.len(), 2); // record 3 has run_time = -1
        assert_eq!(skipped, 1);
        let j = &w.jobs()[0];
        assert_eq!(j.nodes, 2); // 64 procs / 32 cores
        assert_eq!(j.runtime_exclusive, 3600.0);
        assert_eq!(j.walltime_estimate, 7200.0);
        assert_eq!(j.user, 5);
    }

    #[test]
    fn estimate_never_below_runtime_on_import() {
        let catalog = AppCatalog::trinity();
        let recs = parse("1 0 -1 5000 32 -1 -1 32 100 -1 1 0 -1 0 -1 -1 -1 -1\n").unwrap();
        let (w, _) = to_workload(&recs, &catalog, &SwfImportOptions::default());
        assert!(w.jobs()[0].walltime_estimate >= w.jobs()[0].runtime_exclusive);
    }

    #[test]
    fn export_import_roundtrip_preserves_structure() {
        let catalog = AppCatalog::trinity();
        let spec = WorkloadSpec::evaluation(&catalog, 9);
        let original = spec.generate(&catalog);
        let text = write(&original, 32);
        let recs = parse(&text).unwrap();
        let (reimported, skipped) = to_workload(
            &recs,
            &catalog,
            &SwfImportOptions {
                cores_per_node: 32,
                ..Default::default()
            },
        );
        assert_eq!(skipped, 0);
        assert_eq!(reimported.len(), original.len());
        for (a, b) in original.jobs().iter().zip(reimported.jobs()) {
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.app, b.app);
            assert_eq!(a.user, b.user);
            // Times survive to 1-second rounding.
            assert!((a.submit - b.submit).abs() <= 0.5);
            assert!((a.runtime_exclusive - b.runtime_exclusive).abs() <= 0.5);
            assert!(b.walltime_estimate >= b.runtime_exclusive);
        }
    }

    #[test]
    fn negative_executable_maps_by_job_number() {
        let catalog = AppCatalog::trinity();
        let recs = parse("7 0 -1 100 32 -1 -1 32 200 -1 1 0 -1 -1 -1 -1 -1 -1\n").unwrap();
        let (w, _) = to_workload(&recs, &catalog, &SwfImportOptions::default());
        assert_eq!(w.jobs()[0].app, AppId((7 % catalog.len()) as u8));
    }
}
